//! Differential testing of the dataflow engine: the engine-backed
//! liveness solver must agree *byte-for-byte* with the hand-rolled
//! oracle on every program the repository can produce.
//!
//! Both solvers compute the least fixpoint of the same monotone flow
//! equations over the same pCFG, so any disagreement — on any node, in
//! either direction — is a bug in one of them. The corpus is all 19
//! PolyBench kernels straight out of the Dahlia frontend and again
//! after each standard pipeline (`lower`, `lower-static`, `opt`),
//! comparing every component of every resulting context.

use calyx::core::analysis::{AnalysisCache, BoundaryRegs, Liveness, Pcfg, ReadWriteSets};
use calyx::core::ir::Context;
use calyx::core::passes::PassManager;
use calyx::polybench::{compile_kernel, KERNELS};

/// Assert oracle/engine agreement on every component of `ctx`.
fn assert_liveness_agrees(ctx: &Context, label: &str) {
    for comp in ctx.components.iter() {
        let mut cache = AnalysisCache::new();
        let boundary = cache.get::<BoundaryRegs>(comp);
        let rw = ReadWriteSets::analyze(comp);
        let pcfg = Pcfg::from_control(&comp.control);
        let oracle = Liveness::solve(&pcfg, &rw, boundary.registers());
        let engine =
            calyx::core::analysis::dataflow::solve_liveness(&pcfg, &rw, boundary.registers());
        assert_eq!(
            oracle.live_in, engine.live_in,
            "{label}/{}: live_in diverges",
            comp.name
        );
        assert_eq!(
            oracle.live_out, engine.live_out,
            "{label}/{}: live_out diverges",
            comp.name
        );
    }
}

/// All 19 kernels, raw and through each standard pipeline: the
/// engine-backed liveness is byte-identical to the hand-rolled oracle.
#[test]
fn liveness_engine_matches_oracle_on_all_kernels() {
    assert_eq!(KERNELS.len(), 19);
    for def in KERNELS {
        let (_, raw) = compile_kernel(def, 4, 1)
            .unwrap_or_else(|e| panic!("kernel `{}` fails to compile: {e}", def.name));
        assert_liveness_agrees(&raw, &format!("{}/raw", def.name));
        for pipeline in ["lower", "lower-static", "opt"] {
            let mut ctx = raw.clone();
            PassManager::from_names(&[pipeline])
                .expect("standard pipeline")
                .run(&mut ctx)
                .unwrap_or_else(|e| panic!("{}/{pipeline} fails: {e}", def.name));
            assert_liveness_agrees(&ctx, &format!("{}/{pipeline}", def.name));
        }
    }
}
