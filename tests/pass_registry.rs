//! The pass registry drives real pipelines: alias-built pass managers must
//! behave *identically* to the legacy pipeline constructors. Byte-identical
//! printed Calyx on every PolyBench kernel pins the alias expansions (and
//! the visitor-based pass framework behind them) to the known-good
//! pipelines.

use calyx::core::ir::{Context, Printer};
use calyx::core::passes::{self, PassManager};
use calyx::polybench::{compile_kernel, KERNELS};

const N: u64 = 4;

/// The pre-registry `lower_pipeline()`, reconstructed by registering the
/// pass structs directly — the known-good hand-built pipeline the aliases
/// must reproduce.
fn hand_built_lower() -> PassManager {
    let mut pm = PassManager::new();
    pm.register(passes::WellFormed);
    pm.register(passes::CollapseControl);
    pm.register(passes::DeadGroupRemoval::default());
    pm.register(passes::CompileControl);
    pm.register(passes::GoInsertion);
    pm.register(passes::RemoveGroups);
    pm.register(passes::GuardSimplify);
    pm.register(passes::DeadCellRemoval::default());
    pm
}

/// The pre-registry `lower_pipeline_static()`, hand-built.
fn hand_built_lower_static() -> PassManager {
    let mut pm = PassManager::new();
    pm.register(passes::WellFormed);
    pm.register(passes::CollapseControl);
    pm.register(passes::DeadGroupRemoval::default());
    pm.register(passes::InferStaticTiming);
    pm.register(passes::StaticTiming);
    pm.register(passes::CompileControl);
    pm.register(passes::GoInsertion);
    pm.register(passes::RemoveGroups);
    pm.register(passes::GuardSimplify);
    pm.register(passes::DeadCellRemoval::default());
    pm
}

/// Run `pm` over a clone of `ctx` and print the result.
fn printed(mut pm: PassManager, ctx: &Context) -> String {
    let mut ctx = ctx.clone();
    pm.run(&mut ctx).expect("pipeline succeeds");
    Printer::print_context(&ctx)
}

#[test]
fn lower_alias_matches_hand_built_pipeline_on_polybench() {
    for def in KERNELS {
        let (_ast, ctx) = compile_kernel(def, N, 1).expect("kernel compiles");
        let legacy = printed(hand_built_lower(), &ctx);
        let alias = printed(PassManager::from_names(&["lower"]).unwrap(), &ctx);
        let wrapper = printed(passes::lower_pipeline(), &ctx);
        assert_eq!(legacy, alias, "{}: alias `lower` diverged", def.name);
        assert_eq!(
            legacy, wrapper,
            "{}: lower_pipeline() wrapper diverged",
            def.name
        );
    }
}

#[test]
fn opt_alias_matches_legacy_function_on_polybench() {
    for def in KERNELS {
        let (_ast, ctx) = compile_kernel(def, N, 1).expect("kernel compiles");
        let legacy = printed(passes::optimized_pipeline(true, true, true), &ctx);
        let opt = printed(PassManager::from_names(&["opt"]).unwrap(), &ctx);
        let all = printed(PassManager::from_names(&["all"]).unwrap(), &ctx);
        assert_eq!(legacy, opt, "{}: alias `opt` diverged", def.name);
        assert_eq!(legacy, all, "{}: alias `all` diverged", def.name);
    }
}

#[test]
fn lower_static_alias_matches_hand_built_pipeline_on_polybench() {
    for def in KERNELS {
        let (_ast, ctx) = compile_kernel(def, N, 1).expect("kernel compiles");
        let legacy = printed(hand_built_lower_static(), &ctx);
        let alias = printed(PassManager::from_names(&["lower-static"]).unwrap(), &ctx);
        assert_eq!(legacy, alias, "{}: alias `lower-static` diverged", def.name);
    }
}

/// `-p`-style hand-built pipelines compose passes one at a time exactly
/// like the one-shot alias pipeline.
#[test]
fn incremental_pass_names_compose_like_the_alias() {
    let def = &KERNELS[0];
    let (_ast, ctx) = compile_kernel(def, N, 1).expect("kernel compiles");
    let whole = printed(PassManager::from_names(&["lower"]).unwrap(), &ctx);

    let mut step_ctx = ctx.clone();
    for name in passes::ALIAS_LOWER {
        let mut pm = PassManager::from_names(&[name]).unwrap();
        pm.run(&mut step_ctx).expect("single pass succeeds");
    }
    assert_eq!(whole, Printer::print_context(&step_ctx));
}
