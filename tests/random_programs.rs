//! A generator of random — but well-formed — Calyx programs for
//! differential testing.
//!
//! Compiled both as its own test binary and as a module of other test
//! binaries, which use different subsets of the API.
#![allow(dead_code)]
//!
//! Programs use a fixed pool of 8-bit data registers and one external
//! memory. Leaf groups perform register arithmetic and memory traffic;
//! the control tree composes them with `seq`, `par`, `if`, and bounded
//! `while` loops. Well-formedness is maintained by construction:
//!
//! - `par` branches receive *disjoint* register sets and at most one
//!   branch touches the memory (the unique-driver rule);
//! - every `while` owns a dedicated counter register, reset immediately
//!   before the loop, so all programs terminate;
//! - `if`/`while` conditions are combinational comparison groups.

use calyx::core::ir::{Builder, Context, Control, Id, PortRef};
use proptest::prelude::*;

/// Width of all data registers.
const WIDTH: u64 = 8;
/// Size of the scratch memory's data section (reachable by actions).
const MEM_SIZE: u64 = 8;
/// Full memory size: the data section plus one drain slot per register,
/// written at the end of every program so that register values become
/// architecturally observable even after `MinimizeRegs` renames registers.
const MEM_TOTAL: u64 = MEM_SIZE + REGS as u64;
/// Data registers available to leaf actions.
const REGS: usize = 4;
/// Maximum `while` loops per program (each owns a counter register).
const MAX_LOOPS: usize = 3;

/// A leaf action over the register file / memory.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `r[dst] <- konst`
    SetConst { dst: usize, value: u64 },
    /// `r[dst] <- r[src] + konst`
    AddConst { dst: usize, src: usize, value: u64 },
    /// `r[dst] <- r[a] + r[b]`
    AddRegs { dst: usize, a: usize, b: usize },
    /// `mem[addr] <- r[src]`
    Store { addr: u64, src: usize },
    /// `r[dst] <- mem[addr]`
    Load { dst: usize, addr: u64 },
}

impl Action {
    fn writes_reg(&self) -> Option<usize> {
        match self {
            Action::SetConst { dst, .. }
            | Action::AddConst { dst, .. }
            | Action::AddRegs { dst, .. }
            | Action::Load { dst, .. } => Some(*dst),
            Action::Store { .. } => None,
        }
    }

    fn reads_regs(&self, out: &mut std::collections::BTreeSet<usize>) {
        match self {
            Action::SetConst { .. } | Action::Load { .. } => {}
            Action::AddConst { src, .. } | Action::Store { src, .. } => {
                out.insert(*src);
            }
            Action::AddRegs { a, b, .. } => {
                out.insert(*a);
                out.insert(*b);
            }
        }
    }

    fn touches_mem(&self) -> bool {
        matches!(self, Action::Store { .. } | Action::Load { .. })
    }
}

/// A structured control node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    Leaf(Action),
    Seq(Vec<Node>),
    /// Children constructed with disjoint write sets.
    Par(Vec<Node>),
    /// `if r[reg] < konst { then } else { else_ }`
    If {
        reg: usize,
        konst: u64,
        then_: Box<Node>,
        else_: Box<Node>,
    },
    /// A bounded loop over dedicated counter `loop_idx`: runs `trips`
    /// iterations of the body.
    While {
        loop_idx: usize,
        trips: u64,
        body: Box<Node>,
    },
}

impl Node {
    fn reg_writes(&self, out: &mut std::collections::BTreeSet<usize>) {
        match self {
            Node::Leaf(a) => {
                out.extend(a.writes_reg());
            }
            Node::Seq(ns) | Node::Par(ns) => {
                for n in ns {
                    n.reg_writes(out);
                }
            }
            Node::If { then_, else_, .. } => {
                then_.reg_writes(out);
                else_.reg_writes(out);
            }
            Node::While { body, .. } => body.reg_writes(out),
        }
    }

    /// Registers this node may read, including `if` condition registers.
    /// (Loop counters live in a dedicated register pool and cannot
    /// interfere with the data registers tracked here.)
    fn reg_reads(&self, out: &mut std::collections::BTreeSet<usize>) {
        match self {
            Node::Leaf(a) => a.reads_regs(out),
            Node::Seq(ns) | Node::Par(ns) => {
                for n in ns {
                    n.reg_reads(out);
                }
            }
            Node::If {
                reg, then_, else_, ..
            } => {
                out.insert(*reg);
                then_.reg_reads(out);
                else_.reg_reads(out);
            }
            Node::While { body, .. } => body.reg_reads(out),
        }
    }

    fn touches_mem(&self) -> bool {
        match self {
            Node::Leaf(a) => a.touches_mem(),
            Node::Seq(ns) | Node::Par(ns) => ns.iter().any(Node::touches_mem),
            Node::If { then_, else_, .. } => then_.touches_mem() || else_.touches_mem(),
            Node::While { body, .. } => body.touches_mem(),
        }
    }

    fn loop_count(&self) -> usize {
        match self {
            Node::Leaf(_) => 0,
            Node::Seq(ns) | Node::Par(ns) => ns.iter().map(Node::loop_count).sum(),
            Node::If { then_, else_, .. } => then_.loop_count() + else_.loop_count(),
            Node::While { body, .. } => 1 + body.loop_count(),
        }
    }
}

/// A complete random program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSpec {
    /// The control tree.
    pub root: Node,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..REGS, 0..256u64).prop_map(|(dst, value)| Action::SetConst { dst, value }),
        (0..REGS, 0..REGS, 1..16u64).prop_map(|(dst, src, value)| Action::AddConst {
            dst,
            src,
            value
        }),
        (0..REGS, 0..REGS, 0..REGS).prop_map(|(dst, a, b)| Action::AddRegs { dst, a, b }),
        (0..MEM_SIZE, 0..REGS).prop_map(|(addr, src)| Action::Store { addr, src }),
        (0..REGS, 0..MEM_SIZE).prop_map(|(dst, addr)| Action::Load { dst, addr }),
    ]
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = action_strategy().prop_map(Node::Leaf);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Node::Seq),
            // Par: filter to disjoint register writes and single-branch
            // memory use after generation.
            prop::collection::vec(inner.clone(), 2..4).prop_map(make_par_sound),
            (0..REGS, 0..256u64, inner.clone(), inner.clone()).prop_map(|(reg, konst, t, e)| {
                Node::If {
                    reg,
                    konst,
                    then_: Box::new(t),
                    else_: Box::new(e),
                }
            }),
            (1..4u64, inner).prop_map(|(trips, body)| Node::While {
                loop_idx: 0, // reassigned by `number_loops`
                trips,
                body: Box::new(body),
            }),
        ]
    })
}

/// Make a candidate `par` sound: drop children that *interfere* with
/// earlier children. Two branches interfere when either writes a register
/// the other reads or writes, or when both touch the memory. Write/write
/// disjointness alone is not enough: a branch observing a register while a
/// sibling writes it is a data race, and the paper leaves the semantics of
/// interfering `par` undefined — dynamic and static schedules may then
/// legally disagree, which is exactly what differential testing must not
/// count as a compiler bug.
fn make_par_sound(children: Vec<Node>) -> Node {
    let mut taken_writes: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    let mut taken_reads: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    let mut mem_used = false;
    let mut kept = Vec::new();
    for child in children {
        let mut writes = std::collections::BTreeSet::new();
        let mut reads = std::collections::BTreeSet::new();
        child.reg_writes(&mut writes);
        child.reg_reads(&mut reads);
        let writes_ok = writes
            .iter()
            .all(|r| !taken_writes.contains(r) && !taken_reads.contains(r));
        let reads_ok = reads.iter().all(|r| !taken_writes.contains(r));
        let mem_ok = !child.touches_mem() || !mem_used;
        if writes_ok && reads_ok && mem_ok {
            taken_writes.extend(writes);
            taken_reads.extend(reads);
            mem_used |= child.touches_mem();
            kept.push(child);
        }
    }
    match kept.len() {
        0 => Node::Seq(Vec::new()),
        1 => kept.pop().expect("length checked"),
        _ => Node::Par(kept),
    }
}

/// Assign unique counter registers to the first `MAX_LOOPS` while loops and
/// demote the rest to plain bodies.
fn number_loops(node: Node, next: &mut usize) -> Node {
    match node {
        Node::Leaf(_) => node,
        Node::Seq(ns) => Node::Seq(ns.into_iter().map(|n| number_loops(n, next)).collect()),
        Node::Par(ns) => Node::Par(ns.into_iter().map(|n| number_loops(n, next)).collect()),
        Node::If {
            reg,
            konst,
            then_,
            else_,
        } => Node::If {
            reg,
            konst,
            then_: Box::new(number_loops(*then_, next)),
            else_: Box::new(number_loops(*else_, next)),
        },
        Node::While { trips, body, .. } => {
            let body = Box::new(number_loops(*body, next));
            if *next < MAX_LOOPS {
                let loop_idx = *next;
                *next += 1;
                Node::While {
                    loop_idx,
                    trips,
                    body,
                }
            } else {
                *body
            }
        }
    }
}

/// The proptest strategy for whole programs.
pub fn program_spec() -> impl Strategy<Value = ProgramSpec> {
    node_strategy().prop_map(|root| {
        let mut next = 0;
        ProgramSpec {
            root: number_loops(root, &mut next),
        }
    })
}

/// Names of the data registers.
fn reg_name(i: usize) -> String {
    format!("r{i}")
}

/// Build the Calyx program for a spec.
pub fn build_program(spec: &ProgramSpec) -> Context {
    let mut ctx = Context::new();
    let mut comp = ctx.new_component("main");
    {
        let mut b = Builder::new(&mut comp, &ctx);
        // Register file, loop counters, scratch memory.
        for i in 0..REGS {
            b.add_primitive(&reg_name(i), "std_reg", &[WIDTH]);
        }
        for i in 0..MAX_LOOPS {
            b.add_primitive(&format!("w{i}"), "std_reg", &[WIDTH]);
            b.add_primitive(&format!("wadd{i}"), "std_add", &[WIDTH]);
            b.add_primitive(&format!("wlt{i}"), "std_lt", &[WIDTH]);
        }
        let mem = b.add_primitive("mem", "std_mem_d1", &[WIDTH, MEM_TOTAL, 4]);
        b.set_cell_attribute(mem, calyx::core::ir::attr::external(), 1);

        let mut gen = Gen {
            b: &mut b,
            mem,
            group_counter: 0,
        };
        let control = gen.node(&spec.root);
        // Drain: registers are not architectural state (register sharing
        // may rename them), so every program ends by storing each register
        // into its reserved memory slot.
        let mut stmts = vec![control];
        for i in 0..REGS {
            let g = gen.action_group(&Action::Store {
                addr: MEM_SIZE + i as u64,
                src: i,
            });
            stmts.push(Control::enable(g));
        }
        gen.b.set_control(Control::seq(stmts));
    }
    ctx.add_component(comp);
    calyx::core::ir::validate::validate_context(&ctx).expect("generated programs are well-formed");
    ctx
}

struct Gen<'a, 'b> {
    b: &'a mut Builder<'b>,
    mem: Id,
    group_counter: usize,
}

impl Gen<'_, '_> {
    fn fresh(&mut self, prefix: &str) -> String {
        self.group_counter += 1;
        format!("{prefix}{}", self.group_counter)
    }

    fn action_group(&mut self, action: &Action) -> Id {
        let name = self.fresh("act");
        let g = self.b.add_group(&name);
        match action {
            Action::SetConst { dst, value } => {
                let r = Id::new(reg_name(*dst));
                self.b.asgn_const(g, (r, "in"), *value, WIDTH as u32);
                self.b.asgn_const(g, (r, "write_en"), 1, 1);
                self.b.group_done(g, (r, "done"));
            }
            Action::AddConst { dst, src, value } => {
                let add_name = self.fresh("add");
                let add = self.b.add_primitive(&add_name, "std_add", &[WIDTH]);
                let (d, s) = (Id::new(reg_name(*dst)), Id::new(reg_name(*src)));
                self.b.asgn(g, (add, "left"), (s, "out"));
                self.b.asgn_const(g, (add, "right"), *value, WIDTH as u32);
                self.b.asgn(g, (d, "in"), (add, "out"));
                self.b.asgn_const(g, (d, "write_en"), 1, 1);
                self.b.group_done(g, (d, "done"));
            }
            Action::AddRegs { dst, a, b: rb } => {
                let add_name = self.fresh("add");
                let add = self.b.add_primitive(&add_name, "std_add", &[WIDTH]);
                let (d, ra, rb) = (
                    Id::new(reg_name(*dst)),
                    Id::new(reg_name(*a)),
                    Id::new(reg_name(*rb)),
                );
                self.b.asgn(g, (add, "left"), (ra, "out"));
                self.b.asgn(g, (add, "right"), (rb, "out"));
                self.b.asgn(g, (d, "in"), (add, "out"));
                self.b.asgn_const(g, (d, "write_en"), 1, 1);
                self.b.group_done(g, (d, "done"));
            }
            Action::Store { addr, src } => {
                let s = Id::new(reg_name(*src));
                self.b.asgn_const(g, (self.mem, "addr0"), *addr, 4);
                self.b.asgn(g, (self.mem, "write_data"), (s, "out"));
                self.b.asgn_const(g, (self.mem, "write_en"), 1, 1);
                self.b.group_done(g, (self.mem, "done"));
            }
            Action::Load { dst, addr } => {
                let d = Id::new(reg_name(*dst));
                self.b.asgn_const(g, (self.mem, "addr0"), *addr, 4);
                self.b.asgn(g, (d, "in"), (self.mem, "read_data"));
                self.b.asgn_const(g, (d, "write_en"), 1, 1);
                self.b.group_done(g, (d, "done"));
            }
        }
        g
    }

    fn node(&mut self, node: &Node) -> Control {
        match node {
            Node::Leaf(a) => Control::enable(self.action_group(a)),
            Node::Seq(ns) => Control::seq(ns.iter().map(|n| self.node(n)).collect()),
            Node::Par(ns) => Control::par(ns.iter().map(|n| self.node(n)).collect()),
            Node::If {
                reg,
                konst,
                then_,
                else_,
            } => {
                let lt_name = self.fresh("iflt");
                let lt = self.b.add_primitive(&lt_name, "std_lt", &[WIDTH]);
                let cname = self.fresh("cond");
                let cond = self.b.add_group(&cname);
                let r = Id::new(reg_name(*reg));
                self.b.asgn(cond, (lt, "left"), (r, "out"));
                self.b.asgn_const(cond, (lt, "right"), *konst, WIDTH as u32);
                self.b.group_done_const(cond, 1);
                let t = self.node(then_);
                let e = self.node(else_);
                Control::if_(PortRef::cell(lt, "out"), Some(cond), t, e)
            }
            Node::While {
                loop_idx,
                trips,
                body,
            } => {
                let w = Id::new(format!("w{loop_idx}"));
                let wadd = Id::new(format!("wadd{loop_idx}"));
                let wlt = Id::new(format!("wlt{loop_idx}"));

                // reset counter
                let rname = self.fresh("wreset");
                let reset = self.b.add_group(&rname);
                self.b.asgn_const(reset, (w, "in"), 0, WIDTH as u32);
                self.b.asgn_const(reset, (w, "write_en"), 1, 1);
                self.b.group_done(reset, (w, "done"));

                // condition: w < trips
                let cname = self.fresh("wcond");
                let cond = self.b.add_group(&cname);
                self.b.asgn(cond, (wlt, "left"), (w, "out"));
                self.b
                    .asgn_const(cond, (wlt, "right"), *trips, WIDTH as u32);
                self.b.group_done_const(cond, 1);

                // increment
                let iname = self.fresh("wincr");
                let incr = self.b.add_group(&iname);
                self.b.asgn(incr, (wadd, "left"), (w, "out"));
                self.b.asgn_const(incr, (wadd, "right"), 1, WIDTH as u32);
                self.b.asgn(incr, (w, "in"), (wadd, "out"));
                self.b.asgn_const(incr, (w, "write_en"), 1, 1);
                self.b.group_done(incr, (w, "done"));

                let body = self.node(body);
                Control::seq(vec![
                    Control::enable(reset),
                    Control::while_(
                        PortRef::cell(wlt, "out"),
                        Some(cond),
                        Control::seq(vec![body, Control::enable(incr)]),
                    ),
                ])
            }
        }
    }
}

/// Collect the observable state (data registers + memory) through the
/// provided accessors.
pub fn observable_state(
    _spec: &ProgramSpec,
    _reg: impl Fn(&str) -> Option<Vec<u64>>,
    mem: impl Fn(&str) -> Option<Vec<u64>>,
) -> Vec<(String, Vec<u64>)> {
    // Only the external memory is architectural state; its tail slots hold
    // the drained register values (see `build_program`).
    vec![("mem".to_string(), mem("mem").unwrap_or_default())]
}

// Allow this module to be included by multiple test binaries without
// `unused` warnings when only part of the API is exercised.
#[allow(dead_code)]
fn _unused() {}

/// Regression test: `par` branches must be pairwise interference-free —
/// no branch may write a register a sibling reads *or* writes, and at most
/// one branch may touch the memory. The original `make_par_sound` only
/// enforced write/write disjointness, so a branch could observe a register
/// mid-update by a sibling (e.g. an `if` whose condition register a
/// sibling `seq` was rewriting); such races made the static-timing
/// differential test flag a divergence that was really undefined behavior
/// in the generated program.
#[test]
fn par_branches_never_interfere() {
    fn footprint(n: &Node) -> (BTreeSet<usize>, BTreeSet<usize>, bool) {
        let mut writes = BTreeSet::new();
        let mut reads = BTreeSet::new();
        n.reg_writes(&mut writes);
        n.reg_reads(&mut reads);
        (writes, reads, n.touches_mem())
    }
    fn check(n: &Node) {
        match n {
            Node::Leaf(_) => {}
            Node::Seq(ns) => ns.iter().for_each(check),
            Node::Par(ns) => {
                for (i, a) in ns.iter().enumerate() {
                    let (wa, ra, ma) = footprint(a);
                    for b in &ns[i + 1..] {
                        let (wb, rb, mb) = footprint(b);
                        assert!(
                            wa.intersection(&wb).count() == 0
                                && wa.intersection(&rb).count() == 0
                                && wb.intersection(&ra).count() == 0,
                            "par branches interfere: {a:?} vs {b:?}"
                        );
                        assert!(!(ma && mb), "two par branches touch memory: {a:?} vs {b:?}");
                    }
                }
                ns.iter().for_each(check);
            }
            Node::If { then_, else_, .. } => {
                check(then_);
                check(else_);
            }
            Node::While { body, .. } => check(body),
        }
    }

    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;
    use std::collections::BTreeSet;
    let mut runner = TestRunner::default();
    for _ in 0..256 {
        let spec = program_spec()
            .new_tree(&mut runner)
            .expect("strategy works")
            .current();
        check(&spec.root);
    }
}

#[test]
fn generator_produces_valid_programs() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::default();
    for _ in 0..32 {
        let spec = program_spec()
            .new_tree(&mut runner)
            .expect("strategy works")
            .current();
        // `build_program` validates internally.
        let _ = build_program(&spec);
    }
}
