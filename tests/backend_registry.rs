//! The `Backend` trait contract over real designs: the streaming
//! registry-based entry points must be byte-identical to the original
//! String-returning ones, and preconditions must gate emission cleanly.

use calyx::backend::{area, verilog};
use calyx::backend::{Backend, BackendOpts, BackendRegistry, CalyxBackend, VerilogBackend};
use calyx::core::ir::{parse_context, Context, Printer};
use calyx::core::passes;
use calyx::polybench::{compile_kernel, KERNELS};

fn emit_via_registry(name: &str, ctx: &Context) -> Vec<u8> {
    let backend = BackendRegistry::default()
        .get(name, &BackendOpts::default())
        .unwrap();
    backend.validate(ctx).unwrap();
    let mut out = Vec::new();
    backend.emit(ctx, &mut out).unwrap();
    out
}

/// New-API output is byte-identical to the old entry points on every
/// PolyBench kernel, for both codegen backends.
#[test]
fn streaming_backends_match_string_entry_points_on_all_kernels() {
    assert_eq!(KERNELS.len(), 19);
    for def in KERNELS {
        let (_, mut ctx) = compile_kernel(def, 4, 1).unwrap();
        passes::lower_pipeline().run(&mut ctx).unwrap();

        let old_sv = verilog::emit(&ctx).unwrap();
        let new_sv = emit_via_registry("verilog", &ctx);
        assert_eq!(
            old_sv.as_bytes(),
            new_sv.as_slice(),
            "verilog drift on `{}`",
            def.name
        );

        let old_calyx = Printer::print_context(&ctx);
        let new_calyx = emit_via_registry("calyx", &ctx);
        assert_eq!(
            old_calyx.as_bytes(),
            new_calyx.as_slice(),
            "calyx printer drift on `{}`",
            def.name
        );
    }
}

const UNLOWERED: &str = r#"
    component main() -> () {
      cells { r = std_reg(8); }
      wires { group g { r.in = 8'd7; r.write_en = 1'd1; g[done] = r.done; } }
      control { g; }
    }
"#;

/// `validate` rejects an unlowered program for every backend that
/// requires `lower`, and `emit` writes nothing when it fails.
#[test]
fn lowering_preconditions_gate_emission_without_partial_output() {
    let ctx = parse_context(UNLOWERED).unwrap();
    let registry = BackendRegistry::default();
    for name in ["verilog", "area", "sim"] {
        let backend = registry.get(name, &BackendOpts::default()).unwrap();
        assert_eq!(backend.required_pipeline(), &["lower"], "{name}");
        assert!(backend.validate(&ctx).is_err(), "{name} accepted unlowered");
        let mut out = Vec::new();
        assert!(backend.emit(&ctx, &mut out).is_err(), "{name}");
        assert!(out.is_empty(), "{name} left partial output: {out:?}");
    }
    // The printer and the interpreter accept the unlowered program.
    for name in ["calyx", "interp"] {
        let backend = registry.get(name, &BackendOpts::default()).unwrap();
        backend.validate(&ctx).unwrap();
    }
}

/// The report backends produce the stable formats the docs promise.
#[test]
fn area_reports_are_stable_and_consistent_across_formats() {
    let mut ctx = parse_context(UNLOWERED).unwrap();
    passes::lower_pipeline().run(&mut ctx).unwrap();
    let a = area::estimate(&ctx, "main").unwrap();

    let text = String::from_utf8(emit_via_registry("area", &ctx)).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5, "{text}");
    assert_eq!(lines[0], format!("luts {}", a.luts));
    assert_eq!(lines[1], format!("ffs {}", a.ffs));
    assert_eq!(lines[2], format!("dsps {}", a.dsps));
    assert_eq!(lines[3], format!("brams {}", a.brams));
    assert_eq!(lines[4], format!("register_cells {}", a.register_cells));

    let json_backend = BackendRegistry::default()
        .get(
            "area",
            &BackendOpts {
                format: calyx::backend::ReportFormat::Json,
                ..BackendOpts::default()
            },
        )
        .unwrap();
    let mut out = Vec::new();
    json_backend.emit(&ctx, &mut out).unwrap();
    let json = String::from_utf8(out).unwrap();
    assert_eq!(
        json.trim_end(),
        format!(
            "{{\"luts\":{},\"ffs\":{},\"dsps\":{},\"brams\":{},\"register_cells\":{}}}",
            a.luts, a.ffs, a.dsps, a.brams, a.register_cells
        )
    );
}

/// `sim` (on the lowered design) and `interp` (on the control tree) must
/// agree on final architectural state — the differential oracle, now
/// reachable through the backend registry alone.
#[test]
fn sim_and_interp_backends_agree_on_final_state() {
    let unlowered = parse_context(UNLOWERED).unwrap();
    let mut lowered = parse_context(UNLOWERED).unwrap();
    passes::lower_pipeline().run(&mut lowered).unwrap();

    let state_lines = |report: Vec<u8>| -> Vec<String> {
        String::from_utf8(report)
            .unwrap()
            .lines()
            .filter(|l| !l.starts_with("done in "))
            // fsm registers are lowering artifacts; compare architecture.
            .filter(|l| !l.starts_with("fsm"))
            .map(str::to_string)
            .collect()
    };
    let sim = state_lines(emit_via_registry("sim", &lowered));
    let interp = state_lines(emit_via_registry("interp", &unlowered));
    assert_eq!(sim, interp);
    assert!(sim.iter().any(|l| l == "r = 7"), "{sim:?}");
}

/// Old String-returning `verilog::emit` is now a wrapper over the
/// streaming path; both reject unlowered input identically.
#[test]
fn wrapper_and_streaming_reject_identically() {
    let ctx = parse_context(UNLOWERED).unwrap();
    let via_string = verilog::emit(&ctx).unwrap_err();
    let mut out = Vec::new();
    let via_stream = verilog::emit_to(&ctx, &mut out).unwrap_err();
    assert_eq!(format!("{via_string}"), format!("{via_stream}"));
    assert!(out.is_empty());
}

/// Registry-constructed backends carry the driver options: a tiny cycle
/// budget must make the sim backend fail with a timeout, not emit.
#[test]
fn backend_opts_reach_registry_constructed_backends() {
    let mut ctx = parse_context(UNLOWERED).unwrap();
    passes::lower_pipeline().run(&mut ctx).unwrap();
    let backend = BackendRegistry::default()
        .get(
            "sim",
            &BackendOpts {
                cycles: 1,
                ..BackendOpts::default()
            },
        )
        .unwrap();
    let mut out = Vec::new();
    let err = backend.emit(&ctx, &mut out).unwrap_err();
    assert!(format!("{err}").contains("did not complete"), "{err}");
}

/// A custom backend registers alongside the built-ins — the extension
/// story the trait exists for.
#[test]
fn third_party_backends_register_alongside_builtins() {
    struct CellCount;
    impl Backend for CellCount {
        const NAME: &'static str = "cell-count";
        const DESCRIPTION: &'static str = "count cells in the entry component";
        fn from_opts(_: &BackendOpts) -> Self {
            CellCount
        }
        fn required_pipeline(&self) -> &'static [&'static str] {
            &[]
        }
        fn validate(&self, ctx: &Context) -> calyx::core::errors::CalyxResult<()> {
            ctx.entry().map(|_| ())
        }
        fn emit(
            &self,
            ctx: &Context,
            out: &mut dyn std::io::Write,
        ) -> calyx::core::errors::CalyxResult<()> {
            writeln!(out, "{}", ctx.entry()?.cells.len())?;
            Ok(())
        }
    }

    let mut registry = BackendRegistry::default();
    registry.register::<CellCount>();
    let ctx = parse_context(UNLOWERED).unwrap();
    let backend = registry.get("cell-count", &BackendOpts::default()).unwrap();
    let mut out = Vec::new();
    backend.emit(&ctx, &mut out).unwrap();
    assert_eq!(String::from_utf8(out).unwrap().trim(), "1");
}

/// Smoke every registered backend over a design each can accept.
#[test]
fn every_registered_backend_emits_nonempty_output() {
    let unlowered = parse_context(UNLOWERED).unwrap();
    let mut lowered = parse_context(UNLOWERED).unwrap();
    passes::lower_pipeline().run(&mut lowered).unwrap();
    for b in BackendRegistry::default().backends() {
        let ctx = if b.required_pipeline == ["lower"] {
            &lowered
        } else {
            &unlowered
        };
        let out = emit_via_registry(b.name, ctx);
        assert!(!out.is_empty(), "backend `{}` emitted nothing", b.name);
    }
}

// Keep the explicit type parameter path exercised (CalyxBackend and
// VerilogBackend are also public items, not just registry entries).
#[test]
fn concrete_backend_types_are_usable_directly() {
    let ctx = parse_context(UNLOWERED).unwrap();
    let mut out = Vec::new();
    CalyxBackend::from_opts(&BackendOpts::default())
        .emit(&ctx, &mut out)
        .unwrap();
    assert_eq!(out, Printer::print_context(&ctx).as_bytes());
    assert_eq!(VerilogBackend::NAME, "verilog");
}
