//! Differential and integration tests for the analysis cache.
//!
//! The cache is an optimization, so it must be *invisible*: a pipeline run
//! with memoized analyses must produce byte-identical Calyx to a run where
//! every query recomputes (`AnalysisCache::recompute_every_query`). Any
//! divergence means a pass mutated a component without signaling dirty —
//! exactly the bug class the invalidation contract exists to prevent. The
//! suite pins this on all PolyBench kernels, and additionally checks the
//! invalidation machinery end-to-end (mutate → generation bump →
//! recompute) and that cache-mediated analysis dependencies match
//! hand-computed results.

use calyx::core::analysis::{
    AnalysisCache, BoundaryRegs, Interference, Liveness, Pcfg, PortUses, ReadWriteSets,
};
use calyx::core::ir::{parse_context, Context, Id, Printer};
use calyx::core::passes::{self, Pass, PassManager};
use calyx::polybench::{compile_kernel, KERNELS};
use std::collections::BTreeSet;

const N: u64 = 4;

/// Run the pipeline named by `names` over a clone of `ctx` with the given
/// cache, and print the result.
fn printed_with(names: &[&str], ctx: &Context, cache: &mut AnalysisCache) -> String {
    let mut ctx = ctx.clone();
    PassManager::from_names(names)
        .expect("pipeline names are registered")
        .run_with_cache(&mut ctx, cache)
        .expect("pipeline succeeds");
    Printer::print_context(&ctx)
}

/// The headline differential: cache on vs cache force-disabled must be
/// byte-identical on every PolyBench kernel, for every standard pipeline.
#[test]
fn cached_and_uncached_pipelines_are_byte_identical_on_polybench() {
    for def in KERNELS {
        let (_ast, ctx) = compile_kernel(def, N, 1).expect("kernel compiles");
        for pipeline in [&["lower"][..], &["lower-static"][..], &["opt"][..]] {
            let cached = printed_with(pipeline, &ctx, &mut AnalysisCache::new());
            let uncached =
                printed_with(pipeline, &ctx, &mut AnalysisCache::recompute_every_query());
            assert_eq!(
                cached, uncached,
                "{}: pipeline {pipeline:?} diverges between cached and \
                 recompute-every-query runs",
                def.name
            );
        }
    }
}

/// The cached `opt` pipeline actually exercises the cache: it must record
/// hits (shared prerequisite analyses) on every kernel, and the uncached
/// run must record recomputes instead.
#[test]
fn opt_pipeline_reports_cache_activity() {
    let def = &KERNELS[0];
    let (_ast, ctx) = compile_kernel(def, N, 1).expect("kernel compiles");

    let mut pm = PassManager::from_names(&["opt"]).unwrap();
    let mut cache = AnalysisCache::new();
    let mut work = ctx.clone();
    pm.run_with_cache(&mut work, &mut cache).unwrap();
    let cached_stats = pm.total_cache_stats();
    assert!(
        cached_stats.hits > 0,
        "cached opt pipeline should share analyses: {cached_stats:?}"
    );

    let mut pm = PassManager::from_names(&["opt"]).unwrap();
    let mut work = ctx.clone();
    pm.run_with_cache(&mut work, &mut AnalysisCache::recompute_every_query())
        .unwrap();
    let uncached_stats = pm.total_cache_stats();
    assert_eq!(uncached_stats.hits, 0);
    assert!(
        uncached_stats.misses > cached_stats.misses,
        "disabling the cache must force extra computes: \
         {uncached_stats:?} vs {cached_stats:?}"
    );
}

const SRC: &str = r#"component main() -> () {
    cells { a = std_reg(8); b = std_reg(8); out = std_reg(8); add = std_add(8); }
    wires {
      group wa { a.in = 8'd1; a.write_en = 1'd1; wa[done] = a.done; }
      group wb { b.in = 8'd2; b.write_en = 1'd1; wb[done] = b.done; }
      group sum {
        add.left = a.out; add.right = b.out;
        out.in = add.out; out.write_en = 1'd1;
        sum[done] = out.done;
      }
    }
    control { seq { wa; wb; sum; } }
}"#;

/// Back-to-back disjoint lifetimes: `minimize-regs` merges `t1` into `t0`.
const MERGEABLE: &str = r#"component main() -> () {
    cells {
      t0 = std_reg(8); t1 = std_reg(8);
      @external m = std_mem_d1(8, 2, 1);
    }
    wires {
      group w0 { t0.in = 8'd5; t0.write_en = 1'd1; w0[done] = t0.done; }
      group s0 {
        m.addr0 = 1'd0; m.write_data = t0.out; m.write_en = 1'd1;
        s0[done] = m.done;
      }
      group w1 { t1.in = 8'd7; t1.write_en = 1'd1; w1[done] = t1.done; }
      group s1 {
        m.addr0 = 1'd1; m.write_data = t1.out; m.write_en = 1'd1;
        s1[done] = m.done;
      }
    }
    control { seq { w0; s0; w1; s1; } }
}"#;

/// Mutating a component through a pass bumps its generation and forces the
/// next query to recompute against the new program.
#[test]
fn mutation_bumps_generation_and_recomputes() {
    let mut ctx = parse_context(MERGEABLE).unwrap();
    let mut cache = AnalysisCache::new();
    let main = Id::new("main");

    // Warm the cache: t1 is used by groups w1 and s1.
    {
        let comp = ctx.component("main").unwrap();
        let uses = cache.get::<PortUses>(comp);
        assert_eq!(uses.cell_users(Id::new("t1")).len(), 2);
    }
    assert_eq!(cache.generation(main), 0);

    // `minimize-regs` merges `t1` into `t0` (disjoint live ranges) — a
    // real mutation, reported dirty, so the generation bumps.
    passes::MinimizeRegs.run_with(&mut ctx, &mut cache).unwrap();
    assert_eq!(cache.generation(main), 1, "rewrite must invalidate");

    // The next query recomputes and sees the rewritten program.
    cache.take_stats();
    let comp = ctx.component("main").unwrap();
    let uses = cache.get::<PortUses>(comp);
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.recomputes, 1);
    assert!(
        uses.cell_users(Id::new("t1")).is_empty(),
        "recomputed PortUses reflects the register merge"
    );
    assert_eq!(uses.cell_users(Id::new("t0")).len(), 4);

    // A read-only pass leaves the warmed cache untouched.
    passes::WellFormed.run_with(&mut ctx, &mut cache).unwrap();
    assert_eq!(cache.generation(main), 1);
    cache.take_stats();
    let comp = ctx.component("main").unwrap();
    cache.get::<PortUses>(comp);
    assert_eq!(cache.stats().hits, 1);
}

/// Cross-analysis dependency: `Liveness` pulled through the cache (which
/// resolves `Pcfg`, `ReadWriteSets`, and `BoundaryRegs` itself) must equal
/// liveness computed by hand from directly-constructed inputs.
#[test]
fn cached_liveness_matches_hand_computed_liveness() {
    let ctx = parse_context(SRC).unwrap();
    let comp = ctx.component("main").unwrap();

    // By hand, the way `minimize-regs` did before the cache existed.
    let rw = ReadWriteSets::analyze(comp);
    let pcfg = Pcfg::from_control(&comp.control);
    let boundary = BTreeSet::new(); // no continuous/condition registers
    let by_hand = Liveness::solve(&pcfg, &rw, &boundary);

    // Through the cache.
    let mut cache = AnalysisCache::new();
    assert!(cache.get::<BoundaryRegs>(comp).registers().is_empty());
    let cached = cache.get::<Liveness>(comp);

    assert_eq!(cached.live_in, by_hand.live_in);
    assert_eq!(cached.live_out, by_hand.live_out);

    // The interference relation built from cached facts agrees too.
    let cached_interference = cache.get::<Interference>(comp);
    let by_hand_interference = Interference::build(&pcfg, &rw, &boundary);
    for x in ["a", "b", "out"] {
        for y in ["a", "b", "out"] {
            assert_eq!(
                cached_interference.conflict(Id::new(x), Id::new(y)),
                by_hand_interference.conflict(Id::new(x), Id::new(y)),
                "interference({x}, {y}) diverges"
            );
        }
    }

    // Dependencies were shared: liveness + interference pulled pcfg/rw/
    // boundary from the cache rather than recomputing them.
    assert!(cache.take_stats().hits >= 3);
}
