//! The `Frontend` trait contract over real designs: registry-based
//! ingestion must be byte-identical to the original library entry
//! points, options must plumb through, and unknown names must fail with
//! errors listing the valid choices.

use calyx::core::errors::Error;
use calyx::core::ir::{parse_context, Context, Printer};
use calyx::frontend::{Frontend, FrontendOpts, FrontendRegistry};
use calyx::polybench::{compile_kernel, KERNELS};

fn print(ctx: &Context) -> String {
    Printer::print_context(ctx)
}

fn parse_via_registry(name: &str, opts: &FrontendOpts, src: &str) -> Context {
    FrontendRegistry::default()
        .get(name, opts)
        .unwrap()
        .parse(src)
        .unwrap()
}

/// `-f calyx` is byte-identical to the pre-registry `parse_context`
/// path on every PolyBench kernel (each kernel's Calyx text is obtained
/// by compiling the Dahlia source and printing it).
#[test]
fn calyx_frontend_is_byte_identical_to_parse_context_on_all_kernels() {
    assert_eq!(KERNELS.len(), 19);
    for def in KERNELS {
        let (_, ctx) = compile_kernel(def, 4, 1).unwrap();
        let text = print(&ctx);

        let via_registry = parse_via_registry("calyx", &FrontendOpts::default(), &text);
        let direct = parse_context(&text).unwrap();
        assert_eq!(
            print(&via_registry).as_bytes(),
            print(&direct).as_bytes(),
            "calyx frontend drift on `{}`",
            def.name
        );
    }
}

/// `-f dahlia` matches `calyx_dahlia::compile` on every kernel's Dahlia
/// source.
#[test]
fn dahlia_frontend_matches_compile_on_all_kernels() {
    for def in KERNELS {
        let src = (def.source)(4, 1);
        let via_registry = parse_via_registry("dahlia", &FrontendOpts::default(), &src);
        let direct = calyx::dahlia::compile(&src).unwrap();
        assert_eq!(
            print(&via_registry).as_bytes(),
            print(&direct).as_bytes(),
            "dahlia frontend drift on `{}`",
            def.name
        );
    }
}

/// `-f systolic` with `--fopt` dimensions matches the generator called
/// directly, and the config-file path agrees with the flags path.
#[test]
fn systolic_frontend_matches_direct_generation() {
    let mut opts = FrontendOpts::default();
    for flag in ["rows=2", "cols=3", "inner=4", "width=16"] {
        opts.push_flag(flag).unwrap();
    }
    let via_flags = parse_via_registry("systolic", &opts, "");
    let via_file = parse_via_registry(
        "systolic",
        &FrontendOpts::default(),
        "rows = 2\ncols = 3\ninner = 4\nwidth = 16\n",
    );
    let direct = calyx::systolic::generate(&calyx::systolic::SystolicConfig {
        rows: 2,
        cols: 3,
        inner: 4,
        width: 16,
    });
    assert_eq!(print(&via_flags).as_bytes(), print(&direct).as_bytes());
    assert_eq!(print(&via_file).as_bytes(), print(&direct).as_bytes());
}

/// `-f polybench` emits the same seed program as `compile_kernel` for
/// every kernel.
#[test]
fn polybench_frontend_matches_compile_kernel_on_all_kernels() {
    for def in KERNELS {
        let mut opts = FrontendOpts::default();
        opts.set("kernel", def.name);
        let via_registry = parse_via_registry("polybench", &opts, "");
        let (_, direct) = compile_kernel(def, 4, 1).unwrap();
        assert_eq!(
            print(&via_registry).as_bytes(),
            print(&direct).as_bytes(),
            "polybench frontend drift on `{}`",
            def.name
        );
    }
}

/// Third-party frontends register like first-party ones: selectable by
/// name, discoverable by extension, options plumbed through.
#[test]
fn third_party_registration_works() {
    struct ConstantFrontend {
        width: u64,
    }
    impl Frontend for ConstantFrontend {
        const NAME: &'static str = "constant";
        const DESCRIPTION: &'static str = "a register holding a constant";
        fn extensions() -> &'static [&'static str] {
            &["const"]
        }
        fn options() -> &'static [(&'static str, &'static str)] {
            &[("width", "register width in bits (default 8)")]
        }
        fn from_opts(opts: &FrontendOpts) -> Result<Self, Error> {
            opts.expect_keys(Self::NAME, Self::options())?;
            Ok(ConstantFrontend {
                width: opts.get_u64(Self::NAME, "width")?.unwrap_or(8),
            })
        }
        fn parse(&self, src: &str) -> Result<Context, Error> {
            let value: u64 = src.trim().parse().map_err(|_| Error::Parse {
                msg: format!("expected a number, got `{}`", src.trim()),
                line: 1,
                col: 1,
            })?;
            parse_context(&format!(
                "component main() -> () {{
                   cells {{ r = std_reg({w}); }}
                   wires {{ group g {{ r.in = {w}'d{value}; r.write_en = 1'd1; g[done] = r.done; }} }}
                   control {{ g; }}
                 }}",
                w = self.width
            ))
        }
    }

    let mut registry = FrontendRegistry::default();
    registry.register::<ConstantFrontend>();
    assert_eq!(registry.by_extension("const").unwrap().name, "constant");

    let mut opts = FrontendOpts::default();
    opts.set("width", "16");
    let ctx = registry.get("constant", &opts).unwrap().parse("7").unwrap();
    assert!(print(&ctx).contains("16'd7"), "{}", print(&ctx));

    // And its parse errors participate in caret diagnostics.
    let err = registry
        .get("constant", &opts)
        .unwrap()
        .parse("seven")
        .unwrap_err();
    let rendered = err.caret_diagnostic("in.const", "seven").unwrap();
    assert!(rendered.contains("in.const:1:1"), "{rendered}");
    assert!(rendered.ends_with("^"), "{rendered}");
}

/// Unknown frontends and unknown `--fopt` keys fail with errors listing
/// the valid choices (the driver turns these into exit-2 usage errors).
#[test]
fn unknown_names_list_valid_choices() {
    let registry = FrontendRegistry::default();
    let err = match registry.get("verilog", &FrontendOpts::default()) {
        Err(e) => e,
        Ok(_) => panic!("backend name resolved as a frontend"),
    };
    let msg = format!("{err}");
    for f in registry.frontends() {
        assert!(msg.contains(f.name), "missing `{}` in: {msg}", f.name);
    }

    let mut opts = FrontendOpts::default();
    opts.set("size", "4");
    let err = match registry.get("polybench", &opts) {
        Err(e) => e,
        Ok(_) => panic!("unknown key accepted"),
    };
    let msg = format!("{err}");
    assert!(msg.contains("frontend `polybench`"), "{msg}");
    for key in ["kernel", "n", "unroll"] {
        assert!(msg.contains(key), "missing `{key}` in: {msg}");
    }
}
