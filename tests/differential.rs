//! Differential testing: random control programs executed by the reference
//! interpreter must leave exactly the same architectural state as the same
//! programs compiled (under every optimization configuration) and run on
//! the cycle-accurate RTL simulator.
//!
//! This exercises the entire compiler — `CompileControl`'s FSMs,
//! `GoInsertion`, `RemoveGroups`' interface-signal inlining, static timing,
//! and both sharing passes — against an executable semantics of the IL.

mod random_programs;

use calyx::core::passes;
use calyx::sim::interp::Interpreter;
use calyx::sim::rtl::Simulator;
use proptest::prelude::*;
use random_programs::{build_program, observable_state, ProgramSpec};

/// Final state via the reference interpreter.
fn run_interp(spec: &ProgramSpec) -> Vec<(String, Vec<u64>)> {
    let ctx = build_program(spec);
    let mut interp = Interpreter::new(&ctx, "main").expect("interpretable");
    interp.run(200_000).expect("interpreter terminates");
    observable_state(
        spec,
        |cell| interp.register_value(cell).ok().map(|v| vec![v]),
        |cell| interp.memory(cell).ok(),
    )
}

/// Final state via lowering + RTL simulation.
fn run_rtl(spec: &ProgramSpec, rs: bool, mr: bool, st: bool) -> Vec<(String, Vec<u64>)> {
    let mut ctx = build_program(spec);
    passes::optimized_pipeline(rs, mr, st)
        .run(&mut ctx)
        .expect("pipeline succeeds");
    let mut sim = Simulator::new(&ctx, "main").expect("elaborates");
    sim.run(500_000).expect("design terminates");
    observable_state(
        spec,
        |cell| sim.register_value(&[cell]).ok().map(|v| vec![v]),
        |cell| sim.memory(&[cell]).ok(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// The fundamental compiler-correctness property: interpretation and
    /// compiled execution agree on all observable state.
    #[test]
    fn compiled_execution_matches_interpreter(spec in random_programs::program_spec()) {
        let reference = run_interp(&spec);
        let lowered = run_rtl(&spec, false, false, false);
        prop_assert_eq!(&reference, &lowered, "dynamic lowering diverged");
    }

    /// Optimization soundness: sharing and static timing never change
    /// architectural results.
    #[test]
    fn optimizations_preserve_semantics(spec in random_programs::program_spec()) {
        let baseline = run_rtl(&spec, false, false, false);
        let shared = run_rtl(&spec, true, true, false);
        prop_assert_eq!(&baseline, &shared, "sharing passes diverged");
        let static_ = run_rtl(&spec, false, false, true);
        prop_assert_eq!(&baseline, &static_, "static timing diverged");
        let all = run_rtl(&spec, true, true, true);
        prop_assert_eq!(&baseline, &all, "combined pipeline diverged");
    }
}
