//! Printer/parser round-tripping: randomly generated programs print to
//! text that parses back to a program printing identically, at every
//! compilation stage.

mod random_programs;

use calyx::core::ir::{parse_context, Printer};
use calyx::core::passes;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Frontend-level programs round-trip.
    #[test]
    fn generated_programs_roundtrip(spec in random_programs::program_spec()) {
        let ctx = random_programs::build_program(&spec);
        let printed = Printer::print_context(&ctx);
        let reparsed = parse_context(&printed)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{printed}")))?;
        prop_assert_eq!(Printer::print_context(&reparsed), printed);
    }

    /// Lowered (FSM-compiled, group-free) programs also round-trip: the
    /// printer/parser cover the guard language the compiler emits.
    #[test]
    fn lowered_programs_roundtrip(spec in random_programs::program_spec()) {
        let mut ctx = random_programs::build_program(&spec);
        passes::lower_pipeline().run(&mut ctx).expect("lowers");
        let printed = Printer::print_context(&ctx);
        let reparsed = parse_context(&printed)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{printed}")))?;
        prop_assert_eq!(Printer::print_context(&reparsed), printed);
    }
}

#[test]
fn polybench_sources_roundtrip_through_calyx() {
    for def in calyx::polybench::KERNELS.iter().take(6) {
        let (_, ctx) = calyx::polybench::compile_kernel(def, 4, 1).unwrap();
        let printed = Printer::print_context(&ctx);
        let reparsed = parse_context(&printed).unwrap_or_else(|e| panic!("{}: {e}", def.name));
        assert_eq!(
            Printer::print_context(&reparsed),
            printed,
            "{} did not round-trip",
            def.name
        );
    }
}
