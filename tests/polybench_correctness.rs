//! End-to-end correctness: every PolyBench kernel, compiled through
//! Dahlia → Calyx → lowering under several optimization configurations,
//! must reproduce the reference semantics bit-for-bit.

use calyx::polybench::{kernel, simulate, KernelDef, PipelineConfig, KERNELS};

const N: u64 = 4;

fn check(def: &KernelDef, unroll: u64, cfg: PipelineConfig) {
    simulate(def, N, unroll, cfg)
        .unwrap_or_else(|e| panic!("{} (unroll {unroll}, {cfg:?}): {e}", def.name));
}

#[test]
fn all_kernels_unoptimized() {
    for def in KERNELS {
        check(def, 1, PipelineConfig::none());
    }
}

#[test]
fn all_kernels_fully_optimized() {
    for def in KERNELS {
        check(def, 1, PipelineConfig::all());
    }
}

#[test]
fn all_kernels_resource_sharing_only() {
    for def in KERNELS {
        check(
            def,
            1,
            PipelineConfig {
                resource_sharing: true,
                minimize_regs: false,
                static_timing: false,
            },
        );
    }
}

#[test]
fn all_kernels_register_sharing_only() {
    for def in KERNELS {
        check(
            def,
            1,
            PipelineConfig {
                resource_sharing: false,
                minimize_regs: true,
                static_timing: false,
            },
        );
    }
}

#[test]
fn unrolled_kernels_all_configs() {
    for def in KERNELS.iter().filter(|k| k.unrollable) {
        check(def, 2, PipelineConfig::none());
        check(def, 2, PipelineConfig::all());
    }
}

#[test]
fn static_timing_is_no_slower() {
    // The latency-sensitive pass (§4.4) should never make a design slower.
    for name in ["gemm", "atax", "trisolv"] {
        let def = kernel(name).unwrap();
        let dynamic = simulate(def, N, 1, PipelineConfig::none()).unwrap();
        let static_ = simulate(
            def,
            N,
            1,
            PipelineConfig {
                resource_sharing: false,
                minimize_regs: false,
                static_timing: true,
            },
        )
        .unwrap();
        assert!(
            static_.cycles <= dynamic.cycles,
            "{name}: static {} vs dynamic {}",
            static_.cycles,
            dynamic.cycles
        );
    }
}
