//! Regression tests for the dynamic/static scheduling boundary.
//!
//! A static island asserts `done` combinationally in the very cycle its
//! final writes commit (§4.4's contract). The registered `done` pulses of
//! those writes (`mem.done`, `reg.done`) therefore land in the cycle
//! *after* the island completes — which is exactly when a dynamic parent
//! that advanced on the island's raw done would enable the next sibling.
//! A sibling whose own done comes from the same source then consumes the
//! stale pulse as its completion and is skipped without ever running.
//!
//! These tests pin the fix (CompileControl's `sd_*` completion savers)
//! end-to-end: minimized from a failing case of the
//! `optimizations_preserve_semantics` differential test, they fail with
//! the drained memory slot reading 0 if the saver logic regresses.

use calyx::core::ir::parse_context;
use calyx::core::passes;
use calyx::sim::rtl::Simulator;

fn run(src: &str) -> Vec<u64> {
    let mut ctx = parse_context(src).expect("parses");
    passes::lower_pipeline().run(&mut ctx).expect("lowers");
    let mut sim = Simulator::new(&ctx, "main").expect("elaborates");
    sim.run(10_000).expect("terminates");
    sim.memory(&["mem"]).expect("memory readable")
}

/// seq { static island writing mem; dynamic group writing mem } — the
/// dynamic group's write must not be skipped.
#[test]
fn dynamic_seq_sibling_after_static_island_runs() {
    let mem = run(r#"component main() -> () {
      cells { @external mem = std_mem_d1(8, 2, 1); }
      wires {
        group island<"static"=1> {
          mem.addr0 = 1'd0; mem.write_data = 8'd7; mem.write_en = 1'd1;
          island[done] = 1'd1;
        }
        group wr {
          mem.addr0 = 1'd1; mem.write_data = 8'd42; mem.write_en = 1'd1;
          wr[done] = mem.done;
        }
      }
      control { seq { island; wr; } }
    }"#);
    assert_eq!(mem, vec![7, 42]);
}

/// The same hazard through a dynamic `if` whose taken branch is a static
/// island: the if completes in the island's commit cycle, and the next
/// seq sibling must still run.
#[test]
fn dynamic_sibling_after_if_with_static_branch_runs() {
    let mem = run(r#"component main() -> () {
      cells { @external mem = std_mem_d1(8, 2, 1); r = std_reg(8); lt = std_lt(8); }
      wires {
        group cond { lt.left = r.out; lt.right = 8'd140; cond[done] = 1'd1; }
        group island<"static"=1> {
          mem.addr0 = 1'd0; mem.write_data = 8'd7; mem.write_en = 1'd1;
          island[done] = 1'd1;
        }
        group other { r.in = 8'd1; r.write_en = 1'd1; other[done] = r.done; }
        group wr {
          mem.addr0 = 1'd1; mem.write_data = 8'd42; mem.write_en = 1'd1;
          wr[done] = mem.done;
        }
      }
      control { seq { if lt.out with cond { island; } else { other; } wr; } }
    }"#);
    assert_eq!(mem, vec![7, 42]);
}
