//! Backend integration: SystemVerilog emission and area estimation over
//! real designs from both frontends.

use calyx::backend::{area, verilog};
use calyx::core::passes;
use calyx::polybench::{kernel, PipelineConfig};
use calyx::systolic::{generate, SystolicConfig};

#[test]
fn systolic_array_emits_synthesizable_shaped_verilog() {
    let mut ctx = generate(&SystolicConfig::square(4));
    passes::lower_pipeline_static().run(&mut ctx).unwrap();
    let sv = verilog::emit(&ctx).unwrap();
    // Structural sanity: balanced module/endmodule, a PE definition before
    // main, memories as instances, a threaded clock.
    assert_eq!(
        sv.matches("\nmodule ").count() + usize::from(sv.starts_with("module ")),
        sv.matches("endmodule").count()
    );
    assert!(sv.find("module mac_pe").unwrap() < sv.find("module main").unwrap());
    assert!(sv.contains("std_mem_d1 #("));
    assert!(sv.contains(".clk(clk)"));
    assert!(verilog::line_count(&sv) > 500);
}

#[test]
fn polybench_kernel_emits_verilog_and_area() {
    let def = kernel("gemm").unwrap();
    let run = calyx::polybench::simulate(def, 4, 1, PipelineConfig::all()).unwrap();
    let sv = verilog::emit(&run.lowered).unwrap();
    assert!(sv.contains("module main"));
    assert!(sv.contains("module std_mult_pipe"));
    let a = area::estimate(&run.lowered, "main").unwrap();
    assert!(a.luts > 0 && a.ffs > 0 && a.dsps > 0, "{a:?}");
}

#[test]
fn area_grows_with_array_size() {
    let small = {
        let mut ctx = generate(&SystolicConfig::square(2));
        passes::lower_pipeline().run(&mut ctx).unwrap();
        area::estimate(&ctx, "main").unwrap()
    };
    let large = {
        let mut ctx = generate(&SystolicConfig::square(4));
        passes::lower_pipeline().run(&mut ctx).unwrap();
        area::estimate(&ctx, "main").unwrap()
    };
    assert!(large.luts > small.luts);
    assert!(large.dsps > small.dsps);
    assert!(large.ffs > small.ffs);
}

#[test]
fn emitted_verilog_loc_tracks_design_size() {
    let loc = |n: usize| {
        let mut ctx = generate(&SystolicConfig::square(n));
        passes::lower_pipeline_static().run(&mut ctx).unwrap();
        verilog::line_count(&verilog::emit(&ctx).unwrap())
    };
    assert!(loc(4) > loc(2));
}
