//! Offline shim for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset of criterion's API the workspace's benches use:
//! benchmark groups, per-input benchmarks, and timed `iter` loops. Instead
//! of criterion's statistical analysis, each benchmark runs a fixed,
//! configurable number of samples and reports min/mean/max wall-clock time
//! per iteration on stdout — enough to eyeball regressions and to keep the
//! bench targets compiling and runnable without the real crate.
//!
//! Respects the CLI arguments cargo passes to bench binaries: a positional
//! filter selects benchmarks by substring, `--test` runs every benchmark
//! exactly once (used by `cargo test --benches`), and the remaining
//! criterion flags (`--bench`, `--noplot`, ...) are accepted and ignored.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            test_mode: false,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Parse the CLI arguments cargo passes to bench binaries.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // Flags with a value that we accept and ignore.
                "--sample-size" | "--measurement-time" | "--warm-up-time" | "--save-baseline"
                | "--baseline" | "--profile-time" | "--output-format" | "--color" => {
                    let _ = args.next();
                }
                // Valueless flags we accept and ignore.
                s if s.starts_with("--") => {}
                // The first free argument is the benchmark name filter.
                s if self.filter.is_none() => self.filter = Some(s.to_string()),
                _ => {}
            }
        }
        self
    }

    /// Override the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.default_sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a standalone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.run(&id, f);
        group.finish();
        self
    }

    fn should_run(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run(&id.full_name(), f);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        self.run(&id.full_name(), |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full_id = format!("{}/{}", self.name, id);
        if !self.criterion.should_run(&full_id) {
            return;
        }
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size
                .unwrap_or(self.criterion.default_sample_size)
        };
        let mut bencher = Bencher {
            samples: Vec::with_capacity(samples),
            sample_budget: samples,
        };
        f(&mut bencher);
        bencher.report(&full_id, self.criterion.test_mode);
    }

    /// Finish the group. (The shim reports incrementally, so this is a
    /// no-op kept for API compatibility.)
    pub fn finish(self) {}
}

/// A benchmark identifier with an attached parameter, e.g. `name/4`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier `name` specialized with `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier carrying only a parameter (criterion renders these under
    /// the group name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match (&self.name, &self.parameter) {
            (n, Some(p)) if n.is_empty() => p.clone(),
            (n, Some(p)) => format!("{n}/{p}"),
            (n, None) => n.clone(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], accepted wherever criterion takes
/// `impl Into<BenchmarkId>`-like ids.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self,
            parameter: None,
        }
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_budget: usize,
}

impl Bencher {
    /// Run `routine` once per sample, timing each run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str, test_mode: bool) {
        if test_mode {
            println!("test {id} ... ok");
            return;
        }
        if self.samples.is_empty() {
            println!("bench {id:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("nonempty");
        let max = self.samples.iter().max().expect("nonempty");
        println!(
            "bench {id:<40} samples={} min={min:?} mean={mean:?} max={max:?}",
            self.samples.len()
        );
    }
}

/// Define a function running a list of benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("calyx", 4).full_name(), "calyx/4");
        assert_eq!(BenchmarkId::from_parameter(8).full_name(), "8");
        assert_eq!("plain".into_benchmark_id().full_name(), "plain");
    }

    #[test]
    fn groups_run_and_sample() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_with_input(BenchmarkId::new("f", 1), &2, |b, &n| {
                b.iter(|| {
                    runs += 1;
                    n * n
                });
            });
            group.finish();
        }
        assert_eq!(runs, 3);
    }

    #[test]
    fn filter_skips_benchmarks() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            ..Criterion::default()
        };
        let mut runs = 0usize;
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 0);
    }
}
