//! Offline shim for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly instead of a `LockResult`. A
//! poisoned lock (a panic while holding the guard) is re-acquired via
//! [`std::sync::PoisonError::into_inner`], matching `parking_lot`'s
//! semantics of simply not tracking poison.

use std::sync::TryLockError;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(7);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 7);
    }
}
