//! Offline shim for the `proptest` crate (see `vendor/README.md`).
//!
//! Provides the subset of proptest's API this workspace uses, built around
//! a **deterministic** SplitMix64 generator: every test derives its seed
//! from its fully-qualified name (overridable with the `PROPTEST_SEED`
//! environment variable), so CI runs are reproducible by construction.
//! Case counts come from [`test_runner::Config::cases`] and can be capped
//! globally with `PROPTEST_CASES`.
//!
//! Shrinking is intentionally not implemented: on failure the harness
//! reports the case number and seed, which reproduce the exact input.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, ValueTree};
    pub use crate::test_runner::{
        Config as ProptestConfig, TestCaseError, TestCaseResult, TestRunner,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the `prop` module alias exposed by proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Run a list of property tests, mirroring proptest's macro of the same
/// name.
///
/// Each test runs `config.cases` deterministic cases; generated inputs are
/// bound with `pattern in strategy` syntax. The body may use the
/// `prop_assert*` macros and `?` over [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                let mut runner =
                    $crate::test_runner::TestRunner::new_for_test(config, test_name);
                let cases = runner.config.effective_cases();
                let seed = runner.seed();
                for case in 0..cases {
                    $(
                        let $arg_pat =
                            $crate::strategy::Strategy::gen_value(&($arg_strat), runner.rng_mut());
                    )+
                    let outcome = (|| -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err(e) => panic!(
                            "[proptest] {} failed at case {}/{} (seed 0x{:016x}): {}",
                            test_name,
                            case + 1,
                            cases,
                            seed,
                            e
                        ),
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg_pat in $arg_strat),+) $body
            )*
        }
    };
}

/// Choose uniformly among several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fail the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the current test case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                            l, r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                            l,
                            r,
                            format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Fail the current test case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                            l, r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                            l,
                            r,
                            format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::{Config, TestRng, TestRunner};

    #[test]
    fn ranges_are_in_bounds_and_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..1000 {
            let x = (3..17u64).gen_value(&mut a);
            assert!((3..17).contains(&x));
            assert_eq!(x, (3..17u64).gen_value(&mut b));
        }
    }

    #[test]
    fn one_of_and_map_compose() {
        let strat = prop_oneof![
            (0..4usize).prop_map(|n| n * 10),
            crate::strategy::Just(99usize),
        ];
        let mut rng = TestRng::new(42);
        let mut saw_just = false;
        let mut saw_mapped = false;
        for _ in 0..200 {
            match strat.gen_value(&mut rng) {
                99 => saw_just = true,
                n if n % 10 == 0 && n < 40 => saw_mapped = true,
                other => panic!("value {other} outside strategy range"),
            }
        }
        assert!(saw_just && saw_mapped, "both arms should be exercised");
    }

    #[test]
    fn recursion_depth_is_bounded() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            // Depth budget 3 plus the root layer.
            assert!(depth(&strat.gen_value(&mut rng)) <= 4);
        }
    }

    #[test]
    fn vec_sizes_respect_range() {
        let exact = crate::collection::vec(0..2u64, 4);
        let ranged = crate::collection::vec(0..2u64, 1..4);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            assert_eq!(exact.gen_value(&mut rng).len(), 4);
            let n = ranged.gen_value(&mut rng).len();
            assert!((1..4).contains(&n));
        }
    }

    #[test]
    fn new_tree_current_matches_runner_rng() {
        let mut runner = TestRunner::default();
        let tree = (0..100u64).new_tree(&mut runner).expect("infallible");
        let v = tree.current();
        assert_eq!(v, tree.current(), "current() is stable");
        assert!(v < 100);
    }

    #[test]
    fn seeds_differ_by_test_name_but_are_stable() {
        let a = TestRunner::new_for_test(Config::default(), "mod::test_a");
        let a2 = TestRunner::new_for_test(Config::default(), "mod::test_a");
        let b = TestRunner::new_for_test(Config::default(), "mod::test_b");
        assert_eq!(a.seed(), a2.seed());
        assert_ne!(a.seed(), b.seed());
    }

    proptest! {
        #![proptest_config(Config { cases: 16, ..Config::default() })]

        /// The proptest! macro itself: bindings, config, and assertions.
        #[test]
        fn macro_binds_and_asserts(x in 0..50u64, v in prop::collection::vec(0..10u64, 2..5)) {
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0, "vec sizes start at {}", 2);
        }
    }
}
