//! Strategies for collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive-exclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range {range:?}");
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            lo: *range.start(),
            hi: range.end() + 1,
        }
    }
}

/// Generate a `Vec` whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
