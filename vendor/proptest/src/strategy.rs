//! The [`Strategy`] trait and its combinators.

use crate::test_runner::{TestRng, TestRunner};
use std::cell::{Cell, RefCell};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest, generation is direct (no shrink trees): a
/// strategy maps an RNG to a value. [`Strategy::new_tree`] provides the
/// upstream entry point, returning a non-shrinking [`ValueTree`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and `recurse`
    /// receives a handle generating subtrees whose nesting is capped at
    /// `depth`. (`desired_size` and `expected_branch_size` are accepted
    /// for upstream signature compatibility; the depth cap alone bounds
    /// the shim's output.)
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: FnOnce(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let data = Rc::new(RecursiveData {
            leaf: Rc::new(self) as Rc<dyn Strategy<Value = Self::Value>>,
            branch: RefCell::new(None),
            remaining: Cell::new(0),
            depth,
        });
        let inner = BoxedStrategy(Rc::new(RecursiveInner(Rc::clone(&data))));
        let branch = recurse(inner);
        *data.branch.borrow_mut() = Some(Rc::new(branch) as Rc<dyn Strategy<Value = Self::Value>>);
        BoxedStrategy(Rc::new(RecursiveRoot(data)))
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Generate a value tree from the runner's RNG (upstream-compatible
    /// entry point; the tree does not shrink).
    fn new_tree(&self, runner: &mut TestRunner) -> Result<NoShrink<Self::Value>, String>
    where
        Self: Sized,
        Self::Value: Clone,
    {
        Ok(NoShrink(self.gen_value(runner.rng_mut())))
    }
}

/// A generated value plus (vestigial) shrinking hooks.
pub trait ValueTree {
    /// The type of the held value.
    type Value;

    /// The current value.
    fn current(&self) -> Self::Value;

    /// Attempt to make the value simpler. The shim never shrinks.
    fn simplify(&mut self) -> bool {
        false
    }

    /// Undo the last `simplify`. The shim never shrinks.
    fn complicate(&mut self) -> bool {
        false
    }
}

/// The shim's only [`ValueTree`]: a plain value.
#[derive(Debug, Clone)]
pub struct NoShrink<T>(pub(crate) T);

impl<T: Clone> ValueTree for NoShrink<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_value(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.gen_value(rng))
    }
}

/// Uniform choice among strategies of one value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Choose uniformly among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].gen_value(rng)
    }
}

/// Shared state of a recursive strategy. `remaining` is the depth budget
/// of the generation currently in flight; entering a branch decrements
/// it, and exhaustion falls back to the leaf strategy.
struct RecursiveData<T> {
    leaf: Rc<dyn Strategy<Value = T>>,
    branch: RefCell<Option<Rc<dyn Strategy<Value = T>>>>,
    remaining: Cell<u32>,
    depth: u32,
}

impl<T> RecursiveData<T> {
    fn branch(&self) -> Rc<dyn Strategy<Value = T>> {
        self.branch
            .borrow()
            .as_ref()
            .expect("recursive strategy used before prop_recursive returned")
            .clone()
    }
}

/// The handle passed to `prop_recursive`'s closure.
struct RecursiveInner<T>(Rc<RecursiveData<T>>);

impl<T> Strategy for RecursiveInner<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let remaining = self.0.remaining.get();
        if remaining == 0 {
            return self.0.leaf.gen_value(rng);
        }
        self.0.remaining.set(remaining - 1);
        let value = self.0.branch().gen_value(rng);
        self.0.remaining.set(remaining);
        value
    }
}

/// The strategy `prop_recursive` returns: resets the depth budget, then
/// generates from the branch.
struct RecursiveRoot<T>(Rc<RecursiveData<T>>);

impl<T> Strategy for RecursiveRoot<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.remaining.set(self.0.depth);
        self.0.branch().gen_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range {}..{} used as a strategy",
                        self.start,
                        self.end
                    );
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range used as a strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-domain u64 range; take the raw output.
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<char> {
    type Value = char;

    fn gen_value(&self, rng: &mut TestRng) -> char {
        assert!(self.start < self.end, "empty char range used as a strategy");
        let (lo, hi) = (self.start as u32, self.end as u32);
        // Re-draw on the surrogate gap; the bands adjoining it are
        // non-empty whenever the range is valid.
        loop {
            let candidate = lo + rng.below(u64::from(hi - lo)) as u32;
            if let Some(c) = char::from_u32(candidate) {
                return c;
            }
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range used as a strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = TestRng::new(5);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..500 {
            match (0..=3u8).gen_value(&mut rng) {
                0 => lo = true,
                3 => hi = true,
                1 | 2 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn signed_ranges_straddle_zero() {
        let mut rng = TestRng::new(6);
        for _ in 0..500 {
            let v = (-5..5i32).gen_value(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn tuples_generate_elementwise() {
        let mut rng = TestRng::new(8);
        let (a, b, c) = (0..4u8, 10..14u64, Just("x")).gen_value(&mut rng);
        assert!(a < 4);
        assert!((10..14).contains(&b));
        assert_eq!(c, "x");
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = (0.0..2.5f64).gen_value(&mut rng);
            assert!((0.0..2.5).contains(&v));
        }
    }
}
