//! Deterministic test execution: RNG, configuration, and error types.

use std::fmt;

/// A SplitMix64 generator: tiny, fast, and deterministic. Good enough
/// statistical quality for generating test inputs, and trivially seedable
/// for reproducibility.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        // Lemire's multiply-shift bounded sampling without the rejection
        // loop: bias is at most 2^-64 relative, irrelevant for tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// FNV-1a over a test's fully-qualified name: stable across runs and
/// platforms, distinct per test.
fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("[proptest] ignoring unparseable {var}={raw:?}");
            None
        }
    }
}

/// Test-suite configuration, mirroring `proptest::test_runner::Config`
/// for the fields this workspace sets.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Upper bound on shrink iterations. The shim performs no shrinking;
    /// the field exists for source compatibility.
    pub max_shrink_iters: u32,
    /// Verbosity of generated-value reporting (0 = quiet). Accepted for
    /// source compatibility; the shim reports only failures.
    pub verbose: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_iters: 1024,
            verbose: 0,
        }
    }
}

impl Config {
    /// The case count to actually run: `cases`, capped by the
    /// `PROPTEST_CASES` environment variable when set.
    pub fn effective_cases(&self) -> u32 {
        match env_u64("PROPTEST_CASES") {
            Some(cap) => self.cases.min(cap.min(u64::from(u32::MAX)) as u32),
            None => self.cases,
        }
    }
}

/// Drives value generation for one test.
#[derive(Debug)]
pub struct TestRunner {
    /// The active configuration.
    pub config: Config,
    seed: u64,
    rng: TestRng,
}

impl TestRunner {
    /// Runner with an explicit configuration and the default seed policy.
    pub fn new(config: Config) -> Self {
        Self::new_for_test(config, "proptest::test_runner::TestRunner")
    }

    /// Runner whose seed derives from `test_name` (or from the
    /// `PROPTEST_SEED` environment variable when set), making every test's
    /// input stream deterministic and independent of its neighbors.
    pub fn new_for_test(config: Config, test_name: &str) -> Self {
        let seed = env_u64("PROPTEST_SEED").unwrap_or_else(|| fnv1a(test_name));
        TestRunner {
            config,
            seed,
            rng: TestRng::new(seed),
        }
    }

    /// The seed in use, for failure reports.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Mutable access to the generator.
    pub fn rng_mut(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        TestRunner::new(Config::default())
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The input violated the property.
    Fail(String),
    /// The input was rejected (e.g. by a filter); not a failure.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Outcome of a single test case.
pub type TestCaseResult = Result<(), TestCaseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_uniform_enough_and_in_bounds() {
        let mut rng = TestRng::new(99);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[rng.below(5) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 700, "bucket {i} starved: {counts:?}");
        }
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a("a::b"), fnv1a("a::c"));
        assert_eq!(fnv1a("same"), fnv1a("same"));
    }

    #[test]
    fn error_display() {
        assert_eq!(TestCaseError::fail("boom").to_string(), "boom");
        assert!(TestCaseError::reject("nope").to_string().contains("nope"));
    }
}
