//! Quickstart: build a Calyx program with the builder API, lower it to
//! structural RTL, simulate it, and emit SystemVerilog.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use calyx::backend::{area, verilog, Backend, BackendOpts, VerilogBackend};
use calyx::core::ir::{Builder, Context, Control, Printer};
use calyx::core::passes;
use calyx::sim::rtl::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A component that sums the four elements of a memory into a register.
    let mut ctx = Context::new();
    let mut comp = ctx.new_component("main");
    {
        let mut b = Builder::new(&mut comp, &ctx);
        let mem = b.add_primitive("m", "std_mem_d1", &[32, 4, 2]);
        b.set_cell_attribute(mem, calyx::core::ir::attr::external(), 1);
        let idx = b.add_primitive("idx", "std_reg", &[3]);
        let acc = b.add_primitive("acc", "std_reg", &[32]);
        let lt = b.add_primitive("lt", "std_lt", &[3]);
        let add_idx = b.add_primitive("add_idx", "std_add", &[3]);
        let add_acc = b.add_primitive("add_acc", "std_add", &[32]);
        let slice = b.add_primitive("slice", "std_slice", &[3, 2]);

        // cond: idx < 4 (combinational condition group).
        let cond = b.add_group("cond");
        b.asgn(cond, (lt, "left"), (idx, "out"));
        b.asgn_const(cond, (lt, "right"), 4, 3);
        b.group_done_const(cond, 1);

        // accum: acc += m[idx]
        let accum = b.add_group("accum");
        b.asgn(accum, (slice, "in"), (idx, "out"));
        b.asgn(accum, (mem, "addr0"), (slice, "out"));
        b.asgn(accum, (add_acc, "left"), (acc, "out"));
        b.asgn(accum, (add_acc, "right"), (mem, "read_data"));
        b.asgn(accum, (acc, "in"), (add_acc, "out"));
        b.asgn_const(accum, (acc, "write_en"), 1, 1);
        b.group_done(accum, (acc, "done"));

        // incr: idx += 1
        let incr = b.add_group("incr");
        b.asgn(incr, (add_idx, "left"), (idx, "out"));
        b.asgn_const(incr, (add_idx, "right"), 1, 3);
        b.asgn(incr, (idx, "in"), (add_idx, "out"));
        b.asgn_const(incr, (idx, "write_en"), 1, 1);
        b.group_done(incr, (idx, "done"));

        b.set_control(Control::while_(
            calyx::core::ir::PortRef::cell(lt, "out"),
            Some(cond),
            Control::seq(vec![Control::enable(accum), Control::enable(incr)]),
        ));
    }
    ctx.add_component(comp);

    println!("=== Calyx source ===\n{}", Printer::print_context(&ctx));

    // Lower: control becomes latency-insensitive FSMs, groups are erased.
    passes::lower_pipeline().run(&mut ctx)?;

    // Simulate the lowered RTL.
    let mut sim = Simulator::new(&ctx, "main")?;
    sim.set_memory(&["m"], &[10, 20, 30, 40])?;
    let stats = sim.run(10_000)?;
    println!(
        "sum(m) = {} in {} cycles",
        sim.register_value(&["acc"])?,
        stats.cycles
    );
    assert_eq!(sim.register_value(&["acc"])?, 100);

    // Estimate FPGA resources and emit SystemVerilog through the Backend
    // trait — the same streaming path `futil -b verilog -o file.sv` uses.
    let a = area::estimate(&ctx, "main")?;
    println!("estimated area: {a:?}");
    let backend = VerilogBackend::from_opts(&BackendOpts::default());
    backend.validate(&ctx)?;
    let mut sv = Vec::new();
    backend.emit(&ctx, &mut sv)?;
    let sv = String::from_utf8(sv)?;
    println!(
        "emitted {} lines of SystemVerilog (showing the module header):",
        verilog::line_count(&sv)
    );
    for line in sv.lines().filter(|l| l.starts_with("module")).take(5) {
        println!("  {line}");
    }
    Ok(())
}
