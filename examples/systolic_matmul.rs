//! Generate a systolic matrix-multiply array (paper §6.1), compile it both
//! latency-insensitively and latency-sensitively, and compare cycle counts
//! — the §7.1 experiment in miniature.
//!
//! ```sh
//! cargo run --example systolic_matmul
//! ```
#![allow(clippy::needless_range_loop)]

use calyx::backend::area;
use calyx::core::passes;
use calyx::sim::rtl::Simulator;
use calyx::systolic::{generate, reference_matmul, SystolicConfig};

fn run(n: usize, static_timing: bool) -> Result<(u64, u64), Box<dyn std::error::Error>> {
    let cfg = SystolicConfig::square(n);
    let mut ctx = generate(&cfg);
    if static_timing {
        passes::lower_pipeline_static().run(&mut ctx)?;
    } else {
        passes::lower_pipeline().run(&mut ctx)?;
    }

    let a: Vec<Vec<u64>> = (0..n)
        .map(|r| (0..n).map(|k| ((r + k) % 5 + 1) as u64).collect())
        .collect();
    let b: Vec<Vec<u64>> = (0..n)
        .map(|k| (0..n).map(|c| ((2 * k + c) % 7 + 1) as u64).collect())
        .collect();

    let mut sim = Simulator::new(&ctx, "main")?;
    for (r, row) in a.iter().enumerate() {
        sim.set_memory(&[&format!("l{r}")], row)?;
    }
    for c in 0..n {
        let col: Vec<u64> = (0..n).map(|k| b[k][c]).collect();
        sim.set_memory(&[&format!("t{c}")], &col)?;
    }
    let stats = sim.run(1_000_000)?;

    // Verify against the reference matrix multiply.
    let expected: Vec<u64> = reference_matmul(&a, &b, n, 32)
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(sim.memory(&["out"])?, expected, "systolic result is exact");

    let luts = area::estimate(&ctx, "main")?.luts;
    Ok((stats.cycles, luts))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("| size | dynamic cycles | static cycles | speedup | LUTs (static) |");
    println!("|------|---------------:|--------------:|--------:|--------------:|");
    for n in [2usize, 4, 6] {
        let (dyn_cycles, _) = run(n, false)?;
        let (static_cycles, luts) = run(n, true)?;
        println!(
            "| {n}x{n} | {dyn_cycles} | {static_cycles} | {:.2}x | {luts} |",
            dyn_cycles as f64 / static_cycles as f64
        );
    }
    println!("\nAll results verified against the reference matrix multiply.");
    Ok(())
}
