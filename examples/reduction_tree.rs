//! The paper's running example (§2): a parallel reduction tree computing
//! `(m1 + m2) + (m3 + m4)`, with the resource-sharing optimization from
//! §2.2 applied automatically by the compiler.
//!
//! The schedule runs the first layer's adders in parallel, then the second
//! layer; since `add0`/`add1` never execute at the same time as `add2`,
//! resource sharing maps the second layer onto a first-layer adder —
//! exactly the Figure 1c transformation.
//!
//! ```sh
//! cargo run --example reduction_tree
//! ```

use calyx::core::ir::{parse_context, Id, Printer};
use calyx::core::passes::{self, Pass};
use calyx::sim::rtl::Simulator;

const TREE: &str = r#"
component main() -> () {
  cells {
    @external m1 = std_mem_d1(32, 1, 1);
    @external m2 = std_mem_d1(32, 1, 1);
    @external m3 = std_mem_d1(32, 1, 1);
    @external m4 = std_mem_d1(32, 1, 1);
    a0 = std_add(32);
    a1 = std_add(32);
    a2 = std_add(32);
    r0 = std_reg(32);
    r1 = std_reg(32);
    r2 = std_reg(32);
  }
  wires {
    group add0 {
      m1.addr0 = 1'd0;
      m2.addr0 = 1'd0;
      a0.left = m1.read_data;
      a0.right = m2.read_data;
      r0.in = a0.out;
      r0.write_en = 1'd1;
      add0[done] = r0.done;
    }
    group add1 {
      m3.addr0 = 1'd0;
      m4.addr0 = 1'd0;
      a1.left = m3.read_data;
      a1.right = m4.read_data;
      r1.in = a1.out;
      r1.write_en = 1'd1;
      add1[done] = r1.done;
    }
    group add2 {
      a2.left = r0.out;
      a2.right = r1.out;
      r2.in = a2.out;
      r2.write_en = 1'd1;
      add2[done] = r2.done;
    }
  }
  control {
    seq {
      par { add0; add1; }
      add2;
    }
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ctx = parse_context(TREE)?;

    // §2.2: resource sharing discovers that add2 never runs in parallel
    // with the first layer and rewires it onto a shared adder.
    passes::ResourceSharing.run(&mut ctx)?;
    passes::DeadCellRemoval::default().run(&mut ctx)?;
    let main = ctx.component("main").expect("main exists");
    let adders = main
        .cells
        .iter()
        .filter(|c| c.is_primitive("std_add"))
        .count();
    println!("adders after resource sharing: {adders} (was 3)");
    assert_eq!(adders, 2, "the second layer shares a first-layer adder");
    println!(
        "rewritten add2:\n{}",
        Printer::print_group(main.groups.get(Id::new("add2")).expect("add2 exists"))
    );

    // Lower and simulate: the optimized tree still sums correctly.
    passes::lower_pipeline().run(&mut ctx)?;
    let mut sim = Simulator::new(&ctx, "main")?;
    for (mem, v) in [("m1", 3u64), ("m2", 7), ("m3", 11), ("m4", 21)] {
        sim.set_memory(&[mem], &[v])?;
    }
    let stats = sim.run(1000)?;
    let sum = sim.register_value(&["r2"])?;
    println!("(3 + 7) + (11 + 21) = {sum} in {} cycles", stats.cycles);
    assert_eq!(sum, 42);
    Ok(())
}
