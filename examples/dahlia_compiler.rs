//! Compile a Dahlia program to Calyx (paper §6.2), inspect the generated
//! IL, lower it, simulate it, and emit SystemVerilog — the full
//! DSL-to-RTL journey on a dot-product-with-sqrt kernel that mixes
//! statically-timed multiplies with the data-dependent square root.
//!
//! ```sh
//! cargo run --example dahlia_compiler
//! ```

use calyx::backend::verilog;
use calyx::core::ir::Printer;
use calyx::core::passes;
use calyx::sim::rtl::Simulator;

const SRC: &str = "
    decl a: ubit<32>[8];
    decl b: ubit<32>[8];
    decl out: ubit<32>[1];
    let acc: ubit<32> = 0;
    ---
    for (let i: ubit<4> = 0..8) {
      let t: ubit<32> = a[i] * b[i];
      ---
      acc := acc + t;
    }
    ---
    out[0] := sqrt(acc);
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Front end: parse, check, lower, emit Calyx.
    let mut ctx = calyx::dahlia::compile(SRC)?;
    let main = ctx.component("main").expect("main exists");
    println!(
        "generated {} cells and {} groups; control:",
        main.cells.len(),
        main.groups.len()
    );
    print!("{}", Printer::print_control(&main.control));

    // The multiply group carries a static latency; the sqrt group does not
    // (data-dependent), demonstrating mixed latency-(in)sensitive code.
    let statics: Vec<String> = main
        .groups
        .iter()
        .map(|g| match g.static_latency() {
            Some(l) => format!("{}<static={l}>", g.name),
            None => format!("{}<dynamic>", g.name),
        })
        .collect();
    println!("\ngroup latencies: {}", statics.join(", "));

    // Lower with the full optimizing pipeline and simulate.
    passes::optimized_pipeline(true, true, true).run(&mut ctx)?;
    let mut sim = Simulator::new(&ctx, "main")?;
    let a: Vec<u64> = (1..=8).collect();
    let b: Vec<u64> = (0..8).map(|i| (i % 3) + 1).collect();
    sim.set_memory(&["a"], &a)?;
    sim.set_memory(&["b"], &b)?;
    let stats = sim.run(100_000)?;

    let dot: u64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
    let expected = (dot as f64).sqrt() as u64;
    let got = sim.memory(&["out"])?[0];
    println!(
        "\nsqrt(a . b) = sqrt({dot}) = {got} in {} cycles",
        stats.cycles
    );
    assert_eq!(got, expected);

    // Back end: SystemVerilog.
    let sv = verilog::emit(&ctx)?;
    println!(
        "emitted {} lines of SystemVerilog",
        verilog::line_count(&sv)
    );
    Ok(())
}
