//! Umbrella crate for the Calyx reproduction.
//!
//! Re-exports the individual crates under stable module names so examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! - [`core`]: the Calyx intermediate language and the pass-based compiler
//!   (the paper's primary contribution).
//! - [`sim`]: a cycle-accurate RTL simulator (Verilator substitute) and a
//!   reference control-tree interpreter.
//! - [`backend`]: the `Backend` trait and registry, with the standard
//!   backends — Calyx printing, SystemVerilog emission, an FPGA area
//!   model (Vivado substitute), and cycle/state execution reports.
//! - [`frontend`]: the `Frontend` trait and registry — every generator
//!   below (plus the native parser) behind one ingestion API.
//! - [`systolic`]: the systolic array generator frontend (paper §6.1).
//! - [`dahlia`]: the Dahlia imperative language frontend (paper §6.2).
//! - [`hls`]: an HLS scheduling model standing in for Vivado HLS.
//! - [`polybench`]: the PolyBench linear-algebra kernels used in §7.2.
//! - [`service`]: the parallel compilation service behind `futil --batch`
//!   and `futil serve` — job queue, shared parse cache, worker pool, and
//!   the JSON-lines protocol.
//! - [`plan`]: plan-based build orchestration behind `futil build` — a
//!   typed state graph derived from the four registries, a route
//!   planner, and a content-addressed artifact cache.
//!
//! # Quickstart
//!
//! ```
//! use calyx::core::ir::{Builder, Context};
//! use calyx::core::passes;
//! use calyx::sim::rtl::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a component that increments a register.
//! let mut ctx = Context::new();
//! let mut comp = ctx.new_component("main");
//! {
//!     let mut b = Builder::new(&mut comp, &ctx);
//!     let r = b.add_primitive("r", "std_reg", &[8]);
//!     let add = b.add_primitive("add", "std_add", &[8]);
//!     let g = b.add_group("incr");
//!     b.asgn(g, (add, "left"), (r, "out"));
//!     b.asgn_const(g, (add, "right"), 1, 8);
//!     b.asgn(g, (r, "in"), (add, "out"));
//!     b.asgn_const(g, (r, "write_en"), 1, 1);
//!     b.group_done(g, (r, "done"));
//!     b.set_control_enable(g);
//! }
//! ctx.add_component(comp);
//!
//! // Lower control to structural FSMs and simulate the result.
//! passes::lower_pipeline().run(&mut ctx)?;
//! let mut sim = Simulator::new(&ctx, "main")?;
//! let stats = sim.run(1000)?;
//! assert_eq!(sim.register_value(&["r"])?, 1);
//! assert!(stats.cycles > 0);
//! # Ok(())
//! # }
//! ```

pub use calyx_backend as backend;
pub use calyx_core as core;
pub use calyx_dahlia as dahlia;
pub use calyx_frontend as frontend;
pub use calyx_hls as hls;
pub use calyx_plan as plan;
pub use calyx_polybench as polybench;
pub use calyx_service as service;
pub use calyx_sim as sim;
pub use calyx_systolic as systolic;
