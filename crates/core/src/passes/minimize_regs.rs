//! Register sharing via live-range analysis (paper §5.2).
//!
//! Group-local reasoning cannot share registers — their values escape the
//! writing group — so this pass runs a live-range analysis over the
//! parallel control-flow graph: a register whose last read has passed can
//! be reused by later groups. The steps:
//!
//! 1. query the [`BoundaryRegs`] and [`Interference`] analyses through the
//!    pass context — the interference graph transitively pulls the pCFG,
//!    read/write sets, and liveness from the same cache, so prerequisites
//!    computed for other passes are reused;
//! 2. greedily color the graph with registers of identical width as colors;
//! 3. rewrite *all* groups through the resulting renaming (unlike resource
//!    sharing, the substitution is global, since register names appear in
//!    many groups).

use super::pass_ctx::PassCtx;
use super::visitor::{Action, Visitor};
use crate::analysis::liveness::{BoundaryRegs, Interference};
use crate::errors::CalyxResult;
use crate::ir::{Component, Id, Rewriter};
use std::collections::{BTreeMap, HashMap};

/// Merge registers with non-overlapping live ranges.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinimizeRegs;

impl Visitor for MinimizeRegs {
    fn name(&self) -> &'static str {
        "minimize-regs"
    }

    fn description(&self) -> &'static str {
        "share registers whose live ranges do not overlap"
    }

    fn start_component(&mut self, comp: &mut Component, ctx: &mut PassCtx) -> CalyxResult<Action> {
        // Registers observable outside the schedule stay live forever:
        // anything touched by continuous assignments or referenced directly
        // as an `if`/`while` condition port ([`BoundaryRegs`]).
        let boundary = ctx.get::<BoundaryRegs>(comp);
        let boundary = boundary.registers();
        let interference = ctx.get::<Interference>(comp);

        // Registers in deterministic order, grouped by width.
        let registers: Vec<(Id, u64)> = comp
            .cells
            .iter()
            .filter(|c| c.is_register())
            .map(|c| {
                let width = c.primitive_params().expect("std_reg is a primitive")[0];
                (c.name, width)
            })
            .collect();

        // Greedy coloring: colors are representative registers.
        let mut color_of: HashMap<Id, Id> = HashMap::new();
        let mut members: BTreeMap<Id, Vec<Id>> = BTreeMap::new(); // color -> regs
        let mut colors_by_width: BTreeMap<u64, Vec<Id>> = BTreeMap::new();
        for &(reg, width) in &registers {
            if boundary.contains(&reg) {
                // Pinned: gets (and keeps) its own color.
                color_of.insert(reg, reg);
                members.entry(reg).or_default().push(reg);
                colors_by_width.entry(width).or_default().push(reg);
                continue;
            }
            let mut chosen = None;
            for &color in colors_by_width.entry(width).or_default().iter() {
                if boundary.contains(&color) {
                    continue; // never merge into a pinned register
                }
                let clash = members[&color]
                    .iter()
                    .any(|&other| interference.conflict(reg, other));
                if !clash {
                    chosen = Some(color);
                    break;
                }
            }
            let color = chosen.unwrap_or(reg);
            if color == reg {
                colors_by_width.entry(width).or_default().push(reg);
            }
            color_of.insert(reg, color);
            members.entry(color).or_default().push(reg);
        }

        // Build and apply the global renaming.
        let cell_map: HashMap<Id, Id> = color_of
            .iter()
            .filter(|(reg, color)| reg != color)
            .map(|(reg, color)| (*reg, *color))
            .collect();
        if cell_map.is_empty() {
            return Ok(Action::SkipChildren);
        }
        ctx.set_dirty();
        let rewriter = Rewriter::from_cells(cell_map);
        for group in comp.groups.iter_mut() {
            rewriter.group(group);
        }
        for asgn in &mut comp.continuous {
            rewriter.assignment(asgn);
        }
        let mut control = std::mem::take(&mut comp.control);
        rewriter.control(&mut control);
        comp.control = control;
        // The rewrite already visited the control tree through the
        // analyses; no per-statement work remains.
        Ok(Action::SkipChildren)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{parse_context, PortRef};
    use crate::passes::Pass;

    /// Two temporaries with back-to-back disjoint lifetimes collapse into
    /// one register.
    #[test]
    fn merges_disjoint_lifetimes() {
        let src = r#"
            component main() -> () {
              cells {
                t0 = std_reg(8); t1 = std_reg(8);
                @external m = std_mem_d1(8, 2, 1);
              }
              wires {
                group w0 { t0.in = 8'd5; t0.write_en = 1'd1; w0[done] = t0.done; }
                group s0 {
                  m.addr0 = 1'd0; m.write_data = t0.out; m.write_en = 1'd1;
                  s0[done] = m.done;
                }
                group w1 { t1.in = 8'd7; t1.write_en = 1'd1; w1[done] = t1.done; }
                group s1 {
                  m.addr0 = 1'd1; m.write_data = t1.out; m.write_en = 1'd1;
                  s1[done] = m.done;
                }
              }
              control { seq { w0; s0; w1; s1; } }
            }
        "#;
        let mut ctx = parse_context(src).unwrap();
        MinimizeRegs.run(&mut ctx).unwrap();
        super::super::DeadCellRemoval::default()
            .run(&mut ctx)
            .unwrap();
        let main = ctx.component("main").unwrap();
        let regs = main.cells.iter().filter(|c| c.is_register()).count();
        assert_eq!(regs, 1, "t0 and t1 should share one register");
        // The rewrite is global: w1/s1 now reference t0.
        let w1 = main.groups.get(Id::new("w1")).unwrap();
        assert!(w1
            .assignments
            .iter()
            .any(|a| a.dst == PortRef::cell("t0", "in")));
    }

    #[test]
    fn keeps_overlapping_registers_apart() {
        let src = r#"
            component main() -> () {
              cells {
                a = std_reg(8); b = std_reg(8); add = std_add(8);
                @external m = std_mem_d1(8, 2, 1);
              }
              wires {
                group wa { a.in = 8'd1; a.write_en = 1'd1; wa[done] = a.done; }
                group wb { b.in = 8'd2; b.write_en = 1'd1; wb[done] = b.done; }
                group sum {
                  add.left = a.out; add.right = b.out;
                  m.addr0 = 1'd0; m.write_data = add.out; m.write_en = 1'd1;
                  sum[done] = m.done;
                }
              }
              control { seq { wa; wb; sum; } }
            }
        "#;
        let mut ctx = parse_context(src).unwrap();
        MinimizeRegs.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        let regs = main.cells.iter().filter(|c| c.is_register()).count();
        assert_eq!(regs, 2, "overlapping registers must not merge");
    }

    #[test]
    fn parallel_registers_do_not_merge() {
        let src = r#"
            component main() -> () {
              cells { a = std_reg(8); b = std_reg(8); }
              wires {
                group wa { a.in = 8'd1; a.write_en = 1'd1; wa[done] = a.done; }
                group wb { b.in = 8'd2; b.write_en = 1'd1; wb[done] = b.done; }
              }
              control { par { wa; wb; } }
            }
        "#;
        let mut ctx = parse_context(src).unwrap();
        MinimizeRegs.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        assert_eq!(main.cells.iter().filter(|c| c.is_register()).count(), 2);
    }

    #[test]
    fn widths_partition_colors() {
        let src = r#"
            component main() -> () {
              cells { t0 = std_reg(8); t1 = std_reg(16); }
              wires {
                group w0 { t0.in = 8'd5; t0.write_en = 1'd1; w0[done] = t0.done; }
                group w1 { t1.in = 16'd7; t1.write_en = 1'd1; w1[done] = t1.done; }
              }
              control { seq { w0; w1; } }
            }
        "#;
        let mut ctx = parse_context(src).unwrap();
        MinimizeRegs.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        assert_eq!(main.cells.iter().filter(|c| c.is_register()).count(), 2);
    }

    #[test]
    fn loop_carried_register_not_clobbered() {
        // `i` is live across iterations; the temporary `t` must not merge
        // into it even though their group-local uses look disjoint.
        let src = r#"
            component main() -> () {
              cells {
                i = std_reg(8); t = std_reg(8);
                lt = std_lt(8); add = std_add(8);
              }
              wires {
                group cond { lt.left = i.out; lt.right = 8'd3; cond[done] = 1'd1; }
                group tmp { t.in = 8'd9; t.write_en = 1'd1; tmp[done] = t.done; }
                group incr {
                  add.left = i.out; add.right = 8'd1;
                  i.in = add.out; i.write_en = 1'd1;
                  incr[done] = i.done;
                }
              }
              control { while lt.out with cond { seq { tmp; incr; } } }
            }
        "#;
        let mut ctx = parse_context(src).unwrap();
        MinimizeRegs.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        assert_eq!(
            main.cells.iter().filter(|c| c.is_register()).count(),
            2,
            "loop-carried register must keep its own storage"
        );
    }
}
