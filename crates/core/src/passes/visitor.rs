//! The visitor framework: structured, zero-clone traversal of control
//! programs with cached analysis queries.
//!
//! Structural passes implement [`Visitor`] instead of hand-rolling a
//! recursion over [`Control`]. The framework walks each component's control
//! tree once, calling a *pre* hook before descending into a statement's
//! children (`start_seq`, `start_par`, `start_if`, `start_while`) and a
//! *post* hook after them (`finish_seq`, …). Leaf statements get a single
//! hook (`enable`, `empty`). Hooks receive the statement's fields, the
//! enclosing [`Component`] (mutably — the control tree is detached from the
//! component during traversal, so cells and groups can be edited freely),
//! and a [`PassCtx`] bundling the read-only context view (library and
//! sibling-signature lookups, via deref) with the pipeline's
//! [`AnalysisCache`].
//!
//! Every visitor automatically implements [`Pass`] through a blanket impl,
//! so visitors register with [`PassManager`](super::PassManager) and the
//! [pass registry](super::PassRegistry) like any other pass.
//!
//! # The `Action` contract
//!
//! Each hook steers the traversal by returning an [`Action`]:
//!
//! - [`Action::Continue`]: proceed normally (descend into children after a
//!   pre hook; keep walking siblings after a post hook).
//! - [`Action::SkipChildren`]: from a pre hook, do not visit this
//!   statement's children **and do not call its post hook**; from
//!   [`Visitor::start_component`], skip the control traversal entirely
//!   (but still call [`Visitor::finish_component`]). From a *post* hook
//!   there are no children left to skip, so it is equivalent to
//!   `Continue`.
//! - [`Action::Change`]`(c)`: replace the current statement with `c`. From a
//!   pre hook the replacement is **not** re-visited (children and post hook
//!   are skipped); from a post hook the replacement stands as-is. This is
//!   how bottom-up rewrites like
//!   [`CompileControl`](super::CompileControl) fold a subtree into a single
//!   enable.
//! - [`Action::Stop`]: halt the control traversal of this component *and*
//!   skip all remaining components. `finish_component` still runs for the
//!   component that stopped.
//!
//! # Mutation signals
//!
//! The analysis cache memoizes per component and must be told when a
//! component changed (the full contract lives in the
//! [cache module docs](crate::analysis::cache)):
//!
//! - [`Action::Change`] marks the component dirty automatically.
//! - Every other mutation through `&mut Component` must be reported with
//!   [`PassCtx::set_dirty`] from the hook performing it.
//! - The signal drops the component's cached analyses *immediately*, so
//!   queries later in the same visit see fresh facts; clean visits keep
//!   the cache warm for later passes.
//!
//! The contract in executable form — a visitor that counts enables, prunes
//! a `par` subtree with `SkipChildren`, and rewrites one statement with
//! `Change`:
//!
//! ```
//! use calyx_core::errors::CalyxResult;
//! use calyx_core::ir::{Attributes, Component, Context, Control, Id};
//! use calyx_core::passes::{Action, Pass, PassCtx, Visitor};
//!
//! #[derive(Default)]
//! struct Example {
//!     enables_seen: usize,
//! }
//!
//! impl Visitor for Example {
//!     fn name(&self) -> &'static str {
//!         "example"
//!     }
//!     fn description(&self) -> &'static str {
//!         "doc example for the Action contract"
//!     }
//!     // Leaf hook: called once per (visited) enable.
//!     fn enable(
//!         &mut self,
//!         group: &mut Id,
//!         _attributes: &mut Attributes,
//!         _comp: &mut Component,
//!         _ctx: &mut PassCtx,
//!     ) -> CalyxResult<Action> {
//!         self.enables_seen += 1;
//!         if group.as_str() == "swap_me" {
//!             // Replace this enable; the replacement is not re-visited
//!             // (and the component is marked dirty automatically).
//!             return Ok(Action::Change(Control::enable("swapped")));
//!         }
//!         Ok(Action::Continue)
//!     }
//!     // Pre hook: enables under `par` are never visited.
//!     fn start_par(
//!         &mut self,
//!         _stmts: &mut Vec<Control>,
//!         _attributes: &mut Attributes,
//!         _comp: &mut Component,
//!         _ctx: &mut PassCtx,
//!     ) -> CalyxResult<Action> {
//!         Ok(Action::SkipChildren)
//!     }
//! }
//!
//! let mut ctx = Context::new();
//! let mut comp = ctx.new_component("main");
//! comp.control = Control::seq(vec![
//!     Control::enable("swap_me"),
//!     Control::par(vec![Control::enable("hidden")]),
//!     Control::enable("visible"),
//! ]);
//! ctx.add_component(comp);
//!
//! let mut pass = Example::default();
//! pass.run(&mut ctx).unwrap(); // Visitor is a Pass via the blanket impl
//!
//! // `hidden` was skipped; `swap_me` and `visible` were visited.
//! assert_eq!(pass.enables_seen, 2);
//! let groups = ctx.component("main").unwrap().control.used_groups();
//! assert!(groups.contains(&Id::new("swapped")));
//! assert!(!groups.contains(&Id::new("swap_me")));
//! ```

use super::pass_ctx::PassCtx;
use super::traversal::{take_component, Pass};
use crate::analysis::AnalysisCache;
use crate::errors::CalyxResult;
use crate::ir::{Attributes, Component, Context, Control, Id, PortRef};

/// What a [`Visitor`] hook tells the traversal to do next.
///
/// See the [module docs](self) for the full contract and a doctest.
#[derive(Debug)]
pub enum Action {
    /// Proceed normally.
    Continue,
    /// Skip this statement's children (and its post hook).
    SkipChildren,
    /// Replace the current statement; the replacement is not re-visited.
    /// Also marks the component dirty for the analysis cache.
    Change(Control),
    /// Halt the traversal: remaining statements and components are skipped.
    Stop,
}

/// The order in which a visitor's components are traversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Definition order (the order components appear in the program).
    Definition,
    /// Dependency order: instantiated components before their
    /// instantiators. Required by cross-component analyses such as
    /// latency inference.
    Topological,
}

/// A structural pass over control programs.
///
/// All hooks default to no-ops returning [`Action::Continue`], so a visitor
/// implements only the hooks it needs. `name` and `description` feed the
/// blanket [`Pass`] impl and the pass registry.
///
/// While a component is being visited, the [`Context`]'s entry for that
/// component is an inert placeholder (the component was taken out by value
/// to avoid cloning); hooks must use the `&mut Component` argument for the
/// component under edit and the [`PassCtx`] only for the primitive library,
/// *other* components, and analysis queries.
#[allow(unused_variables)]
pub trait Visitor {
    /// Unique, kebab-case pass name (used in reports, errors, and `-p`
    /// pipeline specs).
    fn name(&self) -> &'static str;

    /// One-line description for documentation output.
    fn description(&self) -> &'static str;

    /// The component iteration order this visitor requires.
    fn component_order(&self) -> Order {
        Order::Definition
    }

    /// Called once before any component is visited, with the full mutable
    /// context and the pipeline's analysis cache. A pass mutating the
    /// program here must invalidate the affected components itself
    /// ([`AnalysisCache::invalidate`]).
    ///
    /// # Errors
    ///
    /// An error aborts the pass before any component is visited.
    fn start_context(&mut self, ctx: &mut Context, cache: &mut AnalysisCache) -> CalyxResult<()> {
        Ok(())
    }

    /// Called once after every component has been visited. The same
    /// invalidation responsibility as [`Visitor::start_context`] applies.
    ///
    /// # Errors
    ///
    /// An error is reported as the pass's failure.
    fn finish_context(&mut self, ctx: &mut Context, cache: &mut AnalysisCache) -> CalyxResult<()> {
        Ok(())
    }

    /// Called before a component's control tree is traversed.
    /// [`Action::Change`] replaces the component's control program (which is
    /// then not traversed).
    ///
    /// # Errors
    ///
    /// An error aborts the pass.
    fn start_component(&mut self, comp: &mut Component, ctx: &mut PassCtx) -> CalyxResult<Action> {
        Ok(Action::Continue)
    }

    /// Called after a component's control tree has been traversed (also when
    /// the traversal was skipped or stopped). Mutations made here still
    /// count: call [`PassCtx::set_dirty`] to report them.
    ///
    /// # Errors
    ///
    /// An error aborts the pass.
    fn finish_component(&mut self, comp: &mut Component, ctx: &mut PassCtx) -> CalyxResult<()> {
        Ok(())
    }

    /// Leaf hook for [`Control::Empty`].
    ///
    /// # Errors
    ///
    /// An error aborts the pass.
    fn empty(&mut self, comp: &mut Component, ctx: &mut PassCtx) -> CalyxResult<Action> {
        Ok(Action::Continue)
    }

    /// Leaf hook for [`Control::Enable`].
    ///
    /// # Errors
    ///
    /// An error aborts the pass.
    fn enable(
        &mut self,
        group: &mut Id,
        attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        Ok(Action::Continue)
    }

    /// Pre hook for [`Control::Seq`].
    ///
    /// # Errors
    ///
    /// An error aborts the pass.
    fn start_seq(
        &mut self,
        stmts: &mut Vec<Control>,
        attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        Ok(Action::Continue)
    }

    /// Post hook for [`Control::Seq`]: children have been visited.
    ///
    /// # Errors
    ///
    /// An error aborts the pass.
    fn finish_seq(
        &mut self,
        stmts: &mut Vec<Control>,
        attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        Ok(Action::Continue)
    }

    /// Pre hook for [`Control::Par`].
    ///
    /// # Errors
    ///
    /// An error aborts the pass.
    fn start_par(
        &mut self,
        stmts: &mut Vec<Control>,
        attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        Ok(Action::Continue)
    }

    /// Post hook for [`Control::Par`]: children have been visited.
    ///
    /// # Errors
    ///
    /// An error aborts the pass.
    fn finish_par(
        &mut self,
        stmts: &mut Vec<Control>,
        attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        Ok(Action::Continue)
    }

    /// Pre hook for [`Control::If`].
    ///
    /// # Errors
    ///
    /// An error aborts the pass.
    #[allow(clippy::too_many_arguments)]
    fn start_if(
        &mut self,
        port: &mut PortRef,
        cond: &mut Option<Id>,
        tbranch: &mut Control,
        fbranch: &mut Control,
        attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        Ok(Action::Continue)
    }

    /// Post hook for [`Control::If`]: both branches have been visited.
    ///
    /// # Errors
    ///
    /// An error aborts the pass.
    #[allow(clippy::too_many_arguments)]
    fn finish_if(
        &mut self,
        port: &mut PortRef,
        cond: &mut Option<Id>,
        tbranch: &mut Control,
        fbranch: &mut Control,
        attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        Ok(Action::Continue)
    }

    /// Pre hook for [`Control::While`].
    ///
    /// # Errors
    ///
    /// An error aborts the pass.
    #[allow(clippy::too_many_arguments)]
    fn start_while(
        &mut self,
        port: &mut PortRef,
        cond: &mut Option<Id>,
        body: &mut Control,
        attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        Ok(Action::Continue)
    }

    /// Post hook for [`Control::While`]: the body has been visited.
    ///
    /// # Errors
    ///
    /// An error aborts the pass.
    #[allow(clippy::too_many_arguments)]
    fn finish_while(
        &mut self,
        port: &mut PortRef,
        cond: &mut Option<Id>,
        body: &mut Control,
        attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        Ok(Action::Continue)
    }
}

/// Whether the traversal keeps going or was halted by [`Action::Stop`].
enum Flow {
    Continue,
    Stop,
}

/// Visit one statement: pre hook, children, post hook.
fn visit_stmt<V: Visitor + ?Sized>(
    v: &mut V,
    stmt: &mut Control,
    comp: &mut Component,
    ctx: &mut PassCtx,
) -> CalyxResult<Flow> {
    let pre = match stmt {
        Control::Empty => v.empty(comp, ctx)?,
        Control::Enable { group, attributes } => v.enable(group, attributes, comp, ctx)?,
        Control::Seq { stmts, attributes } => v.start_seq(stmts, attributes, comp, ctx)?,
        Control::Par { stmts, attributes } => v.start_par(stmts, attributes, comp, ctx)?,
        Control::If {
            port,
            cond,
            tbranch,
            fbranch,
            attributes,
        } => v.start_if(port, cond, tbranch, fbranch, attributes, comp, ctx)?,
        Control::While {
            port,
            cond,
            body,
            attributes,
        } => v.start_while(port, cond, body, attributes, comp, ctx)?,
    };
    match pre {
        Action::Stop => return Ok(Flow::Stop),
        Action::Change(new) => {
            ctx.set_dirty();
            *stmt = new;
            return Ok(Flow::Continue);
        }
        Action::SkipChildren => return Ok(Flow::Continue),
        Action::Continue => {}
    }

    match stmt {
        // Leaves have no children and no post hook.
        Control::Empty | Control::Enable { .. } => return Ok(Flow::Continue),
        Control::Seq { stmts, .. } | Control::Par { stmts, .. } => {
            for s in stmts.iter_mut() {
                if let Flow::Stop = visit_stmt(v, s, comp, ctx)? {
                    return Ok(Flow::Stop);
                }
            }
        }
        Control::If {
            tbranch, fbranch, ..
        } => {
            if let Flow::Stop = visit_stmt(v, tbranch, comp, ctx)? {
                return Ok(Flow::Stop);
            }
            if let Flow::Stop = visit_stmt(v, fbranch, comp, ctx)? {
                return Ok(Flow::Stop);
            }
        }
        Control::While { body, .. } => {
            if let Flow::Stop = visit_stmt(v, body, comp, ctx)? {
                return Ok(Flow::Stop);
            }
        }
    }

    let post = match stmt {
        Control::Seq { stmts, attributes } => v.finish_seq(stmts, attributes, comp, ctx)?,
        Control::Par { stmts, attributes } => v.finish_par(stmts, attributes, comp, ctx)?,
        Control::If {
            port,
            cond,
            tbranch,
            fbranch,
            attributes,
        } => v.finish_if(port, cond, tbranch, fbranch, attributes, comp, ctx)?,
        Control::While {
            port,
            cond,
            body,
            attributes,
        } => v.finish_while(port, cond, body, attributes, comp, ctx)?,
        // Leaves returned above; a child rewrite cannot change this node's
        // variant.
        Control::Empty | Control::Enable { .. } => Action::Continue,
    };
    match post {
        Action::Stop => Ok(Flow::Stop),
        Action::Change(new) => {
            ctx.set_dirty();
            *stmt = new;
            Ok(Flow::Continue)
        }
        Action::SkipChildren | Action::Continue => Ok(Flow::Continue),
    }
}

/// Visit one component: `start_component`, the control tree, then
/// `finish_component`. The control tree is detached from the component for
/// the duration so hooks can mutate cells/groups through `comp`.
fn visit_component<V: Visitor + ?Sized>(
    v: &mut V,
    comp: &mut Component,
    ctx: &mut PassCtx,
) -> CalyxResult<Flow> {
    let flow = match v.start_component(comp, ctx)? {
        Action::Continue => {
            let mut control = std::mem::take(&mut comp.control);
            let flow = visit_stmt(v, &mut control, comp, ctx);
            comp.control = control;
            flow?
        }
        Action::SkipChildren => Flow::Continue,
        Action::Change(control) => {
            ctx.set_dirty();
            comp.control = control;
            Flow::Continue
        }
        Action::Stop => Flow::Stop,
    };
    v.finish_component(comp, ctx)?;
    Ok(flow)
}

/// Every visitor is a pass: the adapter iterates components in the
/// visitor's declared [`Order`], temporarily taking each component out of
/// the context *by value* (no deep clone — an inert placeholder holds its
/// slot) so hooks hold `&mut Component` while reading the context through
/// [`PassCtx`]. Mutation signals (an [`Action::Change`] or
/// [`PassCtx::set_dirty`]) invalidate the component's cached analyses
/// immediately.
impl<V: Visitor> Pass for V {
    fn name(&self) -> &'static str {
        Visitor::name(self)
    }

    fn description(&self) -> &'static str {
        Visitor::description(self)
    }

    fn run_with(&mut self, ctx: &mut Context, cache: &mut AnalysisCache) -> CalyxResult<()> {
        self.start_context(ctx, cache)?;
        let names: Vec<Id> = match self.component_order() {
            Order::Definition => ctx.components.names().collect(),
            Order::Topological => ctx.topological_order()?,
        };
        for name in names {
            let Some(mut comp) = take_component(ctx, name) else {
                continue;
            };
            let mut pctx = PassCtx::new(ctx, cache, name);
            let result = visit_component(self, &mut comp, &mut pctx);
            ctx.components.insert(comp);
            if let Flow::Stop = result? {
                break;
            }
        }
        self.finish_context(ctx, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{AnalysisCache, Pcfg};

    /// Records the hook sequence as strings.
    #[derive(Default)]
    struct Tracer {
        log: Vec<String>,
        stop_at: Option<&'static str>,
        skip_seqs: bool,
    }

    impl Visitor for Tracer {
        fn name(&self) -> &'static str {
            "tracer"
        }
        fn description(&self) -> &'static str {
            "test tracer"
        }
        fn start_component(
            &mut self,
            comp: &mut Component,
            _: &mut PassCtx,
        ) -> CalyxResult<Action> {
            self.log.push(format!("start:{}", comp.name));
            Ok(Action::Continue)
        }
        fn finish_component(&mut self, comp: &mut Component, _: &mut PassCtx) -> CalyxResult<()> {
            self.log.push(format!("finish:{}", comp.name));
            Ok(())
        }
        fn enable(
            &mut self,
            group: &mut Id,
            _: &mut Attributes,
            _: &mut Component,
            _: &mut PassCtx,
        ) -> CalyxResult<Action> {
            self.log.push(format!("enable:{group}"));
            if self.stop_at == Some(group.as_str()) {
                return Ok(Action::Stop);
            }
            Ok(Action::Continue)
        }
        fn start_seq(
            &mut self,
            _: &mut Vec<Control>,
            _: &mut Attributes,
            _: &mut Component,
            _: &mut PassCtx,
        ) -> CalyxResult<Action> {
            self.log.push("start_seq".into());
            if self.skip_seqs {
                return Ok(Action::SkipChildren);
            }
            Ok(Action::Continue)
        }
        fn finish_seq(
            &mut self,
            _: &mut Vec<Control>,
            _: &mut Attributes,
            _: &mut Component,
            _: &mut PassCtx,
        ) -> CalyxResult<Action> {
            self.log.push("finish_seq".into());
            Ok(Action::Continue)
        }
        fn start_while(
            &mut self,
            _: &mut PortRef,
            _: &mut Option<Id>,
            _: &mut Control,
            _: &mut Attributes,
            _: &mut Component,
            _: &mut PassCtx,
        ) -> CalyxResult<Action> {
            self.log.push("start_while".into());
            Ok(Action::Continue)
        }
        fn finish_while(
            &mut self,
            _: &mut PortRef,
            _: &mut Option<Id>,
            _: &mut Control,
            _: &mut Attributes,
            _: &mut Component,
            _: &mut PassCtx,
        ) -> CalyxResult<Action> {
            self.log.push("finish_while".into());
            Ok(Action::Continue)
        }
    }

    fn ctx_with(control: Control) -> Context {
        let mut ctx = Context::new();
        let mut comp = ctx.new_component("main");
        comp.control = control;
        ctx.add_component(comp);
        ctx
    }

    #[test]
    fn pre_and_post_hooks_bracket_children() {
        let mut ctx = ctx_with(Control::seq(vec![
            Control::enable("a"),
            Control::while_(PortRef::cell("c", "out"), None, Control::enable("b")),
        ]));
        let mut t = Tracer::default();
        t.run(&mut ctx).unwrap();
        assert_eq!(
            t.log,
            vec![
                "start:main",
                "start_seq",
                "enable:a",
                "start_while",
                "enable:b",
                "finish_while",
                "finish_seq",
                "finish:main",
            ]
        );
    }

    #[test]
    fn skip_children_suppresses_children_and_post_hook() {
        let mut ctx = ctx_with(Control::seq(vec![Control::enable("a")]));
        let mut t = Tracer {
            skip_seqs: true,
            ..Tracer::default()
        };
        t.run(&mut ctx).unwrap();
        assert_eq!(t.log, vec!["start:main", "start_seq", "finish:main"]);
    }

    #[test]
    fn stop_halts_remaining_statements_and_components() {
        let mut ctx = Context::new();
        let mut a = ctx.new_component("a");
        a.control = Control::seq(vec![
            Control::enable("x"),
            Control::enable("halt"),
            Control::enable("never"),
        ]);
        ctx.add_component(a);
        ctx.add_component(ctx.new_component("b"));
        let mut t = Tracer {
            stop_at: Some("halt"),
            ..Tracer::default()
        };
        t.run(&mut ctx).unwrap();
        // `never` is skipped, the seq's post hook is skipped, component `b`
        // is never started — but `finish_component` for `a` still runs.
        assert_eq!(
            t.log,
            vec![
                "start:a",
                "start_seq",
                "enable:x",
                "enable:halt",
                "finish:a"
            ]
        );
    }

    /// Rewrites every enable of `old` to an enable of `new`.
    struct Renamer;
    impl Visitor for Renamer {
        fn name(&self) -> &'static str {
            "renamer"
        }
        fn description(&self) -> &'static str {
            "test renamer"
        }
        fn enable(
            &mut self,
            group: &mut Id,
            _: &mut Attributes,
            _: &mut Component,
            _: &mut PassCtx,
        ) -> CalyxResult<Action> {
            if group.as_str() == "old" {
                return Ok(Action::Change(Control::enable("new")));
            }
            Ok(Action::Continue)
        }
    }

    #[test]
    fn change_replaces_statement_in_place() {
        let mut ctx = ctx_with(Control::seq(vec![
            Control::enable("old"),
            Control::enable("keep"),
        ]));
        Renamer.run(&mut ctx).unwrap();
        let groups = ctx.component("main").unwrap().control.used_groups();
        assert!(groups.contains(&Id::new("new")));
        assert!(groups.contains(&Id::new("keep")));
        assert!(!groups.contains(&Id::new("old")));
    }

    /// A visitor requesting topological order sees children first.
    #[derive(Default)]
    struct OrderProbe(Vec<String>);
    impl Visitor for OrderProbe {
        fn name(&self) -> &'static str {
            "order-probe"
        }
        fn description(&self) -> &'static str {
            "test order probe"
        }
        fn component_order(&self) -> Order {
            Order::Topological
        }
        fn start_component(
            &mut self,
            comp: &mut Component,
            _: &mut PassCtx,
        ) -> CalyxResult<Action> {
            self.0.push(comp.name.to_string());
            Ok(Action::SkipChildren)
        }
    }

    #[test]
    fn topological_order_visits_children_first() {
        let mut ctx = Context::new();
        let pe = ctx.new_component("pe");
        ctx.add_component(pe);
        let mut main = ctx.new_component("main");
        let cell = ctx
            .make_cell(
                "pe0",
                crate::ir::CellType::Component {
                    name: Id::new("pe"),
                },
            )
            .unwrap();
        main.cells.insert(cell);
        ctx.add_component(main);
        // Definition order is main-last already; reverse it to prove the
        // topological sort is doing the work.
        let mut probe = OrderProbe::default();
        probe.run(&mut ctx).unwrap();
        let pos = |n: &str| probe.0.iter().position(|s| s == n).unwrap();
        assert!(pos("pe") < pos("main"));
    }

    /// A read-only pass that queries an analysis.
    struct Prober;
    impl Visitor for Prober {
        fn name(&self) -> &'static str {
            "prober"
        }
        fn description(&self) -> &'static str {
            "queries the pcfg"
        }
        fn start_component(
            &mut self,
            comp: &mut Component,
            ctx: &mut PassCtx,
        ) -> CalyxResult<Action> {
            ctx.get::<Pcfg>(comp);
            Ok(Action::SkipChildren)
        }
    }

    #[test]
    fn read_only_pass_keeps_the_cache_warm_across_passes() {
        let mut ctx = ctx_with(Control::enable("g"));
        let mut cache = AnalysisCache::new();
        Prober.run_with(&mut ctx, &mut cache).unwrap();
        assert_eq!(cache.take_stats().misses, 1);
        Prober.run_with(&mut ctx, &mut cache).unwrap();
        let stats = cache.take_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0), "second pass hits");
        assert_eq!(cache.generation(Id::new("main")), 0);
    }

    #[test]
    fn change_invalidates_the_component_cache() {
        let mut ctx = ctx_with(Control::seq(vec![
            Control::enable("old"),
            Control::enable("keep"),
        ]));
        let mut cache = AnalysisCache::new();
        Prober.run_with(&mut ctx, &mut cache).unwrap();
        Renamer.run_with(&mut ctx, &mut cache).unwrap();
        assert_eq!(
            cache.generation(Id::new("main")),
            1,
            "Action::Change marks the component dirty"
        );
        cache.take_stats();
        Prober.run_with(&mut ctx, &mut cache).unwrap();
        let stats = cache.take_stats();
        assert_eq!(stats.recomputes, 1, "post-rewrite query recomputes");
    }

    /// A pass that mutates wires and reports it via `set_dirty`.
    struct WireMutator;
    impl Visitor for WireMutator {
        fn name(&self) -> &'static str {
            "wire-mutator"
        }
        fn description(&self) -> &'static str {
            "mutates and reports dirty"
        }
        fn finish_component(&mut self, comp: &mut Component, ctx: &mut PassCtx) -> CalyxResult<()> {
            comp.groups.insert(crate::ir::Group::new("injected"));
            ctx.set_dirty();
            Ok(())
        }
    }

    #[test]
    fn set_dirty_from_finish_component_invalidates() {
        let mut ctx = ctx_with(Control::Empty);
        let mut cache = AnalysisCache::new();
        Prober.run_with(&mut ctx, &mut cache).unwrap();
        WireMutator.run_with(&mut ctx, &mut cache).unwrap();
        assert_eq!(cache.generation(Id::new("main")), 1);
    }
}
