//! Remove completely unreferenced cells.

use super::pass_ctx::PassCtx;
use super::visitor::{Action, Visitor};
use crate::analysis::PortUses;
use crate::errors::CalyxResult;
use crate::ir::{attr, Attributes, Component, Control, Id, PortRef};
use std::collections::BTreeSet;

/// Deletes cells that no assignment or control statement references at all.
///
/// The sharing passes (§5.1–5.2) rewrite groups to use representative
/// cells, leaving the donated cells completely unreferenced — this pass is
/// what turns those rewrites into actual area savings. Cells marked
/// `@external` are always kept: their state is the component's observable
/// interface (e.g. result memories).
///
/// A stateful [`Visitor`]: `start_component` pulls the assignment-level
/// references from the cached [`PortUses`] analysis (instead of re-walking
/// every assignment), the `start_if`/`start_while` hooks mark
/// condition-port cells, and `finish_component` sweeps the rest.
#[derive(Debug, Clone, Default)]
pub struct DeadCellRemoval {
    used: BTreeSet<Id>,
}

impl DeadCellRemoval {
    fn mark(&mut self, port: &PortRef) {
        if let Some(c) = port.cell_parent() {
            self.used.insert(c);
        }
    }
}

impl Visitor for DeadCellRemoval {
    fn name(&self) -> &'static str {
        "dead-cell-removal"
    }

    fn description(&self) -> &'static str {
        "remove cells with no references"
    }

    fn start_component(&mut self, comp: &mut Component, ctx: &mut PassCtx) -> CalyxResult<Action> {
        self.used = ctx.get::<PortUses>(comp).referenced_cells().clone();
        Ok(Action::Continue)
    }

    #[allow(clippy::too_many_arguments)]
    fn start_if(
        &mut self,
        port: &mut PortRef,
        _cond: &mut Option<Id>,
        _tbranch: &mut Control,
        _fbranch: &mut Control,
        _attributes: &mut Attributes,
        _comp: &mut Component,
        _ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        self.mark(port);
        Ok(Action::Continue)
    }

    #[allow(clippy::too_many_arguments)]
    fn start_while(
        &mut self,
        port: &mut PortRef,
        _cond: &mut Option<Id>,
        _body: &mut Control,
        _attributes: &mut Attributes,
        _comp: &mut Component,
        _ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        self.mark(port);
        Ok(Action::Continue)
    }

    fn finish_component(&mut self, comp: &mut Component, ctx: &mut PassCtx) -> CalyxResult<()> {
        let before = comp.cells.len();
        comp.cells
            .retain(|c| self.used.contains(&c.name) || c.attributes.has(attr::external()));
        if comp.cells.len() != before {
            ctx.set_dirty();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;
    use crate::passes::Pass;

    #[test]
    fn removes_unreferenced_cells() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells {
                  used = std_reg(8);
                  dead = std_add(8);
                  @external kept = std_mem_d1(8, 4, 2);
                }
                wires {
                  group g { used.in = 8'd1; used.write_en = 1'd1; g[done] = used.done; }
                }
                control { g; }
            }"#,
        )
        .unwrap();
        DeadCellRemoval::default().run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        assert!(main.cells.contains(Id::new("used")));
        assert!(!main.cells.contains(Id::new("dead")));
        assert!(
            main.cells.contains(Id::new("kept")),
            "@external cells survive"
        );
    }

    #[test]
    fn keeps_cells_only_read_by_guards() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { flag = std_reg(1); r = std_reg(8); }
                wires {
                  group g {
                    r.in = flag.out ? 8'd1;
                    r.write_en = 1'd1;
                    g[done] = r.done;
                  }
                }
                control { g; }
            }"#,
        )
        .unwrap();
        DeadCellRemoval::default().run(&mut ctx).unwrap();
        assert!(ctx
            .component("main")
            .unwrap()
            .cells
            .contains(Id::new("flag")));
    }

    #[test]
    fn keeps_condition_port_cells() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { lt = std_lt(8); r = std_reg(8); }
                wires {
                  group cond { cond[done] = 1'd1; }
                  group body { r.in = 8'd1; r.write_en = 1'd1; body[done] = r.done; }
                }
                control { while lt.out with cond { body; } }
            }"#,
        )
        .unwrap();
        DeadCellRemoval::default().run(&mut ctx).unwrap();
        assert!(ctx.component("main").unwrap().cells.contains(Id::new("lt")));
    }
}
