//! Remove completely unreferenced cells.

use super::traversal::{for_each_component, Pass};
use crate::errors::CalyxResult;
use crate::ir::{attr, Context, Control, Id, PortRef};
use std::collections::BTreeSet;

/// Deletes cells that no assignment or control statement references at all.
///
/// The sharing passes (§5.1–5.2) rewrite groups to use representative
/// cells, leaving the donated cells completely unreferenced — this pass is
/// what turns those rewrites into actual area savings. Cells marked
/// `@external` are always kept: their state is the component's observable
/// interface (e.g. result memories).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadCellRemoval;

impl Pass for DeadCellRemoval {
    fn name(&self) -> &'static str {
        "dead-cell-removal"
    }

    fn description(&self) -> &'static str {
        "remove cells with no references"
    }

    fn run(&mut self, ctx: &mut Context) -> CalyxResult<()> {
        for_each_component(ctx, |comp, _| {
            let mut used: BTreeSet<Id> = BTreeSet::new();
            let mut mark = |p: &PortRef| {
                if let Some(c) = p.cell_parent() {
                    used.insert(c);
                }
            };
            for asgn in comp.all_assignments() {
                mark(&asgn.dst);
                for p in asgn.reads() {
                    mark(&p);
                }
            }
            mark_control(&comp.control, &mut used);
            comp.cells
                .retain(|c| used.contains(&c.name) || c.attributes.has(attr::external()));
            Ok(())
        })
    }
}

fn mark_control(control: &Control, used: &mut BTreeSet<Id>) {
    match control {
        Control::Empty | Control::Enable { .. } => {}
        Control::Seq { stmts, .. } | Control::Par { stmts, .. } => {
            for s in stmts {
                mark_control(s, used);
            }
        }
        Control::If {
            port,
            tbranch,
            fbranch,
            ..
        } => {
            if let Some(c) = port.cell_parent() {
                used.insert(c);
            }
            mark_control(tbranch, used);
            mark_control(fbranch, used);
        }
        Control::While { port, body, .. } => {
            if let Some(c) = port.cell_parent() {
                used.insert(c);
            }
            mark_control(body, used);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    #[test]
    fn removes_unreferenced_cells() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells {
                  used = std_reg(8);
                  dead = std_add(8);
                  @external kept = std_mem_d1(8, 4, 2);
                }
                wires {
                  group g { used.in = 8'd1; used.write_en = 1'd1; g[done] = used.done; }
                }
                control { g; }
            }"#,
        )
        .unwrap();
        DeadCellRemoval.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        assert!(main.cells.contains(Id::new("used")));
        assert!(!main.cells.contains(Id::new("dead")));
        assert!(
            main.cells.contains(Id::new("kept")),
            "@external cells survive"
        );
    }

    #[test]
    fn keeps_cells_only_read_by_guards() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { flag = std_reg(1); r = std_reg(8); }
                wires {
                  group g {
                    r.in = flag.out ? 8'd1;
                    r.write_en = 1'd1;
                    g[done] = r.done;
                  }
                }
                control { g; }
            }"#,
        )
        .unwrap();
        DeadCellRemoval.run(&mut ctx).unwrap();
        assert!(ctx
            .component("main")
            .unwrap()
            .cells
            .contains(Id::new("flag")));
    }

    #[test]
    fn keeps_condition_port_cells() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { lt = std_lt(8); r = std_reg(8); }
                wires {
                  group cond { cond[done] = 1'd1; }
                  group body { r.in = 8'd1; r.write_en = 1'd1; body[done] = r.done; }
                }
                control { while lt.out with cond { body; } }
            }"#,
        )
        .unwrap();
        DeadCellRemoval.run(&mut ctx).unwrap();
        assert!(ctx.component("main").unwrap().cells.contains(Id::new("lt")));
    }
}
