//! Latency inference (paper §5.3).
//!
//! Conservatively infers `"static"` latency attributes for groups so that
//! [`StaticTiming`](super::StaticTiming) can compile programs whose
//! frontends never wrote a latency annotation — the paper's systolic array
//! generator relies entirely on this pass.
//!
//! The paper's rule: *"if a group's done signal is equal to a component's
//! done signal, and if the component's go signal is set to 1 within the
//! group, the latency of the group is inferred to be the same as the
//! component."* We implement that rule for every cell with a known latency
//! (primitives carrying a `"static"` attribute, registers and memories via
//! their `write_en`, and instances of components whose latency was derived
//! bottom-up), plus one chained form for the ubiquitous
//! "run a unit, then register its output" idiom:
//!
//! - **Rule A** — `g[done] = c.done` and `c.go = 1`: latency(g) = L(c).
//! - **Rule B** — `g[done] = r.done` and `r.write_en = 1` for a register or
//!   memory: latency(g) = 1.
//! - **Rule C** — `g[done] = r.done`, `r.write_en = c.done`, `c.go = 1`:
//!   latency(g) = L(c) + 1.
//!
//! Groups activating more than one stateful cell are skipped (conservative).
//! After group inference, the pass derives component-level latencies from
//! the control tree (shared with `StaticTiming`) in dependency order, so a
//! systolic array whose PE declares a latency becomes fully static.

use super::pass_ctx::PassCtx;
use super::static_timing::stmt_latency;
use super::visitor::{Action, Order, Visitor};
use crate::errors::CalyxResult;
use crate::ir::{attr, Atom, Cell, CellType, Component, Context, Group, Guard, Id, PortRef};

/// Infer `"static"` latencies for groups and components.
///
/// A [`Visitor`] with [`Order::Topological`] component order: instantiated
/// components are inferred before their instantiators, so component-level
/// latencies compose bottom-up across the design.
#[derive(Debug, Clone, Copy, Default)]
pub struct InferStaticTiming;

impl Visitor for InferStaticTiming {
    fn name(&self) -> &'static str {
        "infer-static-timing"
    }

    fn description(&self) -> &'static str {
        "conservatively infer static latencies of groups and components"
    }

    fn component_order(&self) -> Order {
        Order::Topological
    }

    fn start_component(&mut self, comp: &mut Component, ctx: &mut PassCtx) -> CalyxResult<Action> {
        // This pass only *adds attributes*, which no registered analysis
        // reads, so it never reports dirty and the cache stays warm (the
        // sanctioned exception in the invalidation contract — see
        // `crate::analysis::cache`).
        let group_names: Vec<Id> = comp.groups.names().collect();
        for name in group_names {
            let group = comp.groups.get(name).expect("stable names");
            if group.static_latency().is_some() {
                continue;
            }
            if let Some(latency) = infer_group(comp, ctx, group) {
                comp.groups
                    .get_mut(name)
                    .expect("stable names")
                    .attributes
                    .insert(attr::static_(), latency);
            }
        }
        // Component-level latency from the (possibly annotated) control
        // tree. Like the paper's Sensitive pass, this is only meaningful
        // when StaticTiming subsequently compiles the schedule; the two
        // passes are always registered together.
        if comp.static_latency().is_none() && !comp.control.is_empty() {
            let control = comp.control.clone();
            if let Some(latency) = stmt_latency(comp, &control) {
                if latency > 0 {
                    comp.attributes.insert(attr::static_(), latency);
                }
            }
        }
        // Inference reads groups and the control tree as data; there is
        // nothing to do per control statement.
        Ok(Action::SkipChildren)
    }
}

/// Latency of a cell's go→done (or write_en→done) interface, if known.
fn cell_latency(ctx: &Context, cell: &Cell) -> Option<u64> {
    match &cell.prototype {
        CellType::Primitive { name, .. } => ctx.lib.get(*name)?.static_latency(),
        CellType::Component { name } => ctx.components.get(*name)?.static_latency(),
    }
}

/// The activation port for a cell: `write_en` for storage, `go` otherwise.
fn activation_port(cell: &Cell) -> &'static str {
    if cell.is_register() || cell.is_memory() {
        "write_en"
    } else {
        "go"
    }
}

/// Is this cell stateful (has an activation interface)?
fn is_stateful(ctx: &Context, cell: &Cell) -> bool {
    match &cell.prototype {
        CellType::Primitive { name, .. } => ctx.lib.get(*name).is_some_and(|d| !d.is_comb),
        CellType::Component { .. } => true,
    }
}

/// Accepted activation guards: unconditional, or the standard restart
/// protection `!cell.done`.
fn activation_guard_ok(guard: &Guard, cell: Id) -> bool {
    if guard.is_true() {
        return true;
    }
    matches!(guard, Guard::Not(inner)
        if matches!(&**inner, Guard::Port(p) if *p == PortRef::cell(cell, "done")))
}

fn infer_group(comp: &Component, ctx: &Context, group: &Group) -> Option<u64> {
    // Exactly one unconditional done write reading some cell's done port.
    let mut done_writes = group.done_writes();
    let done = done_writes.next()?;
    if done_writes.next().is_some() || !done.guard.is_true() {
        return None;
    }
    let Atom::Port(done_src) = done.src else {
        return None;
    };
    if done_src.port.as_str() != "done" {
        return None;
    }
    let done_cell = done_src.cell_parent()?;

    // Collect every activation of a stateful cell in the group.
    struct Activation {
        cell: Id,
        src: Atom,
        guard: Guard,
    }
    let mut activations: Vec<Activation> = Vec::new();
    for asgn in &group.assignments {
        let Some(cell_name) = asgn.dst.cell_parent() else {
            continue;
        };
        let cell = comp.cells.get(cell_name)?;
        if !is_stateful(ctx, cell) {
            continue;
        }
        if asgn.dst.port.as_str() == activation_port(cell) {
            // `write_en = 0` / `go = 0` is not an activation.
            if matches!(asgn.src, Atom::Const { val: 0, .. }) {
                continue;
            }
            activations.push(Activation {
                cell: cell_name,
                src: asgn.src,
                guard: asgn.guard.clone(),
            });
        }
    }

    let find = |cell: Id| activations.iter().find(|a| a.cell == cell);
    match activations.len() {
        // Rules A and B: the done cell is the only activated cell.
        1 => {
            let act = find(done_cell)?;
            if !activation_guard_ok(&act.guard, done_cell)
                || !matches!(act.src, Atom::Const { val: 1, .. })
            {
                return None;
            }
            cell_latency(ctx, comp.cells.get(done_cell)?)
        }
        // Rule C: register latched from a unit's done.
        2 => {
            let reg = comp.cells.get(done_cell)?;
            if !(reg.is_register() || reg.is_memory()) {
                return None;
            }
            let reg_act = find(done_cell)?;
            // The register's write_en must be the unit's done pulse, in
            // either spelling: `r.write_en = c.done` or
            // `r.write_en = c.done ? 1`.
            let en_src = match (&reg_act.src, &reg_act.guard) {
                (Atom::Port(p), g) if g.is_true() => *p,
                (Atom::Const { val: 1, .. }, Guard::Port(p)) => *p,
                _ => return None,
            };
            if en_src.port.as_str() != "done" {
                return None;
            }
            let unit = en_src.cell_parent()?;
            let unit_act = find(unit)?;
            if !activation_guard_ok(&unit_act.guard, unit)
                || !matches!(unit_act.src, Atom::Const { val: 1, .. })
            {
                return None;
            }
            let unit_latency = cell_latency(ctx, comp.cells.get(unit)?)?;
            Some(unit_latency + 1)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;
    use crate::passes::Pass;

    fn latency_of(src: &str, group: &str) -> Option<u64> {
        let mut ctx = parse_context(src).unwrap();
        InferStaticTiming.run(&mut ctx).unwrap();
        ctx.component("main")
            .unwrap()
            .groups
            .get(Id::new(group))
            .unwrap()
            .static_latency()
    }

    #[test]
    fn infers_register_writes_as_one_cycle() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(8); }
              wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
              control { g; }
            }
        "#;
        assert_eq!(latency_of(src, "g"), Some(1));
    }

    #[test]
    fn infers_multiplier_activation() {
        let src = r#"
            component main() -> () {
              cells { m = std_mult_pipe(8); r = std_reg(8); }
              wires {
                group mul {
                  m.left = 8'd3; m.right = 8'd4;
                  m.go = !m.done ? 1'd1;
                  r.in = m.out; r.write_en = m.done ? 1'd1;
                  mul[done] = r.done;
                }
              }
              control { mul; }
            }
        "#;
        // Rule C: 4-cycle multiplier + 1-cycle register = 5.
        assert_eq!(latency_of(src, "mul"), Some(5));
    }

    #[test]
    fn paper_rule_for_component_instances() {
        // §5.3's exact example: foo has static=1; incr activates it.
        let src = r#"
            component foo<"static"=2>() -> () {
              cells { r = std_reg(8); }
              wires { group g { r.in = 8'd0; r.write_en = 1'd1; g[done] = r.done; } }
              control { g; }
            }
            component main() -> () {
              cells { f = foo(); }
              wires {
                group incr {
                  f.go = 1'd1;
                  incr[done] = f.done;
                }
              }
              control { incr; }
            }
        "#;
        assert_eq!(latency_of(src, "incr"), Some(2));
    }

    #[test]
    fn sqrt_stays_dynamic() {
        let src = r#"
            component main() -> () {
              cells { s = std_sqrt(8); r = std_reg(8); }
              wires {
                group g {
                  s.in = 8'd9; s.go = !s.done ? 1'd1;
                  r.in = s.out; r.write_en = s.done ? 1'd1;
                  g[done] = r.done;
                }
              }
              control { g; }
            }
        "#;
        // std_sqrt has data-dependent latency; no inference possible.
        assert_eq!(latency_of(src, "g"), None);
    }

    #[test]
    fn multiple_stateful_activations_refused() {
        let src = r#"
            component main() -> () {
              cells { a = std_reg(8); c = std_reg(8); }
              wires {
                group g {
                  a.in = 8'd1; a.write_en = 1'd1;
                  c.in = 8'd2; c.write_en = 1'd1;
                  g[done] = c.done;
                }
              }
              control { g; }
            }
        "#;
        // Two registers written: conservative refusal (the group *is*
        // 1-cycle, but the simple rules do not see that).
        assert_eq!(latency_of(src, "g"), None);
    }

    #[test]
    fn component_latency_derived_from_control() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(8); s = std_reg(8); }
              wires {
                group a { r.in = 8'd1; r.write_en = 1'd1; a[done] = r.done; }
                group c { s.in = 8'd2; s.write_en = 1'd1; c[done] = s.done; }
              }
              control { seq { a; c; } }
            }
        "#;
        let mut ctx = parse_context(src).unwrap();
        InferStaticTiming.run(&mut ctx).unwrap();
        // a and c each infer latency 1; the seq is 2.
        assert_eq!(ctx.component("main").unwrap().static_latency(), Some(2));
    }

    #[test]
    fn existing_annotations_respected() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(8); }
              wires {
                group g<"static"=7> { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; }
              }
              control { g; }
            }
        "#;
        assert_eq!(latency_of(src, "g"), Some(7));
    }
}
