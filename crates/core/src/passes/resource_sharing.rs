//! Resource sharing (paper §5.1).
//!
//! Reuses combinational/shareable cells across groups that can never
//! execute in parallel. The pass proceeds exactly as the paper describes:
//!
//! 1. **Conflict graph** — groups conflict when some `par` block may run
//!    them simultaneously ([`ParConflicts`]).
//! 2. **Greedy coloring** — walk groups in control order; for each
//!    shareable cell a group uses, allocate the first *representative* cell
//!    of identical prototype not already claimed by a conflicting group.
//! 3. **Group rewriting** — apply the per-group renaming locally; the
//!    encapsulation property of groups guarantees nothing outside the group
//!    needs to change.
//!
//! Donated cells become unreferenced and are reclaimed by
//! [`DeadCellRemoval`](super::DeadCellRemoval). The multiplexers the paper
//! discusses (which can make sharing a net *loss* in LUTs, Fig. 9a) appear
//! after lowering as multiple guarded drivers on the shared cell's input
//! ports.

use super::pass_ctx::PassCtx;
use super::visitor::{Action, Visitor};
use crate::analysis::conflict::ParConflicts;
use crate::analysis::{BoundaryCells, PortUses};
use crate::errors::CalyxResult;
use crate::ir::{attr, CellType, Component, Control, Id, Rewriter};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Share `@share`-annotated cells between temporally disjoint groups.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceSharing;

impl Visitor for ResourceSharing {
    fn name(&self) -> &'static str {
        "resource-sharing"
    }

    fn description(&self) -> &'static str {
        "share combinational cells between groups that never run in parallel"
    }

    fn start_component(&mut self, comp: &mut Component, ctx: &mut PassCtx) -> CalyxResult<Action> {
        let conflicts = ctx.get::<ParConflicts>(comp);
        let uses = ctx.get::<PortUses>(comp);

        // Cells eligible for sharing: prototype is marked shareable and
        // the cell is not referenced outside of groups — exactly the
        // boundary-cell set (continuous-assignment references plus
        // `if`/`while` condition ports).
        let pinned = ctx.get::<BoundaryCells>(comp);
        let pinned = pinned.cells();

        let shareable: BTreeSet<Id> = comp
            .cells
            .iter()
            .filter(|c| !pinned.contains(&c.name))
            .filter(|c| match &c.prototype {
                CellType::Primitive { name, .. } => {
                    ctx.lib.get(*name).is_some_and(|def| def.is_shareable())
                }
                CellType::Component { name } => ctx
                    .components
                    .get(*name)
                    .is_some_and(|c| c.attributes.has(attr::share())),
            })
            .map(|c| c.name)
            .collect();

        // Usage map: which groups use each shareable cell (from the cached
        // `PortUses` digest, in group definition order). Cells used by
        // several groups were already shared by the frontend; leave them
        // alone but record their claims so we never double-book them.
        let users: BTreeMap<Id, Vec<Id>> = uses
            .cells_with_users()
            .filter(|(cell, _)| shareable.contains(cell))
            .map(|(cell, groups)| (cell, groups.to_vec()))
            .collect();

        // Claims: representative cell -> groups using it.
        let mut claims: HashMap<Id, Vec<Id>> = HashMap::new();
        for (cell, groups) in &users {
            if groups.len() > 1 {
                claims.insert(*cell, groups.clone());
            }
        }

        // Representative pool per prototype, in allocation order.
        let mut pool: HashMap<CellType, Vec<Id>> = HashMap::new();
        let prototype = |comp: &crate::ir::Component, cell: Id| {
            comp.cells
                .get(cell)
                .expect("used cells exist")
                .prototype
                .clone()
        };
        // Seed the pool with frontend-shared (multi-group) cells so the
        // allocator can reuse them too.
        for cell in claims.keys() {
            pool.entry(prototype(comp, *cell)).or_default().push(*cell);
        }

        // Greedy allocation in control order.
        let mut rewrites: BTreeMap<Id, HashMap<Id, Id>> = BTreeMap::new();
        for group in control_order(&comp.control) {
            let Some(cells) = group_cells(&users, group) else {
                continue;
            };
            for cell in cells {
                if claims.contains_key(&cell) && users[&cell].len() > 1 {
                    continue; // frontend-shared; left in place
                }
                let proto = prototype(comp, cell);
                let candidates = pool.entry(proto).or_default();
                let mut chosen = None;
                for &rep in candidates.iter() {
                    let conflicts_with_rep = claims.get(&rep).is_some_and(|gs| {
                        gs.iter()
                            .any(|&g| g == group || conflicts.conflict(g, group))
                    });
                    // A representative already claimed by this same group
                    // holds a *different* value concurrently; skip it.
                    if !conflicts_with_rep {
                        chosen = Some(rep);
                        break;
                    }
                }
                let rep = match chosen {
                    Some(rep) => rep,
                    None => {
                        candidates.push(cell);
                        cell
                    }
                };
                claims.entry(rep).or_default().push(group);
                if rep != cell {
                    rewrites.entry(group).or_default().insert(cell, rep);
                }
            }
        }

        // Local group rewriting. Only combinational cells are renamed —
        // registers, the control tree, and continuous assignments are
        // untouched — so of the registered analyses only `PortUses` (and,
        // via the automatic cascade, anything computed from it) goes
        // stale; the control and register analyses stay warm.
        if !rewrites.is_empty() {
            ctx.invalidate::<PortUses>(comp.name);
        }
        for (group, map) in rewrites {
            let rw = Rewriter::from_cells(map);
            if let Some(g) = comp.groups.get_mut(group) {
                rw.group(g);
            }
        }
        // The rewrite already visited the control tree through the
        // conflict analysis; no per-statement work remains.
        Ok(Action::SkipChildren)
    }
}

/// Groups in a deterministic control order (first appearance).
fn control_order(control: &Control) -> Vec<Id> {
    let mut order = Vec::new();
    let mut seen = BTreeSet::new();
    control.for_each_group(&mut |g| {
        if seen.insert(g) {
            order.push(g);
        }
    });
    order
}

fn group_cells(users: &BTreeMap<Id, Vec<Id>>, group: Id) -> Option<Vec<Id>> {
    let cells: Vec<Id> = users
        .iter()
        .filter(|(_, gs)| gs.contains(&group))
        .map(|(c, _)| *c)
        .collect();
    if cells.is_empty() {
        None
    } else {
        Some(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{parse_context, PortRef};
    use crate::passes::Pass;

    /// The paper's Fig. 3 example: incr_r0 and incr_r1 never run in
    /// parallel, so their adders merge; the parallel lets do not interact
    /// with adders at all.
    const FIG3: &str = r#"
        component main() -> () {
          cells {
            r0 = std_reg(8); r1 = std_reg(8);
            a0 = std_add(8); a1 = std_add(8);
          }
          wires {
            group let_r0 { r0.in = 8'd0; r0.write_en = 1'd1; let_r0[done] = r0.done; }
            group let_r1 { r1.in = 8'd0; r1.write_en = 1'd1; let_r1[done] = r1.done; }
            group incr_r0 {
              a0.left = r0.out; a0.right = 8'd1;
              r0.in = a0.out; r0.write_en = 1'd1;
              incr_r0[done] = r0.done;
            }
            group incr_r1 {
              a1.left = r1.out; a1.right = 8'd1;
              r1.in = a1.out; r1.write_en = 1'd1;
              incr_r1[done] = r1.done;
            }
          }
          control {
            seq {
              par { let_r0; let_r1; }
              incr_r0;
              incr_r1;
            }
          }
        }
    "#;

    #[test]
    fn merges_sequential_adders() {
        let mut ctx = parse_context(FIG3).unwrap();
        ResourceSharing.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        // incr_r1 now uses a0 (the paper's mapping a1 -> a0).
        let incr_r1 = main.groups.get(Id::new("incr_r1")).unwrap();
        let uses_a0 = incr_r1
            .assignments
            .iter()
            .any(|a| a.dst == PortRef::cell("a0", "left"));
        assert!(uses_a0, "incr_r1 should be rewritten to use a0:\n{incr_r1}");
        // After dead-cell removal, a1 disappears.
        super::super::DeadCellRemoval::default()
            .run(&mut ctx)
            .unwrap();
        assert!(!ctx.component("main").unwrap().cells.contains(Id::new("a1")));
    }

    /// The pass's fine-grained invalidation: a rewrite renames only
    /// combinational cells inside groups, so `PortUses` is dropped while
    /// every control/register analysis (and the component generation)
    /// survives.
    #[test]
    fn rewrite_invalidates_only_port_uses() {
        use crate::analysis::{AnalysisCache, ParConflicts, PortUses};
        let mut ctx = parse_context(FIG3).unwrap();
        let mut cache = AnalysisCache::new();
        ResourceSharing.run_with(&mut ctx, &mut cache).unwrap();
        assert_eq!(cache.generation(Id::new("main")), 0);
        cache.take_stats();
        let main = ctx.component("main").unwrap();
        cache.get::<ParConflicts>(main);
        assert_eq!(cache.stats().hits, 1, "control analyses stay warm");
        let uses = cache.get::<PortUses>(main);
        let stats = cache.take_stats();
        assert_eq!(stats.recomputes, 1, "PortUses was dropped by the rewrite");
        // The recomputed facts reflect the merge: a1 is unreferenced.
        assert!(uses.cell_users(Id::new("a1")).is_empty());
    }

    #[test]
    fn parallel_groups_keep_their_cells() {
        let src = r#"
            component main() -> () {
              cells {
                r0 = std_reg(8); r1 = std_reg(8);
                a0 = std_add(8); a1 = std_add(8);
              }
              wires {
                group i0 {
                  a0.left = r0.out; a0.right = 8'd1;
                  r0.in = a0.out; r0.write_en = 1'd1; i0[done] = r0.done;
                }
                group i1 {
                  a1.left = r1.out; a1.right = 8'd1;
                  r1.in = a1.out; r1.write_en = 1'd1; i1[done] = r1.done;
                }
              }
              control { par { i0; i1; } }
            }
        "#;
        let mut ctx = parse_context(src).unwrap();
        ResourceSharing.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        let i1 = main.groups.get(Id::new("i1")).unwrap();
        let still_a1 = i1
            .assignments
            .iter()
            .any(|a| a.dst == PortRef::cell("a1", "left"));
        assert!(still_a1, "parallel groups must not share adders");
    }

    #[test]
    fn registers_are_not_shared_by_this_pass() {
        let mut ctx = parse_context(FIG3).unwrap();
        ResourceSharing.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        // Registers are stateful; §5.1's pass must leave them alone.
        assert!(main.cells.contains(Id::new("r0")));
        assert!(main.cells.contains(Id::new("r1")));
        let incr_r1 = main.groups.get(Id::new("incr_r1")).unwrap();
        assert!(incr_r1
            .assignments
            .iter()
            .any(|a| a.dst == PortRef::cell("r1", "in")));
    }

    #[test]
    fn different_widths_never_merge() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(8); s = std_reg(16); a0 = std_add(8); a1 = std_add(16); }
              wires {
                group g0 {
                  a0.left = r.out; a0.right = 8'd1;
                  r.in = a0.out; r.write_en = 1'd1; g0[done] = r.done;
                }
                group g1 {
                  a1.left = s.out; a1.right = 16'd1;
                  s.in = a1.out; s.write_en = 1'd1; g1[done] = s.done;
                }
              }
              control { seq { g0; g1; } }
            }
        "#;
        let mut ctx = parse_context(src).unwrap();
        ResourceSharing.run(&mut ctx).unwrap();
        super::super::DeadCellRemoval::default()
            .run(&mut ctx)
            .unwrap();
        let main = ctx.component("main").unwrap();
        assert!(main.cells.contains(Id::new("a0")));
        assert!(main.cells.contains(Id::new("a1")));
    }

    #[test]
    fn cells_in_continuous_assignments_are_pinned() {
        let src = r#"
            component main() -> (o: 8) {
              cells { r = std_reg(8); a0 = std_add(8); a1 = std_add(8); }
              wires {
                o = a1.out;
                a1.left = r.out;
                a1.right = 8'd2;
                group g0 {
                  a0.left = r.out; a0.right = 8'd1;
                  r.in = a0.out; r.write_en = 1'd1; g0[done] = r.done;
                }
              }
              control { g0; }
            }
        "#;
        let mut ctx = parse_context(src).unwrap();
        ResourceSharing.run(&mut ctx).unwrap();
        super::super::DeadCellRemoval::default()
            .run(&mut ctx)
            .unwrap();
        let main = ctx.component("main").unwrap();
        assert!(main.cells.contains(Id::new("a1")), "pinned cell survives");
    }
}
