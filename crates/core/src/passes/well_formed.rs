//! Structural validation as a pass.

use super::pass_ctx::PassCtx;
use super::visitor::{Action, Visitor};
use crate::analysis::AnalysisCache;
use crate::errors::CalyxResult;
use crate::ir::{validate, Component, Context};

/// Checks the structural invariants of the IL (§3.2–§3.3): port existence
/// and width agreement, writability of destinations, statically-unique
/// drivers, group `done` presence, and control references.
///
/// Run first in every pipeline so later passes can assume well-formed input.
/// Validation is whole-context (cross-component signatures must agree), so
/// the work happens in the `start_context` hook and the per-component
/// traversal is skipped.
#[derive(Debug, Clone, Copy, Default)]
pub struct WellFormed;

impl Visitor for WellFormed {
    fn name(&self) -> &'static str {
        "well-formed"
    }

    fn description(&self) -> &'static str {
        "validate structural invariants of the program"
    }

    fn start_context(&mut self, ctx: &mut Context, _cache: &mut AnalysisCache) -> CalyxResult<()> {
        validate::validate_context(ctx)
    }

    fn start_component(
        &mut self,
        _comp: &mut Component,
        _ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        // Validation is read-only: no dirty signal, the cache stays warm.
        Ok(Action::SkipChildren)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;
    use crate::passes::Pass;

    #[test]
    fn pass_wraps_validation() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { r = std_reg(8); }
                wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
                control { g; }
            }"#,
        )
        .unwrap();
        WellFormed.run(&mut ctx).unwrap();
    }

    #[test]
    fn pass_rejects_bad_program() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { r = std_reg(8); }
                wires { group g { r.in = 4'd1; g[done] = r.done; } }
                control { g; }
            }"#,
        )
        .unwrap();
        assert!(WellFormed.run(&mut ctx).is_err());
    }
}
