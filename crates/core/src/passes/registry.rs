//! The named pass registry: build pipelines from data instead of code.
//!
//! Every pass registers a unique kebab-case name plus a one-line
//! description; *aliases* name whole pipelines (`lower`, `opt`, …) and
//! expand to lists of pass names. [`PassManager::from_names`] accepts any
//! mix of pass names and aliases, which is what drives the `futil -p` CLI
//! surface:
//!
//! ```text
//! futil prog.futil -p well-formed -p collapse-control   # hand-built
//! futil prog.futil -p opt                               # alias
//! ```
//!
//! ```
//! use calyx_core::passes::PassManager;
//!
//! let pm = PassManager::from_names(&["lower"]).unwrap();
//! assert_eq!(pm.pass_names().len(), 8);
//! assert!(PassManager::from_names(&["no-such-pass"]).is_err());
//! ```

use super::traversal::{Pass, PassManager};
use super::{
    CollapseControl, CompileControl, DeadCellRemoval, DeadGroupRemoval, GoInsertion, GuardSimplify,
    InferStaticTiming, MinimizeRegs, RemoveGroups, ResourceSharing, StaticTiming, WellFormed,
};
use crate::errors::{CalyxResult, Error};
use crate::utils::is_kebab_case;

/// The latency-insensitive lowering pipeline (the paper's §4.2 workflow).
pub const ALIAS_LOWER: &[&str] = &[
    "well-formed",
    "collapse-control",
    "dead-group-removal",
    "compile-control",
    "go-insertion",
    "remove-groups",
    "guard-simplify",
    "dead-cell-removal",
];

/// Lowering with latency inference + static compilation (§4.4, §5.3).
pub const ALIAS_LOWER_STATIC: &[&str] = &[
    "well-formed",
    "collapse-control",
    "dead-group-removal",
    "infer-static-timing",
    "static-timing",
    "compile-control",
    "go-insertion",
    "remove-groups",
    "guard-simplify",
    "dead-cell-removal",
];

/// The full optimizing pipeline (§5): sharing + static lowering.
pub const ALIAS_OPT: &[&str] = &[
    "well-formed",
    "collapse-control",
    "dead-group-removal",
    "resource-sharing",
    "minimize-regs",
    "infer-static-timing",
    "static-timing",
    "compile-control",
    "go-insertion",
    "remove-groups",
    "guard-simplify",
    "dead-cell-removal",
];

/// Validation only.
pub const ALIAS_NONE: &[&str] = &["well-formed"];

/// A pass known to the registry.
pub struct RegisteredPass {
    /// The pass's unique kebab-case name.
    pub name: &'static str,
    /// One-line description (from [`Pass::description`]).
    pub description: &'static str,
    /// Constructs a fresh instance of the pass.
    pub construct: fn() -> Box<dyn Pass>,
}

/// A registry of named passes and pipeline aliases.
///
/// [`PassRegistry::default`] knows every pass in this crate plus the
/// standard aliases; frontends can [`register`](PassRegistry::register)
/// their own passes and [`add_alias`](PassRegistry::add_alias) their own
/// pipelines on top.
pub struct PassRegistry {
    passes: Vec<RegisteredPass>,
    aliases: Vec<(&'static str, Vec<&'static str>)>,
}

impl Default for PassRegistry {
    /// The standard registry: all passes in this crate, plus the aliases
    /// `none`, `lower`, `lower-static`, `opt`, and `all` (the artifact's
    /// name for the full pipeline).
    fn default() -> Self {
        let mut reg = PassRegistry::empty();
        reg.register::<WellFormed>();
        reg.register::<CollapseControl>();
        reg.register::<DeadGroupRemoval>();
        reg.register::<DeadCellRemoval>();
        reg.register::<InferStaticTiming>();
        reg.register::<StaticTiming>();
        reg.register::<CompileControl>();
        reg.register::<GoInsertion>();
        reg.register::<RemoveGroups>();
        reg.register::<GuardSimplify>();
        reg.register::<ResourceSharing>();
        reg.register::<MinimizeRegs>();
        reg.add_alias("none", ALIAS_NONE);
        reg.add_alias("lower", ALIAS_LOWER);
        reg.add_alias("lower-static", ALIAS_LOWER_STATIC);
        reg.add_alias("opt", ALIAS_OPT);
        reg.add_alias("all", ALIAS_OPT);
        reg
    }
}

impl PassRegistry {
    /// The standard registry (same as [`PassRegistry::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with no passes and no aliases, for frontends that want
    /// full control over what is registered.
    pub fn empty() -> Self {
        PassRegistry {
            passes: Vec::new(),
            aliases: Vec::new(),
        }
    }

    /// Register pass `P` under its own [`Pass::name`].
    ///
    /// # Panics
    ///
    /// Panics when the name is already taken or is not kebab-case — pass
    /// names are compile-time constants, so a collision is a programming
    /// error, not an input error.
    pub fn register<P: Pass + Default + 'static>(&mut self) {
        let probe = P::default();
        let name = Pass::name(&probe);
        assert!(is_kebab_case(name), "pass name `{name}` is not kebab-case");
        assert!(
            self.find(name).is_none(),
            "pass name `{name}` registered twice"
        );
        self.passes.push(RegisteredPass {
            name,
            description: Pass::description(&probe),
            construct: || Box::new(P::default()),
        });
    }

    /// Define alias `name` as the pipeline `expansion` (a list of pass
    /// names).
    ///
    /// # Panics
    ///
    /// Panics when the alias shadows a pass name, is redefined, or names an
    /// unregistered pass — alias tables are compile-time constants.
    pub fn add_alias(&mut self, name: &'static str, expansion: &[&'static str]) {
        assert!(
            self.find(name).is_none() && self.find_alias(name).is_none(),
            "alias `{name}` collides with an existing pass or alias"
        );
        for pass in expansion {
            assert!(
                self.find(pass).is_some(),
                "alias `{name}` expands to unregistered pass `{pass}`"
            );
        }
        self.aliases.push((name, expansion.to_vec()));
    }

    /// All registered passes, in registration order.
    pub fn passes(&self) -> &[RegisteredPass] {
        &self.passes
    }

    /// All aliases with their expansions, in definition order.
    pub fn aliases(&self) -> impl Iterator<Item = (&'static str, &[&'static str])> + '_ {
        self.aliases.iter().map(|(n, e)| (*n, e.as_slice()))
    }

    fn find(&self, name: &str) -> Option<&RegisteredPass> {
        self.passes.iter().find(|p| p.name == name)
    }

    fn find_alias(&self, name: &str) -> Option<&[&'static str]> {
        self.aliases
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, e)| e.as_slice())
    }

    /// Expand a mixed list of pass names and aliases into pass names.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] naming the offending entry and listing
    /// the valid choices when a name is neither a pass nor an alias.
    pub fn expand(&self, names: &[&str]) -> CalyxResult<Vec<&'static str>> {
        let mut out = Vec::new();
        for &name in names {
            if let Some(pass) = self.find(name) {
                out.push(pass.name);
            } else if let Some(expansion) = self.find_alias(name) {
                out.extend_from_slice(expansion);
            } else {
                return Err(Error::undefined(format!(
                    "pass or alias `{name}`; valid passes: {}; valid aliases: {}",
                    self.passes
                        .iter()
                        .map(|p| p.name)
                        .collect::<Vec<_>>()
                        .join(", "),
                    self.aliases
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", "),
                )));
            }
        }
        Ok(out)
    }

    /// Build a [`PassManager`] from a mixed list of pass names and aliases.
    ///
    /// # Errors
    ///
    /// Propagates unknown names from [`PassRegistry::expand`].
    pub fn build(&self, names: &[&str]) -> CalyxResult<PassManager> {
        let mut pm = PassManager::new();
        for name in self.expand(names)? {
            let pass = self.find(name).expect("expand returns registered names");
            pm.register_boxed((pass.construct)());
        }
        Ok(pm)
    }
}

impl PassManager {
    /// Build a pipeline from pass names and aliases using the standard
    /// registry — the data-driven equivalent of the `lower_pipeline*`
    /// constructors and the engine behind `futil -p`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] for names that are neither a registered
    /// pass nor an alias.
    pub fn from_names(names: &[&str]) -> CalyxResult<PassManager> {
        PassRegistry::default().build(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Context;
    use std::collections::BTreeSet;

    #[test]
    fn default_registry_has_all_twelve_passes() {
        let reg = PassRegistry::default();
        assert_eq!(reg.passes().len(), 12);
    }

    #[test]
    fn registered_names_are_unique_and_kebab_case() {
        let reg = PassRegistry::default();
        let mut seen = BTreeSet::new();
        for pass in reg.passes() {
            assert!(is_kebab_case(pass.name), "`{}` not kebab-case", pass.name);
            assert!(
                seen.insert(pass.name),
                "duplicate pass name `{}`",
                pass.name
            );
            assert!(!pass.description.is_empty());
        }
    }

    #[test]
    fn aliases_expand_to_registered_names() {
        let reg = PassRegistry::default();
        let alias_names: Vec<&str> = reg.aliases().map(|(n, _)| n).collect();
        assert_eq!(
            alias_names,
            vec!["none", "lower", "lower-static", "opt", "all"]
        );
        for (alias, expansion) in reg.aliases() {
            assert!(!expansion.is_empty(), "alias `{alias}` is empty");
            for pass in expansion {
                assert!(
                    reg.passes().iter().any(|p| p.name == *pass),
                    "alias `{alias}` expands to unknown pass `{pass}`"
                );
            }
        }
    }

    #[test]
    fn from_names_mixes_aliases_and_passes() {
        let pm = PassManager::from_names(&["none", "collapse-control"]).unwrap();
        assert_eq!(pm.pass_names(), vec!["well-formed", "collapse-control"]);
    }

    #[test]
    fn from_names_unknown_name_is_an_error_not_a_panic() {
        let err = PassManager::from_names(&["lowwer"]).unwrap_err();
        match err {
            Error::Undefined(msg) => {
                assert!(msg.contains("lowwer"), "{msg}");
                // The message lists the valid choices.
                assert!(msg.contains("collapse-control"), "{msg}");
                assert!(msg.contains("lower-static"), "{msg}");
            }
            other => panic!("expected Undefined, got {other:?}"),
        }
    }

    #[test]
    fn alias_pipelines_run() {
        let mut ctx = Context::new();
        ctx.add_component(ctx.new_component("main"));
        for alias in ["none", "lower", "lower-static", "opt", "all"] {
            let mut pm = PassManager::from_names(&[alias]).unwrap();
            pm.run(&mut ctx.clone())
                .unwrap_or_else(|e| panic!("alias `{alias}`: {e}"));
        }
    }

    /// The hand-written pass tables in `passes/mod.rs` and the README must
    /// quote the exact registry description strings (the same ones
    /// `futil --list-passes` prints), or the three copies drift apart.
    #[test]
    fn doc_tables_quote_registry_descriptions() {
        let mod_docs = include_str!("mod.rs");
        let readme = include_str!("../../../../README.md");
        for pass in PassRegistry::default().passes() {
            let row = format!("| `{}` | {} |", pass.name, pass.description);
            assert!(
                mod_docs.contains(&row),
                "passes/mod.rs table out of sync for `{}`: expected row `{row}`",
                pass.name
            );
            assert!(
                readme.contains(&row),
                "README pass table out of sync for `{}`: expected row `{row}`",
                pass.name
            );
        }
    }

    #[test]
    fn kebab_case_predicate() {
        assert!(is_kebab_case("compile-control"));
        assert!(is_kebab_case("opt"));
        assert!(!is_kebab_case(""));
        assert!(!is_kebab_case("CamelCase"));
        assert!(!is_kebab_case("snake_case"));
        assert!(!is_kebab_case("-lead"));
        assert!(!is_kebab_case("trail-"));
        assert!(!is_kebab_case("double--dash"));
    }
}
