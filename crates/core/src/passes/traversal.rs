//! The pass framework: a registry of passes executed in order with timing.
//!
//! Passes implement [`Pass`] and are composed by [`PassManager`]; the
//! prebuilt pipelines in [`crate::passes`] mirror the paper's compilation
//! workflows. Most passes are per-component; [`for_each_component`] handles
//! the borrow dance of editing a component while consulting the context's
//! primitive library.

use crate::analysis::{AnalysisCache, CacheStats};
use crate::errors::CalyxResult;
use crate::ir::{Component, Context, Id};
use std::time::{Duration, Instant};

/// A compiler pass over a whole [`Context`].
pub trait Pass {
    /// Unique, kebab-case pass name (used in reports and errors).
    fn name(&self) -> &'static str;

    /// One-line description for documentation output.
    fn description(&self) -> &'static str;

    /// Transform the program, querying (and invalidating) analyses through
    /// `cache`. [`PassManager`] keeps one cache alive across the whole
    /// pipeline so read-only passes leave it warm for their successors.
    ///
    /// # Errors
    ///
    /// Implementations return [`crate::errors::Error`] on violated
    /// preconditions; the pass manager aborts the pipeline at the first
    /// failure.
    fn run_with(&mut self, ctx: &mut Context, cache: &mut AnalysisCache) -> CalyxResult<()>;

    /// Run the pass standalone with a private, empty cache. Convenience
    /// for tests and one-off invocations; pipelines go through
    /// [`PassManager`] to share the cache between passes.
    ///
    /// # Errors
    ///
    /// Propagates [`Pass::run_with`] failures.
    fn run(&mut self, ctx: &mut Context) -> CalyxResult<()> {
        self.run_with(ctx, &mut AnalysisCache::new())
    }
}

/// Wall-clock duration and cache activity of one executed pass.
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// The pass's [`Pass::name`].
    pub name: &'static str,
    /// Time spent in [`Pass::run_with`].
    pub duration: Duration,
    /// Analysis-cache hits/misses/recomputes attributed to this pass.
    pub cache: CacheStats,
}

/// An ordered list of passes.
///
/// ```
/// use calyx_core::passes::{PassManager, WellFormed};
/// use calyx_core::ir::Context;
///
/// let mut ctx = Context::new();
/// ctx.add_component(ctx.new_component("main"));
/// let mut pm = PassManager::new();
/// pm.register(WellFormed);
/// pm.run(&mut ctx).unwrap();
/// assert_eq!(pm.timings().len(), 1);
/// ```
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    timings: Vec<PassTiming>,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a pass to the pipeline.
    pub fn register<P: Pass + 'static>(&mut self, pass: P) {
        self.passes.push(Box::new(pass));
    }

    /// Append an already-boxed pass (used by the registry's constructors).
    pub fn register_boxed(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Names of registered passes, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run every pass in order with a fresh shared [`AnalysisCache`],
    /// recording wall-clock timings and per-pass cache statistics.
    ///
    /// Timings are recorded for every pass that executed — including the
    /// failing pass itself — so a timing report stays useful when a
    /// pipeline aborts partway through.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first pass failure.
    pub fn run(&mut self, ctx: &mut Context) -> CalyxResult<()> {
        self.run_with_cache(ctx, &mut AnalysisCache::new())
    }

    /// Like [`PassManager::run`] but with a caller-provided cache — e.g.
    /// [`AnalysisCache::recompute_every_query`] for differential testing
    /// and benchmarking against the uncached baseline.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first pass failure.
    pub fn run_with_cache(
        &mut self,
        ctx: &mut Context,
        cache: &mut AnalysisCache,
    ) -> CalyxResult<()> {
        self.timings.clear();
        for pass in &mut self.passes {
            cache.take_stats();
            let start = Instant::now();
            let result = pass.run_with(ctx, cache);
            self.timings.push(PassTiming {
                name: pass.name(),
                duration: start.elapsed(),
                cache: cache.take_stats(),
            });
            result?;
        }
        Ok(())
    }

    /// Timings from the most recent [`PassManager::run`].
    pub fn timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// Total time of the most recent run.
    pub fn total_time(&self) -> Duration {
        self.timings.iter().map(|t| t.duration).sum()
    }

    /// Summed cache statistics of the most recent run.
    pub fn total_cache_stats(&self) -> CacheStats {
        self.timings
            .iter()
            .fold(CacheStats::default(), |acc, t| acc.merged(t.cache))
    }
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.pass_names())
            .finish()
    }
}

/// Take `name`'s component out of the context *by value*, leaving an inert
/// placeholder (an empty component with the same name) in its slot so the
/// map's order and index stay intact. Re-insert the real component with
/// [`crate::ir::Context::add_component`] /
/// [`crate::utils::OrderedMap::insert`], which replaces the placeholder in
/// place.
///
/// This is what makes traversal zero-clone: the old implementation deep-
/// cloned every component once per pass, which dominated compile time on
/// large designs.
pub(super) fn take_component(ctx: &mut Context, name: Id) -> Option<Component> {
    if !ctx.components.contains(name) {
        return None;
    }
    ctx.components.insert(Component::new(name, Vec::new()))
}

/// Apply `f` to every component.
///
/// The component is temporarily taken out of the context by value (no deep
/// clone) so that `f` can hold `&mut Component` while consulting `&Context`
/// (e.g. through [`crate::ir::Builder`]); it is written back preserving the
/// component's position. While `f` runs, the context's entry for the
/// component under edit is an inert placeholder — `f` must use its
/// `&mut Component` argument for that component and the context only for
/// the library and *other* components.
///
/// # Errors
///
/// Propagates the first error returned by `f` (the component is still
/// written back first).
pub fn for_each_component(
    ctx: &mut Context,
    mut f: impl FnMut(&mut Component, &Context) -> CalyxResult<()>,
) -> CalyxResult<()> {
    let names: Vec<Id> = ctx.components.names().collect();
    for name in names {
        let Some(mut comp) = take_component(ctx, name) else {
            continue;
        };
        let result = f(&mut comp, ctx);
        ctx.components.insert(comp);
        result?;
    }
    Ok(())
}

/// Like [`for_each_component`] but visits components in dependency order
/// (instantiated components first) — required by cross-component analyses
/// such as latency inference.
///
/// # Errors
///
/// Propagates cyclic-instantiation errors and the first error from `f`.
pub fn for_each_component_topological(
    ctx: &mut Context,
    mut f: impl FnMut(&mut Component, &Context) -> CalyxResult<()>,
) -> CalyxResult<()> {
    for name in ctx.topological_order()? {
        let Some(mut comp) = take_component(ctx, name) else {
            continue;
        };
        let result = f(&mut comp, ctx);
        ctx.components.insert(comp);
        result?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::Error;

    struct Marker(&'static str, Vec<&'static str>);
    impl Pass for Marker {
        fn name(&self) -> &'static str {
            self.0
        }
        fn description(&self) -> &'static str {
            "test marker"
        }
        fn run_with(&mut self, ctx: &mut Context, _cache: &mut AnalysisCache) -> CalyxResult<()> {
            // Record execution order through a component attribute.
            let comp = ctx.component_mut("main").unwrap();
            let count = comp.attributes.get(Id::new("count")).unwrap_or(0);
            comp.attributes.insert(Id::new("count"), count + 1);
            self.1.push(self.0);
            Ok(())
        }
    }

    struct Failing;
    impl Pass for Failing {
        fn name(&self) -> &'static str {
            "failing"
        }
        fn description(&self) -> &'static str {
            "always fails"
        }
        fn run_with(&mut self, _ctx: &mut Context, _cache: &mut AnalysisCache) -> CalyxResult<()> {
            Err(Error::pass("failing", "boom"))
        }
    }

    fn ctx_with_main() -> Context {
        let mut ctx = Context::new();
        ctx.add_component(ctx.new_component("main"));
        ctx
    }

    #[test]
    fn runs_passes_in_order_and_times_them() {
        let mut ctx = ctx_with_main();
        let mut pm = PassManager::new();
        pm.register(Marker("first", vec![]));
        pm.register(Marker("second", vec![]));
        pm.run(&mut ctx).unwrap();
        assert_eq!(pm.timings().len(), 2);
        assert_eq!(pm.timings()[0].name, "first");
        assert_eq!(pm.timings()[1].name, "second");
        assert_eq!(
            ctx.component("main")
                .unwrap()
                .attributes
                .get(Id::new("count")),
            Some(2)
        );
    }

    #[test]
    fn stops_at_first_failure() {
        let mut ctx = ctx_with_main();
        let mut pm = PassManager::new();
        pm.register(Failing);
        pm.register(Marker("after", vec![]));
        let err = pm.run(&mut ctx).unwrap_err();
        assert!(matches!(
            err,
            Error::Pass {
                pass: "failing",
                ..
            }
        ));
        // The failing pass's own timing is recorded (so `--time` reports
        // are useful on failing pipelines); the never-run pass's is not.
        assert_eq!(pm.timings().len(), 1);
        assert_eq!(pm.timings()[0].name, "failing");
        assert_eq!(
            ctx.component("main")
                .unwrap()
                .attributes
                .get(Id::new("count")),
            None
        );
    }

    #[test]
    fn for_each_component_writes_back_on_error() {
        let mut ctx = ctx_with_main();
        ctx.component_mut("main")
            .unwrap()
            .attributes
            .insert(Id::new("marker"), 7);
        let err = for_each_component(&mut ctx, |_, _| Err(Error::malformed("boom"))).unwrap_err();
        assert!(matches!(err, Error::Malformed(_)));
        // The real component (not the placeholder) is back in the context.
        assert_eq!(
            ctx.component("main")
                .unwrap()
                .attributes
                .get(Id::new("marker")),
            Some(7)
        );
    }

    #[test]
    fn component_under_edit_is_taken_out_of_the_context() {
        let mut ctx = ctx_with_main();
        ctx.component_mut("main")
            .unwrap()
            .attributes
            .insert(Id::new("marker"), 7);
        for_each_component(&mut ctx, |comp, ctx| {
            assert!(comp.attributes.has(Id::new("marker")));
            // The context slot holds an inert placeholder during the edit —
            // no deep clone is made.
            assert!(!ctx
                .component("main")
                .unwrap()
                .attributes
                .has(Id::new("marker")));
            Ok(())
        })
        .unwrap();
        assert!(ctx
            .component("main")
            .unwrap()
            .attributes
            .has(Id::new("marker")));
    }

    #[test]
    fn for_each_component_preserves_order() {
        let mut ctx = Context::new();
        ctx.add_component(ctx.new_component("b"));
        ctx.add_component(ctx.new_component("a"));
        ctx.entrypoint = Id::new("a");
        for_each_component(&mut ctx, |comp, _| {
            comp.attributes.insert(Id::new("seen"), 1);
            Ok(())
        })
        .unwrap();
        let names: Vec<_> = ctx.components.names().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["b", "a"]);
        assert!(ctx.component("a").unwrap().attributes.has(Id::new("seen")));
    }
}
