//! The pass framework: a registry of passes executed in order with timing.
//!
//! Passes implement [`Pass`] and are composed by [`PassManager`]; the
//! prebuilt pipelines in [`crate::passes`] mirror the paper's compilation
//! workflows. Most passes are per-component; [`for_each_component`] handles
//! the borrow dance of editing a component while consulting the context's
//! primitive library.

use crate::errors::CalyxResult;
use crate::ir::{Component, Context, Id};
use std::time::{Duration, Instant};

/// A compiler pass over a whole [`Context`].
pub trait Pass {
    /// Unique, kebab-case pass name (used in reports and errors).
    fn name(&self) -> &'static str;

    /// One-line description for documentation output.
    fn description(&self) -> &'static str;

    /// Transform the program.
    ///
    /// # Errors
    ///
    /// Implementations return [`crate::errors::Error`] on violated
    /// preconditions; the pass manager aborts the pipeline at the first
    /// failure.
    fn run(&mut self, ctx: &mut Context) -> CalyxResult<()>;
}

/// Wall-clock duration of one executed pass.
#[derive(Debug, Clone)]
pub struct PassTiming {
    /// The pass's [`Pass::name`].
    pub name: &'static str,
    /// Time spent in [`Pass::run`].
    pub duration: Duration,
}

/// An ordered list of passes.
///
/// ```
/// use calyx_core::passes::{PassManager, WellFormed};
/// use calyx_core::ir::Context;
///
/// let mut ctx = Context::new();
/// ctx.add_component(ctx.new_component("main"));
/// let mut pm = PassManager::new();
/// pm.register(WellFormed);
/// pm.run(&mut ctx).unwrap();
/// assert_eq!(pm.timings().len(), 1);
/// ```
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    timings: Vec<PassTiming>,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a pass to the pipeline.
    pub fn register<P: Pass + 'static>(&mut self, pass: P) {
        self.passes.push(Box::new(pass));
    }

    /// Names of registered passes, in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run every pass in order, recording wall-clock timings.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first pass failure.
    pub fn run(&mut self, ctx: &mut Context) -> CalyxResult<()> {
        self.timings.clear();
        for pass in &mut self.passes {
            let start = Instant::now();
            pass.run(ctx)?;
            self.timings.push(PassTiming {
                name: pass.name(),
                duration: start.elapsed(),
            });
        }
        Ok(())
    }

    /// Timings from the most recent [`PassManager::run`].
    pub fn timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// Total time of the most recent run.
    pub fn total_time(&self) -> Duration {
        self.timings.iter().map(|t| t.duration).sum()
    }
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.pass_names())
            .finish()
    }
}

/// Apply `f` to every component.
///
/// The component is temporarily cloned out of the context so that `f` can
/// hold `&mut Component` while consulting `&Context` (e.g. through
/// [`crate::ir::Builder`]); the edited copy is written back preserving the
/// component's position.
///
/// # Errors
///
/// Propagates the first error returned by `f`.
pub fn for_each_component(
    ctx: &mut Context,
    mut f: impl FnMut(&mut Component, &Context) -> CalyxResult<()>,
) -> CalyxResult<()> {
    let names: Vec<Id> = ctx.components.names().collect();
    for name in names {
        let mut comp = ctx
            .components
            .get(name)
            .expect("component names are stable during traversal")
            .clone();
        f(&mut comp, ctx)?;
        ctx.components.insert(comp);
    }
    Ok(())
}

/// Like [`for_each_component`] but visits components in dependency order
/// (instantiated components first) — required by cross-component analyses
/// such as latency inference.
///
/// # Errors
///
/// Propagates cyclic-instantiation errors and the first error from `f`.
pub fn for_each_component_topological(
    ctx: &mut Context,
    mut f: impl FnMut(&mut Component, &Context) -> CalyxResult<()>,
) -> CalyxResult<()> {
    for name in ctx.topological_order()? {
        let mut comp = ctx
            .components
            .get(name)
            .expect("topological order only lists existing components")
            .clone();
        f(&mut comp, ctx)?;
        ctx.components.insert(comp);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::Error;

    struct Marker(&'static str, Vec<&'static str>);
    impl Pass for Marker {
        fn name(&self) -> &'static str {
            self.0
        }
        fn description(&self) -> &'static str {
            "test marker"
        }
        fn run(&mut self, ctx: &mut Context) -> CalyxResult<()> {
            // Record execution order through a component attribute.
            let comp = ctx.component_mut("main").unwrap();
            let count = comp.attributes.get(Id::new("count")).unwrap_or(0);
            comp.attributes.insert(Id::new("count"), count + 1);
            self.1.push(self.0);
            Ok(())
        }
    }

    struct Failing;
    impl Pass for Failing {
        fn name(&self) -> &'static str {
            "failing"
        }
        fn description(&self) -> &'static str {
            "always fails"
        }
        fn run(&mut self, _ctx: &mut Context) -> CalyxResult<()> {
            Err(Error::pass("failing", "boom"))
        }
    }

    fn ctx_with_main() -> Context {
        let mut ctx = Context::new();
        ctx.add_component(ctx.new_component("main"));
        ctx
    }

    #[test]
    fn runs_passes_in_order_and_times_them() {
        let mut ctx = ctx_with_main();
        let mut pm = PassManager::new();
        pm.register(Marker("first", vec![]));
        pm.register(Marker("second", vec![]));
        pm.run(&mut ctx).unwrap();
        assert_eq!(pm.timings().len(), 2);
        assert_eq!(pm.timings()[0].name, "first");
        assert_eq!(pm.timings()[1].name, "second");
        assert_eq!(
            ctx.component("main")
                .unwrap()
                .attributes
                .get(Id::new("count")),
            Some(2)
        );
    }

    #[test]
    fn stops_at_first_failure() {
        let mut ctx = ctx_with_main();
        let mut pm = PassManager::new();
        pm.register(Failing);
        pm.register(Marker("after", vec![]));
        let err = pm.run(&mut ctx).unwrap_err();
        assert!(matches!(
            err,
            Error::Pass {
                pass: "failing",
                ..
            }
        ));
        assert_eq!(pm.timings().len(), 0);
        assert_eq!(
            ctx.component("main")
                .unwrap()
                .attributes
                .get(Id::new("count")),
            None
        );
    }

    #[test]
    fn for_each_component_preserves_order() {
        let mut ctx = Context::new();
        ctx.add_component(ctx.new_component("b"));
        ctx.add_component(ctx.new_component("a"));
        ctx.entrypoint = Id::new("a");
        for_each_component(&mut ctx, |comp, _| {
            comp.attributes.insert(Id::new("seen"), 1);
            Ok(())
        })
        .unwrap();
        let names: Vec<_> = ctx.components.names().map(|n| n.as_str()).collect();
        assert_eq!(names, vec!["b", "a"]);
        assert!(ctx.component("a").unwrap().attributes.has(Id::new("seen")));
    }
}
