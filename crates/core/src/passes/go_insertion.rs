//! The `GoInsertion` pass (paper §4.2, Fig. 2b).

use super::pass_ctx::PassCtx;
use super::visitor::{Action, Visitor};
use crate::analysis::{PortUses, SiteOwner};
use crate::errors::CalyxResult;
use crate::ir::{Component, Guard, PortRef};
use std::collections::BTreeSet;

/// Guards every assignment inside a group with the group's `go` interface
/// signal.
///
/// Calyx's semantics activate a group's assignments only while the group
/// executes; after groups are erased ([`RemoveGroups`](super::RemoveGroups))
/// these inserted guards are what keeps the right assignments active at the
/// right time. Writes to the group's *own* `done` hole are left unguarded —
/// the paper's Fig. 2b shows `one[done] = x.done` surviving unchanged — since
/// `done` is only consulted while the group is running. The done-writer
/// sites to skip come from the cached [`PortUses`] analysis rather than a
/// per-assignment destination comparison.
#[derive(Debug, Clone, Copy, Default)]
pub struct GoInsertion;

impl Visitor for GoInsertion {
    fn name(&self) -> &'static str {
        "go-insertion"
    }

    fn description(&self) -> &'static str {
        "guard group assignments with the group's go signal"
    }

    fn start_component(&mut self, comp: &mut Component, ctx: &mut PassCtx) -> CalyxResult<Action> {
        // In the standard pipelines this query is usually a cold compute
        // (compile-control just rewrote the component) and the guard
        // rewrite below invalidates it again; the value of routing it
        // through the cache is the shared single-walk scan and that any
        // custom pipeline placing go-insertion after a read-only stretch
        // gets the memoized table for free.
        let uses = ctx.get::<PortUses>(comp);
        let mut mutated = false;
        for group in comp.groups.iter_mut() {
            let go = Guard::Port(PortRef::hole(group.name, "go"));
            // This group's writes to its own done hole keep their guards.
            let skip: BTreeSet<usize> = uses
                .writes(PortRef::hole(group.name, "done"))
                .filter(|s| s.owner == SiteOwner::Group(group.name))
                .map(|s| s.index)
                .collect();
            for (index, asgn) in group.assignments.iter_mut().enumerate() {
                if !skip.contains(&index) {
                    let guard = std::mem::replace(&mut asgn.guard, Guard::True);
                    asgn.guard = go.clone().and(guard);
                    mutated = true;
                }
            }
        }
        if mutated {
            ctx.set_dirty();
        }
        // A structural pass over wires only: the control tree is untouched.
        Ok(Action::SkipChildren)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{parse_context, Id};
    use crate::passes::Pass;

    #[test]
    fn guards_assignments_with_go() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { x = std_reg(32); }
                wires {
                  group one {
                    x.in = 32'd1;
                    x.write_en = 1'd1;
                    one[done] = x.done;
                  }
                }
                control { one; }
            }"#,
        )
        .unwrap();
        GoInsertion.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        let one = main.groups.get(Id::new("one")).unwrap();
        let go = Guard::Port(PortRef::hole("one", "go"));
        // Data assignments gain the go guard...
        assert_eq!(one.assignments[0].guard, go);
        assert_eq!(one.assignments[1].guard, go);
        // ...while the done write stays unguarded (paper Fig. 2b).
        assert!(one.assignments[2].guard.is_true());
    }

    #[test]
    fn preserves_existing_guards_conjunctively() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { x = std_reg(32); cmp = std_lt(32); }
                wires {
                  group g {
                    x.in = cmp.out ? 32'd1;
                    x.write_en = 1'd1;
                    g[done] = x.done;
                  }
                }
                control { g; }
            }"#,
        )
        .unwrap();
        GoInsertion.run(&mut ctx).unwrap();
        let g = ctx
            .component("main")
            .unwrap()
            .groups
            .get(Id::new("g"))
            .unwrap();
        let expected =
            Guard::Port(PortRef::hole("g", "go")).and(Guard::Port(PortRef::cell("cmp", "out")));
        assert_eq!(g.assignments[0].guard, expected);
    }
}
