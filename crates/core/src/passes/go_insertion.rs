//! The `GoInsertion` pass (paper §4.2, Fig. 2b).

use super::visitor::{Action, Visitor};
use crate::errors::CalyxResult;
use crate::ir::{Component, Context, Guard, PortRef};

/// Guards every assignment inside a group with the group's `go` interface
/// signal.
///
/// Calyx's semantics activate a group's assignments only while the group
/// executes; after groups are erased ([`RemoveGroups`](super::RemoveGroups))
/// these inserted guards are what keeps the right assignments active at the
/// right time. Writes to the group's *own* `done` hole are left unguarded —
/// the paper's Fig. 2b shows `one[done] = x.done` surviving unchanged — since
/// `done` is only consulted while the group is running.
#[derive(Debug, Clone, Copy, Default)]
pub struct GoInsertion;

impl Visitor for GoInsertion {
    fn name(&self) -> &'static str {
        "go-insertion"
    }

    fn description(&self) -> &'static str {
        "guard group assignments with the group's go signal"
    }

    fn start_component(&mut self, comp: &mut Component, _ctx: &Context) -> CalyxResult<Action> {
        for group in comp.groups.iter_mut() {
            let go = Guard::Port(PortRef::hole(group.name, "go"));
            let done_hole = PortRef::hole(group.name, "done");
            for asgn in &mut group.assignments {
                if asgn.dst != done_hole {
                    let guard = std::mem::replace(&mut asgn.guard, Guard::True);
                    asgn.guard = go.clone().and(guard);
                }
            }
        }
        // A structural pass over wires only: the control tree is untouched.
        Ok(Action::SkipChildren)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{parse_context, Id};
    use crate::passes::Pass;

    #[test]
    fn guards_assignments_with_go() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { x = std_reg(32); }
                wires {
                  group one {
                    x.in = 32'd1;
                    x.write_en = 1'd1;
                    one[done] = x.done;
                  }
                }
                control { one; }
            }"#,
        )
        .unwrap();
        GoInsertion.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        let one = main.groups.get(Id::new("one")).unwrap();
        let go = Guard::Port(PortRef::hole("one", "go"));
        // Data assignments gain the go guard...
        assert_eq!(one.assignments[0].guard, go);
        assert_eq!(one.assignments[1].guard, go);
        // ...while the done write stays unguarded (paper Fig. 2b).
        assert!(one.assignments[2].guard.is_true());
    }

    #[test]
    fn preserves_existing_guards_conjunctively() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { x = std_reg(32); cmp = std_lt(32); }
                wires {
                  group g {
                    x.in = cmp.out ? 32'd1;
                    x.write_en = 1'd1;
                    g[done] = x.done;
                  }
                }
                control { g; }
            }"#,
        )
        .unwrap();
        GoInsertion.run(&mut ctx).unwrap();
        let g = ctx
            .component("main")
            .unwrap()
            .groups
            .get(Id::new("g"))
            .unwrap();
        let expected =
            Guard::Port(PortRef::hole("g", "go")).and(Guard::Port(PortRef::cell("cmp", "out")));
        assert_eq!(g.assignments[0].guard, expected);
    }
}
