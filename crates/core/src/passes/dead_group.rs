//! Remove groups not reachable from the control program.

use super::pass_ctx::PassCtx;
use super::visitor::{Action, Visitor};
use crate::errors::CalyxResult;
use crate::ir::{Attributes, Component, Control, Id, PortRef};
use std::collections::BTreeSet;

/// Deletes groups that the control program never enables (directly or as a
/// `with` condition group). Dead groups otherwise survive into lowering and
/// cost area for no behavior.
///
/// A stateful [`Visitor`]: the `enable`/`start_if`/`start_while` hooks
/// collect the live set, and `finish_component` sweeps the rest.
#[derive(Debug, Clone, Default)]
pub struct DeadGroupRemoval {
    used: BTreeSet<Id>,
}

impl Visitor for DeadGroupRemoval {
    fn name(&self) -> &'static str {
        "dead-group-removal"
    }

    fn description(&self) -> &'static str {
        "remove groups unused by the control program"
    }

    fn start_component(
        &mut self,
        _comp: &mut Component,
        _ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        self.used.clear();
        Ok(Action::Continue)
    }

    fn enable(
        &mut self,
        group: &mut Id,
        _attributes: &mut Attributes,
        _comp: &mut Component,
        _ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        self.used.insert(*group);
        Ok(Action::Continue)
    }

    #[allow(clippy::too_many_arguments)]
    fn start_if(
        &mut self,
        _port: &mut PortRef,
        cond: &mut Option<Id>,
        _tbranch: &mut Control,
        _fbranch: &mut Control,
        _attributes: &mut Attributes,
        _comp: &mut Component,
        _ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        self.used.extend(*cond);
        Ok(Action::Continue)
    }

    #[allow(clippy::too_many_arguments)]
    fn start_while(
        &mut self,
        _port: &mut PortRef,
        cond: &mut Option<Id>,
        _body: &mut Control,
        _attributes: &mut Attributes,
        _comp: &mut Component,
        _ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        self.used.extend(*cond);
        Ok(Action::Continue)
    }

    fn finish_component(&mut self, comp: &mut Component, ctx: &mut PassCtx) -> CalyxResult<()> {
        let before = comp.groups.len();
        comp.groups.retain(|g| self.used.contains(&g.name));
        if comp.groups.len() != before {
            ctx.set_dirty();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;
    use crate::passes::Pass;

    #[test]
    fn removes_unreferenced_groups() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { r = std_reg(8); }
                wires {
                  group live { r.in = 8'd1; r.write_en = 1'd1; live[done] = r.done; }
                  group dead { r.in = 8'd2; r.write_en = 1'd1; dead[done] = r.done; }
                }
                control { live; }
            }"#,
        )
        .unwrap();
        DeadGroupRemoval::default().run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        assert!(main.groups.contains(Id::new("live")));
        assert!(!main.groups.contains(Id::new("dead")));
    }

    #[test]
    fn keeps_condition_groups() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { lt = std_lt(8); r = std_reg(8); }
                wires {
                  group cond { lt.left = r.out; lt.right = 8'd10; cond[done] = 1'd1; }
                  group body { r.in = 8'd1; r.write_en = 1'd1; body[done] = r.done; }
                }
                control { while lt.out with cond { body; } }
            }"#,
        )
        .unwrap();
        DeadGroupRemoval::default().run(&mut ctx).unwrap();
        assert_eq!(ctx.component("main").unwrap().groups.len(), 2);
    }

    /// The live set must reset between components, or component B would
    /// keep groups only used by component A (or drop ones A doesn't use).
    #[test]
    fn live_set_is_per_component() {
        let mut ctx = parse_context(
            r#"component helper() -> () {
                cells { r = std_reg(8); }
                wires {
                  group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; }
                }
                control { g; }
            }
            component main() -> () {
                cells { r = std_reg(8); }
                wires {
                  group g { r.in = 8'd2; r.write_en = 1'd1; g[done] = r.done; }
                  group dead { r.in = 8'd3; r.write_en = 1'd1; dead[done] = r.done; }
                }
                control { g; }
            }"#,
        )
        .unwrap();
        DeadGroupRemoval::default().run(&mut ctx).unwrap();
        assert_eq!(ctx.component("helper").unwrap().groups.len(), 1);
        let main = ctx.component("main").unwrap();
        assert!(main.groups.contains(Id::new("g")));
        assert!(!main.groups.contains(Id::new("dead")));
    }
}
