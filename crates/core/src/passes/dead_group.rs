//! Remove groups not reachable from the control program.

use super::traversal::{for_each_component, Pass};
use crate::errors::CalyxResult;
use crate::ir::Context;

/// Deletes groups that the control program never enables (directly or as a
/// `with` condition group). Dead groups otherwise survive into lowering and
/// cost area for no behavior.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadGroupRemoval;

impl Pass for DeadGroupRemoval {
    fn name(&self) -> &'static str {
        "dead-group-removal"
    }

    fn description(&self) -> &'static str {
        "remove groups unused by the control program"
    }

    fn run(&mut self, ctx: &mut Context) -> CalyxResult<()> {
        for_each_component(ctx, |comp, _| {
            let used = comp.control.used_groups();
            comp.groups.retain(|g| used.contains(&g.name));
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{parse_context, Id};

    #[test]
    fn removes_unreferenced_groups() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { r = std_reg(8); }
                wires {
                  group live { r.in = 8'd1; r.write_en = 1'd1; live[done] = r.done; }
                  group dead { r.in = 8'd2; r.write_en = 1'd1; dead[done] = r.done; }
                }
                control { live; }
            }"#,
        )
        .unwrap();
        DeadGroupRemoval.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        assert!(main.groups.contains(Id::new("live")));
        assert!(!main.groups.contains(Id::new("dead")));
    }

    #[test]
    fn keeps_condition_groups() {
        let mut ctx = parse_context(
            r#"component main() -> () {
                cells { lt = std_lt(8); r = std_reg(8); }
                wires {
                  group cond { lt.left = r.out; lt.right = 8'd10; cond[done] = 1'd1; }
                  group body { r.in = 8'd1; r.write_en = 1'd1; body[done] = r.done; }
                }
                control { while lt.out with cond { body; } }
            }"#,
        )
        .unwrap();
        DeadGroupRemoval.run(&mut ctx).unwrap();
        assert_eq!(ctx.component("main").unwrap().groups.len(), 2);
    }
}
