//! Boolean simplification of guards.

use super::pass_ctx::PassCtx;
use super::visitor::{Action, Visitor};
use crate::errors::CalyxResult;
use crate::ir::{Atom, CompOp, Component, Guard};

/// Simplifies guard expressions after interface-signal inlining:
/// double negations, `x & x` / `x | x` idempotence, constant comparisons,
/// and `True`/`!True` identity/annihilator folding.
///
/// Substitution in [`RemoveGroups`](super::RemoveGroups) can clone large
/// guard trees; simplification both shrinks the emitted Verilog and makes
/// area estimation (which counts guard nodes) reflect what synthesis would
/// see after its own Boolean minimization.
#[derive(Debug, Clone, Copy, Default)]
pub struct GuardSimplify;

impl Visitor for GuardSimplify {
    fn name(&self) -> &'static str {
        "guard-simplify"
    }

    fn description(&self) -> &'static str {
        "boolean simplification of assignment guards"
    }

    fn start_component(&mut self, comp: &mut Component, ctx: &mut PassCtx) -> CalyxResult<Action> {
        let mut changed = false;
        for group in comp.groups.iter_mut() {
            for asgn in &mut group.assignments {
                let g = std::mem::replace(&mut asgn.guard, Guard::True);
                asgn.guard = simplify_tracked(g, &mut changed);
            }
        }
        for asgn in &mut comp.continuous {
            let g = std::mem::replace(&mut asgn.guard, Guard::True);
            asgn.guard = simplify_tracked(g, &mut changed);
        }
        // Already-minimal guards leave the analysis cache warm.
        if changed {
            ctx.set_dirty();
        }
        // Guards live in the wires section; the control tree is untouched.
        Ok(Action::SkipChildren)
    }
}

/// Is this guard the constant false (`!True`)?
fn is_false(g: &Guard) -> bool {
    matches!(g, Guard::Not(inner) if inner.is_true())
}

/// Simplify a guard bottom-up.
pub fn simplify(guard: Guard) -> Guard {
    simplify_tracked(guard, &mut false)
}

/// [`simplify`], additionally recording in `changed` whether any rewrite
/// rule fired — the pass uses this to decide if the component must be
/// reported dirty to the analysis cache.
fn simplify_tracked(guard: Guard, changed: &mut bool) -> Guard {
    match guard {
        Guard::True | Guard::Port(_) => guard,
        Guard::Not(inner) => {
            let inner = simplify_tracked(*inner, changed);
            match inner {
                Guard::Not(g) => {
                    *changed = true;
                    *g
                }
                g => Guard::Not(Box::new(g)),
            }
        }
        Guard::And(a, b) => {
            let a = simplify_tracked(*a, changed);
            let b = simplify_tracked(*b, changed);
            if a.is_true() {
                *changed = true;
                return b;
            }
            if b.is_true() {
                *changed = true;
                return a;
            }
            if is_false(&a) || is_false(&b) {
                *changed = true;
                return Guard::True.not();
            }
            if a == b {
                *changed = true;
                return a;
            }
            Guard::And(Box::new(a), Box::new(b))
        }
        Guard::Or(a, b) => {
            let a = simplify_tracked(*a, changed);
            let b = simplify_tracked(*b, changed);
            if a.is_true() || b.is_true() {
                *changed = true;
                return Guard::True;
            }
            if is_false(&a) {
                *changed = true;
                return b;
            }
            if is_false(&b) {
                *changed = true;
                return a;
            }
            if a == b {
                *changed = true;
                return a;
            }
            Guard::Or(Box::new(a), Box::new(b))
        }
        Guard::Comp(op, l, r) => {
            if let (Atom::Const { val: lv, .. }, Atom::Const { val: rv, .. }) = (&l, &r) {
                *changed = true;
                return if op.eval(*lv, *rv) {
                    Guard::True
                } else {
                    Guard::True.not()
                };
            }
            // x == x, x <= x, x >= x are tautologies on equal atoms.
            if l == r {
                *changed = true;
                return match op {
                    CompOp::Eq | CompOp::Leq | CompOp::Geq => Guard::True,
                    CompOp::Neq | CompOp::Lt | CompOp::Gt => Guard::True.not(),
                };
            }
            Guard::Comp(op, l, r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::PortRef;

    fn p(name: &str) -> Guard {
        Guard::Port(PortRef::cell(name, "out"))
    }

    #[test]
    fn folds_double_negation() {
        assert_eq!(simplify(p("a").not().not()), p("a"));
    }

    #[test]
    fn idempotence() {
        assert_eq!(simplify(p("a").and(p("a"))), p("a"));
        assert_eq!(simplify(p("a").or(p("a"))), p("a"));
    }

    #[test]
    fn annihilators_and_identities() {
        assert_eq!(simplify(Guard::True.not().and(p("a"))), Guard::True.not());
        assert_eq!(simplify(Guard::True.not().or(p("a"))), p("a"));
        assert_eq!(
            simplify(Guard::And(Box::new(Guard::True), Box::new(p("a")))),
            p("a")
        );
    }

    #[test]
    fn constant_comparisons_fold() {
        let g = Guard::Comp(CompOp::Eq, Atom::constant(3, 4), Atom::constant(3, 4));
        assert_eq!(simplify(g), Guard::True);
        let g = Guard::Comp(CompOp::Lt, Atom::constant(5, 4), Atom::constant(3, 4));
        assert!(is_false(&simplify(g)));
    }

    #[test]
    fn reflexive_comparisons_fold() {
        let port = Atom::Port(PortRef::cell("fsm", "out"));
        assert_eq!(simplify(Guard::Comp(CompOp::Eq, port, port)), Guard::True);
        assert!(is_false(&simplify(Guard::Comp(CompOp::Neq, port, port))));
    }

    #[test]
    fn simplifies_recursively() {
        // (!!a) & (a & a) => a
        let g = p("a").not().not().and(p("a").and(p("a")));
        assert_eq!(simplify(g), p("a"));
    }
}
