//! The `RemoveGroups` pass: interface-signal inlining (paper §4.2, Fig. 2d).
//!
//! After `CompileControl` + `GoInsertion`, every hole (`g[go]`, `g[done]`)
//! appears in exactly two roles: as the *destination* of writes that define
//! it, and as a 1-bit atom *read inside guards*. This pass:
//!
//! 1. wires the single top-level group enable to the component's `go`/`done`
//!    interface ports,
//! 2. collects all hole writes and replaces every hole read with the
//!    disjunction of its writers (`guard & src` per write), iterating to a
//!    fixpoint since `go` substitutions mention parent holes,
//! 3. moves all group assignments into the top-level `wires` section and
//!    deletes the groups.
//!
//! The result is a control-free component: a flat list of guarded
//! assignments ready for RTL code generation.

use super::pass_ctx::PassCtx;
use super::visitor::{Action, Visitor};
use crate::errors::{CalyxResult, Error};
use crate::ir::{Assignment, Atom, Component, Control, Guard, PortRef};
use std::collections::HashMap;

/// Inlines `go`/`done` interface signals and erases all groups.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemoveGroups;

impl Visitor for RemoveGroups {
    fn name(&self) -> &'static str {
        "remove-groups"
    }

    fn description(&self) -> &'static str {
        "inline interface signals and erase group boundaries"
    }

    fn start_component(&mut self, comp: &mut Component, ctx: &mut PassCtx) -> CalyxResult<Action> {
        // Group erasure rewrites the whole wires section and empties the
        // control program: unconditionally stale for every analysis.
        ctx.set_dirty();
        let top = match std::mem::take(&mut comp.control) {
            Control::Empty => None,
            Control::Enable { group, .. } => Some(group),
            other => {
                return Err(Error::pass(
                    "remove-groups",
                    format!("expected compiled control (a single enable), found:\n{other}"),
                ))
            }
        };

        // Does the top group need `!done` re-execution protection? A
        // group whose done is a registered pulse (`reg.done`/`mem.done`)
        // would fire again during its done cycle if `go` stayed high —
        // inner enables get this term from their parent FSM
        // (compile-control), but the top-level enable has no parent, so
        // the component's own go wiring must supply it.
        let top_needs_protection = top
            .and_then(|t| comp.groups.get(t))
            .map(|g| {
                g.done_writes().any(|asgn| match &asgn.src {
                    Atom::Port(p) if p.port.as_str() == "done" => p
                        .cell_parent()
                        .and_then(|c| comp.cells.get(c))
                        .is_some_and(|cell| cell.is_register() || cell.is_memory()),
                    _ => false,
                })
            })
            .unwrap_or(false);

        // Gather hole definitions, removing the defining assignments.
        let mut writes: HashMap<PortRef, Vec<(Guard, Atom)>> = HashMap::new();
        for group in comp.groups.iter_mut() {
            group.assignments.retain(|asgn| {
                if asgn.dst.is_hole() {
                    writes
                        .entry(asgn.dst)
                        .or_default()
                        .push((asgn.guard.clone(), asgn.src));
                    false
                } else {
                    true
                }
            });
        }
        comp.continuous.retain(|asgn| {
            if asgn.dst.is_hole() {
                writes
                    .entry(asgn.dst)
                    .or_default()
                    .push((asgn.guard.clone(), asgn.src));
                false
            } else {
                true
            }
        });

        // Each hole's replacement: OR over its writes of (guard & src).
        let mut repl: HashMap<PortRef, Guard> = HashMap::new();
        for (hole, defs) in writes {
            let mut guard: Option<Guard> = None;
            for (g, src) in defs {
                let contribution = match src {
                    Atom::Const { val: 0, .. } => continue,
                    Atom::Const { .. } => g,
                    Atom::Port(p) if p.is_hole() => g.and(Guard::Port(p)),
                    Atom::Port(p) => g.and(Guard::Port(p)),
                };
                guard = Some(match guard {
                    Some(acc) => acc.or(contribution),
                    None => contribution,
                });
            }
            // A hole that is never written (or only written 0) is never
            // high.
            repl.insert(hole, guard.unwrap_or_else(|| Guard::True.not()));
        }

        // The top group is started by the component's own go port (with
        // re-execution protection when its done is a registered pulse).
        if let Some(top) = top {
            let mut go_guard = Guard::Port(PortRef::this("go"));
            if top_needs_protection {
                go_guard = go_guard.and(Guard::Port(PortRef::hole(top, "done")).not());
            }
            repl.insert(PortRef::hole(top, "go"), go_guard);
        }

        // Resolve hole references inside replacements to a fixpoint. The
        // dependency structure follows the control tree (a child's go
        // mentions its parent's go and sibling dones), so this
        // terminates in O(nesting depth) rounds.
        let holes: Vec<PortRef> = repl.keys().copied().collect();
        for round in 0.. {
            let mut changed = false;
            for hole in &holes {
                let mut guard = repl[hole].clone();
                let reads: Vec<PortRef> =
                    guard.ports().into_iter().filter(PortRef::is_hole).collect();
                if reads.is_empty() {
                    continue;
                }
                for read in reads {
                    let replacement = repl.get(&read).cloned().ok_or_else(|| {
                        Error::pass(
                            "remove-groups",
                            format!("hole `{read}` is read but never written"),
                        )
                    })?;
                    guard.substitute(read, &replacement);
                    changed = true;
                }
                repl.insert(*hole, guard);
            }
            if !changed {
                break;
            }
            if round > 256 {
                return Err(Error::pass(
                    "remove-groups",
                    "interface-signal substitution did not converge (cyclic holes?)",
                ));
            }
        }

        // Substitute hole reads in every remaining assignment.
        let substitute_in = |guard: &mut Guard| -> CalyxResult<()> {
            loop {
                let reads: Vec<PortRef> =
                    guard.ports().into_iter().filter(PortRef::is_hole).collect();
                if reads.is_empty() {
                    return Ok(());
                }
                for read in reads {
                    let replacement = repl.get(&read).cloned().ok_or_else(|| {
                        Error::pass(
                            "remove-groups",
                            format!("hole `{read}` is read but never written"),
                        )
                    })?;
                    guard.substitute(read, &replacement);
                }
            }
        };

        let mut flattened: Vec<Assignment> = Vec::new();
        let group_names: Vec<_> = comp.groups.names().collect();
        for gname in group_names {
            let group = comp.groups.remove(gname).expect("name from iteration");
            for mut asgn in group.assignments {
                if matches!(asgn.src, Atom::Port(p) if p.is_hole()) {
                    return Err(Error::pass(
                        "remove-groups",
                        format!("hole used as assignment source in `{}`", asgn.dst),
                    ));
                }
                substitute_in(&mut asgn.guard)?;
                flattened.push(asgn);
            }
        }
        for asgn in &mut comp.continuous {
            substitute_in(&mut asgn.guard)?;
        }
        comp.continuous.extend(flattened);

        // Wire the component's done port.
        let done_guard = match top {
            Some(top) => repl
                .get(&PortRef::hole(top, "done"))
                .cloned()
                .ok_or_else(|| {
                    Error::pass(
                        "remove-groups",
                        format!("top-level group `{top}` never writes its done hole"),
                    )
                })?,
            // An empty component finishes as soon as it is started.
            None => Guard::Port(PortRef::this("go")),
        };
        comp.continuous.push(Assignment::guarded(
            PortRef::this("done"),
            Atom::constant(1, 1),
            done_guard,
        ));
        // Groups are erased and control is empty; nothing to traverse.
        Ok(Action::SkipChildren)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{CompileControl, GoInsertion};
    use super::*;
    use crate::ir::parse_context;
    use crate::passes::Pass;

    fn lower(src: &str) -> crate::ir::Context {
        let mut ctx = parse_context(src).unwrap();
        CompileControl.run(&mut ctx).unwrap();
        GoInsertion.run(&mut ctx).unwrap();
        RemoveGroups.run(&mut ctx).unwrap();
        ctx
    }

    const FIG2: &str = r#"
        component main() -> () {
          cells { x = std_reg(32); }
          wires {
            group one { x.in = 32'd1; x.write_en = 1'd1; one[done] = x.done; }
            group two { x.in = 32'd2; x.write_en = 1'd1; two[done] = x.done; }
          }
          control { seq { one; two; } }
        }
    "#;

    #[test]
    fn produces_flat_control_free_program() {
        let ctx = lower(FIG2);
        let main = ctx.component("main").unwrap();
        assert!(main.groups.is_empty(), "all groups erased");
        assert!(main.control.is_empty(), "control emptied");
        assert!(!main.continuous.is_empty());
        // No holes anywhere.
        for asgn in &main.continuous {
            assert!(!asgn.dst.is_hole(), "hole dst survives: {}", asgn.dst);
            for p in asgn.reads() {
                assert!(!p.is_hole(), "hole read survives: {p}");
            }
        }
    }

    #[test]
    fn wires_component_done() {
        let ctx = lower(FIG2);
        let main = ctx.component("main").unwrap();
        let done_writes: Vec<_> = main
            .continuous
            .iter()
            .filter(|a| a.dst == PortRef::this("done"))
            .collect();
        assert_eq!(done_writes.len(), 1);
        // The done condition mentions the FSM's final state.
        let guard = format!("{}", done_writes[0].guard);
        assert!(guard.contains("fsm.out == 2'd2"), "done guard: {guard}");
    }

    #[test]
    fn assignments_are_gated_by_component_go() {
        let ctx = lower(FIG2);
        let main = ctx.component("main").unwrap();
        // The write `x.in = 1` must (transitively) require the component go
        // and the FSM state.
        let x_writes: Vec<_> = main
            .continuous
            .iter()
            .filter(|a| a.dst == PortRef::cell("x", "in"))
            .collect();
        assert_eq!(x_writes.len(), 2);
        for w in x_writes {
            let guard = format!("{}", w.guard);
            assert!(guard.contains("go"), "guard must mention go: {guard}");
            assert!(
                guard.contains("fsm.out =="),
                "guard must mention fsm: {guard}"
            );
        }
    }

    #[test]
    fn empty_control_component_is_immediately_done() {
        let ctx = lower("component main() -> () { cells {} wires {} control {} }");
        let main = ctx.component("main").unwrap();
        let done = main
            .continuous
            .iter()
            .find(|a| a.dst == PortRef::this("done"))
            .unwrap();
        assert_eq!(done.guard, Guard::Port(PortRef::this("go")));
    }

    #[test]
    fn rejects_uncompiled_control() {
        let mut ctx = parse_context(FIG2).unwrap();
        let err = RemoveGroups.run(&mut ctx).unwrap_err();
        assert!(err.to_string().contains("single enable"), "{err}");
    }
}
