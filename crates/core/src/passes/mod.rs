//! Compiler passes: the visitor framework, the analysis-query context, the
//! named pass registry, and the standard pipelines.
//!
//! Passes implement [`Visitor`] (structural traversal with [`Action`]
//! steering — see the [`visitor`] module docs for the contract) and are
//! composed by [`PassManager`]. Pipelines are *data*: every pass has a
//! kebab-case name in the [`PassRegistry`], aliases name standard
//! pipelines, and [`PassManager::from_names`] builds any mix of the two —
//! the same surface the `futil -p` CLI exposes.
//!
//! # Analyses and `PassCtx`
//!
//! Every visitor hook receives a [`PassCtx`]: the read-only context view
//! (deref to [`Context`](crate::ir::Context)) bundled with the pipeline's
//! [`AnalysisCache`]. Passes query analyses with
//! [`PassCtx::get`] — `ctx.get::<Interference>(comp)` — instead of
//! computing them locally; the cache memoizes per component and the
//! [`PassManager`] shares it across the whole pipeline, attributing
//! hit/miss statistics to each pass ([`PassTiming::cache`], surfaced by
//! `futil --stats`).
//!
//! Memoized facts must be invalidated when a pass mutates a component, and
//! the framework cannot observe mutations — passes report them: returning
//! [`Action::Change`] marks the component dirty automatically, any other
//! mutation calls [`PassCtx::set_dirty`]. The full contract (including the
//! attributes-only exemption) is in the
//! [cache module docs](crate::analysis::cache).
//!
//! # Pass table
//!
//! | Name | Description | In aliases |
//! |------|-------------|------------|
//! | `well-formed` | validate structural invariants of the program | `none`, `lower`, `lower-static`, `opt`, `all` |
//! | `collapse-control` | flatten nested seq/par blocks and drop empty statements | `lower`, `lower-static`, `opt`, `all` |
//! | `dead-group-removal` | remove groups unused by the control program | `lower`, `lower-static`, `opt`, `all` |
//! | `dead-cell-removal` | remove cells with no references | `lower`, `lower-static`, `opt`, `all` |
//! | `infer-static-timing` | conservatively infer static latencies of groups and components | `lower-static`, `opt`, `all` |
//! | `static-timing` | compile statically-timed control with counter FSMs (the paper's Sensitive pass) | `lower-static`, `opt`, `all` |
//! | `compile-control` | structurally realize control statements with latency-insensitive FSMs | `lower`, `lower-static`, `opt`, `all` |
//! | `go-insertion` | guard group assignments with the group's go signal | `lower`, `lower-static`, `opt`, `all` |
//! | `remove-groups` | inline interface signals and erase group boundaries | `lower`, `lower-static`, `opt`, `all` |
//! | `guard-simplify` | boolean simplification of assignment guards | `lower`, `lower-static`, `opt`, `all` |
//! | `resource-sharing` | share combinational cells between groups that never run in parallel | `opt`, `all` |
//! | `minimize-regs` | share registers whose live ranges do not overlap | `opt`, `all` |
//!
//! # Aliases
//!
//! | Alias | Pipeline |
//! |-------|----------|
//! | `none` | validation only (`well-formed`) |
//! | `lower` | the paper's §4.2 latency-insensitive lowering |
//! | `lower-static` | `lower` with latency inference + static compilation (§4.4, §5.3) |
//! | `opt` | the full optimizing pipeline (§5.1–§5.3 + static lowering) |
//! | `all` | same as `opt` (the artifact's name for the full pipeline) |
//!
//! The paper-facing mapping: the primary compilation pipeline (§4.2) is
//! [`GoInsertion`] → [`CompileControl`] → [`RemoveGroups`]; code generation
//! (`Lower`) lives in the backend crate. [`StaticTiming`] is the
//! latency-sensitive `Sensitive` pass (§4.4) and [`InferStaticTiming`] is
//! the latency-inference pass (§5.3). The optimization passes are
//! [`ResourceSharing`] (§5.1) and [`MinimizeRegs`] (§5.2).
//!
//! One deliberate departure from the paper's presentation: our pipelines run
//! [`GoInsertion`] *after* [`CompileControl`] so that the generated
//! compilation groups' assignments (FSM updates, child `go` writes) are also
//! guarded by their own group's `go` hole. For frontend-written groups the
//! result is identical to the paper's order, and the extra guards are what
//! keeps *nested* FSMs inert while their parent statement is not running
//! once [`RemoveGroups`] erases group boundaries.

mod collapse_control;
mod compile_control;
mod dead_cell;
mod dead_group;
mod go_insertion;
mod guard_simplify;
mod infer_static;
mod minimize_regs;
mod pass_ctx;
mod registry;
mod remove_groups;
mod resource_sharing;
mod static_timing;
mod traversal;
pub mod visitor;
mod well_formed;

pub use collapse_control::CollapseControl;
pub use compile_control::CompileControl;
pub use dead_cell::DeadCellRemoval;
pub use dead_group::DeadGroupRemoval;
pub use go_insertion::GoInsertion;
pub use guard_simplify::{simplify, GuardSimplify};
pub use infer_static::InferStaticTiming;
pub use minimize_regs::MinimizeRegs;
pub use pass_ctx::PassCtx;
pub use registry::{
    PassRegistry, RegisteredPass, ALIAS_LOWER, ALIAS_LOWER_STATIC, ALIAS_NONE, ALIAS_OPT,
};
pub use remove_groups::RemoveGroups;
pub use resource_sharing::ResourceSharing;
pub use static_timing::StaticTiming;
pub use traversal::{
    for_each_component, for_each_component_topological, Pass, PassManager, PassTiming,
};
pub use visitor::{Action, Order, Visitor};
pub use well_formed::WellFormed;

// Re-exported so pass authors reach the whole query surface from one
// module: hooks take `PassCtx`, standalone drivers take `AnalysisCache`.
pub use crate::analysis::{AnalysisCache, CacheStats};

/// The standard lowering pipeline: validate, clean up, insert `go` guards,
/// compile control to FSMs, and inline interface signals.
///
/// A thin wrapper over the registry alias `lower`; see
/// [`lower_pipeline_static`] for the variant that first applies latency
/// inference and static compilation.
pub fn lower_pipeline() -> PassManager {
    PassManager::from_names(&["lower"]).expect("`lower` alias is registered")
}

/// The lowering pipeline with latency-sensitive compilation enabled:
/// latencies are inferred (§5.3) and statically schedulable control is
/// compiled with counter FSMs (§4.4) before the dynamic fallback runs.
///
/// A thin wrapper over the registry alias `lower-static`.
pub fn lower_pipeline_static() -> PassManager {
    PassManager::from_names(&["lower-static"]).expect("`lower-static` alias is registered")
}

/// The full optimizing pipeline used for the paper's headline numbers:
/// sharing optimizations followed by latency-sensitive lowering.
///
/// With all three flags on, this is the registry alias `opt` (= `all`);
/// the flags drop individual optimizations for the §7.3 ablations.
pub fn optimized_pipeline(
    resource_sharing: bool,
    minimize_regs: bool,
    static_timing: bool,
) -> PassManager {
    let mut names = vec!["well-formed", "collapse-control", "dead-group-removal"];
    if resource_sharing {
        names.push("resource-sharing");
    }
    if minimize_regs {
        names.push("minimize-regs");
    }
    if static_timing {
        names.push("infer-static-timing");
        names.push("static-timing");
    }
    names.extend([
        "compile-control",
        "go-insertion",
        "remove-groups",
        "guard-simplify",
        "dead-cell-removal",
    ]);
    PassManager::from_names(&names).expect("optimized pipeline passes are registered")
}
