//! Compiler passes.
//!
//! The paper's primary compilation pipeline (§4.2) is
//! [`GoInsertion`] → [`CompileControl`] → [`RemoveGroups`]; code generation
//! (`Lower`) lives in the backend crate. [`StaticTiming`] is the
//! latency-sensitive `Sensitive` pass (§4.4) and [`InferStaticTiming`] is
//! the latency-inference pass (§5.3). The optimization passes are
//! [`ResourceSharing`] (§5.1) and [`MinimizeRegs`] (§5.2).
//!
//! One deliberate departure from the paper's presentation: our pipelines run
//! [`GoInsertion`] *after* [`CompileControl`] so that the generated
//! compilation groups' assignments (FSM updates, child `go` writes) are also
//! guarded by their own group's `go` hole. For frontend-written groups the
//! result is identical to the paper's order, and the extra guards are what
//! keeps *nested* FSMs inert while their parent statement is not running
//! once [`RemoveGroups`] erases group boundaries.

mod collapse_control;
mod compile_control;
mod dead_cell;
mod dead_group;
mod go_insertion;
mod guard_simplify;
mod infer_static;
mod minimize_regs;
mod remove_groups;
mod resource_sharing;
mod static_timing;
mod traversal;
mod well_formed;

pub use collapse_control::CollapseControl;
pub use compile_control::CompileControl;
pub use dead_cell::DeadCellRemoval;
pub use dead_group::DeadGroupRemoval;
pub use go_insertion::GoInsertion;
pub use guard_simplify::{simplify, GuardSimplify};
pub use infer_static::InferStaticTiming;
pub use minimize_regs::MinimizeRegs;
pub use remove_groups::RemoveGroups;
pub use resource_sharing::ResourceSharing;
pub use static_timing::StaticTiming;
pub use traversal::{Pass, PassManager, PassTiming};
pub use well_formed::WellFormed;

/// The standard lowering pipeline: validate, clean up, insert `go` guards,
/// compile control to FSMs, and inline interface signals.
///
/// This is the latency-*insensitive* pipeline; see
/// [`lower_pipeline_static`] for the variant that first applies latency
/// inference and static compilation.
pub fn lower_pipeline() -> PassManager {
    let mut pm = PassManager::new();
    pm.register(WellFormed);
    pm.register(CollapseControl);
    pm.register(DeadGroupRemoval);
    pm.register(CompileControl);
    pm.register(GoInsertion);
    pm.register(RemoveGroups);
    pm.register(GuardSimplify);
    pm.register(DeadCellRemoval);
    pm
}

/// The lowering pipeline with latency-sensitive compilation enabled:
/// latencies are inferred (§5.3) and statically schedulable control is
/// compiled with counter FSMs (§4.4) before the dynamic fallback runs.
pub fn lower_pipeline_static() -> PassManager {
    let mut pm = PassManager::new();
    pm.register(WellFormed);
    pm.register(CollapseControl);
    pm.register(DeadGroupRemoval);
    pm.register(InferStaticTiming);
    pm.register(StaticTiming);
    pm.register(CompileControl);
    pm.register(GoInsertion);
    pm.register(RemoveGroups);
    pm.register(GuardSimplify);
    pm.register(DeadCellRemoval);
    pm
}

/// The full optimizing pipeline used for the paper's headline numbers:
/// sharing optimizations followed by latency-sensitive lowering.
pub fn optimized_pipeline(
    resource_sharing: bool,
    minimize_regs: bool,
    static_timing: bool,
) -> PassManager {
    let mut pm = PassManager::new();
    pm.register(WellFormed);
    pm.register(CollapseControl);
    pm.register(DeadGroupRemoval);
    if resource_sharing {
        pm.register(ResourceSharing);
    }
    if minimize_regs {
        pm.register(MinimizeRegs);
    }
    if static_timing {
        pm.register(InferStaticTiming);
        pm.register(StaticTiming);
    }
    pm.register(CompileControl);
    pm.register(GoInsertion);
    pm.register(RemoveGroups);
    pm.register(GuardSimplify);
    pm.register(DeadCellRemoval);
    pm
}
