//! The `CompileControl` pass: latency-insensitive FSM generation
//! (paper §4.2–§4.3, Fig. 2c).
//!
//! The pass walks the control program bottom-up. For every control
//! statement it instantiates a *compilation group* containing the structure
//! that realizes the statement — a state register for `seq`, per-child done
//! savers for `par`, condition-computed/condition-saved registers for
//! `if`/`while` — wires the children's `go`/`done` interface signals, and
//! replaces the statement with an enable of the compilation group. After the
//! pass, each component's control program is a single group enable.
//!
//! Compilation groups reset their internal state when they raise `done`, so
//! they operate correctly when re-entered inside loops.
//!
//! ## Interaction with static groups
//!
//! Dynamic (registered-`done`) groups are enabled with a `!child[done]`
//! term in their `go` guard so a group that finishes is not re-executed
//! during its done pulse. Groups compiled by
//! [`StaticTiming`](super::StaticTiming) instead assert `done`
//! *combinationally during their final cycle* and must stay enabled through
//! it, so the `!done` term is omitted for children carrying a `"static"`
//! attribute.

use super::pass_ctx::PassCtx;
use super::visitor::{Action, Visitor};
use crate::errors::{CalyxResult, Error};
use crate::ir::{attr, Attributes, Builder, Component, Control, Guard, Id, PortRef};
use crate::utils::bits_needed;

/// Compiles `seq`/`par`/`if`/`while` into latency-insensitive FSMs.
///
/// A bottom-up [`Visitor`]: every post hook sees children that earlier
/// hooks have already folded into single group enables (or `Empty`), builds
/// the compilation group realizing this statement, and replaces the
/// statement with an enable of it. After the pass, each component's control
/// program is a single group enable.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileControl;

impl Visitor for CompileControl {
    fn name(&self) -> &'static str {
        "compile-control"
    }

    fn description(&self) -> &'static str {
        "structurally realize control statements with latency-insensitive FSMs"
    }

    fn enable(
        &mut self,
        group: &mut Id,
        _attributes: &mut Attributes,
        comp: &mut Component,
        _ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        if !comp.groups.contains(*group) {
            return Err(Error::pass(
                "compile-control",
                format!("control enables undefined group `{group}`"),
            ));
        }
        Ok(Action::Continue)
    }

    fn finish_seq(
        &mut self,
        stmts: &mut Vec<Control>,
        _attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        let children = child_groups(stmts);
        Ok(match children.len() {
            0 => Action::Change(Control::Empty),
            1 => Action::Change(Control::enable(children[0])),
            _ => {
                let mut b = Builder::new(comp, ctx);
                Action::Change(Control::enable(compile_seq(&mut b, &children)))
            }
        })
    }

    fn finish_par(
        &mut self,
        stmts: &mut Vec<Control>,
        _attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        let children = child_groups(stmts);
        Ok(match children.len() {
            0 => Action::Change(Control::Empty),
            1 => Action::Change(Control::enable(children[0])),
            _ => {
                let mut b = Builder::new(comp, ctx);
                Action::Change(Control::enable(compile_par(&mut b, &children)))
            }
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_if(
        &mut self,
        port: &mut PortRef,
        cond: &mut Option<Id>,
        tbranch: &mut Control,
        fbranch: &mut Control,
        _attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        let t = compiled_child(tbranch);
        let f = compiled_child(fbranch);
        let mut b = Builder::new(comp, ctx);
        let g = compile_if(&mut b, *port, *cond, t, f);
        Ok(Action::Change(Control::enable(g)))
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_while(
        &mut self,
        port: &mut PortRef,
        cond: &mut Option<Id>,
        body: &mut Control,
        _attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        let body = compiled_child(body);
        let mut b = Builder::new(comp, ctx);
        let g = compile_while(&mut b, *port, *cond, body);
        Ok(Action::Change(Control::enable(g)))
    }
}

/// The single group an already-compiled child statement reduces to (`None`
/// for empty control).
fn compiled_child(stmt: &Control) -> Option<Id> {
    match stmt {
        Control::Enable { group, .. } => Some(*group),
        _ => None,
    }
}

/// The groups of a block's already-compiled children, empties dropped.
fn child_groups(stmts: &[Control]) -> Vec<Id> {
    stmts.iter().filter_map(compiled_child).collect()
}

/// `group[go]` as a guard.
#[allow(dead_code)]
fn go(group: Id) -> Guard {
    Guard::Port(PortRef::hole(group, "go"))
}

/// `group[done]` as a guard.
fn done(group: Id) -> Guard {
    Guard::Port(PortRef::hole(group, "done"))
}

/// Does enabling this group require `!done` re-execution protection?
///
/// A group whose `done` comes from a *registered* source (`reg.done`,
/// `mem.done`) keeps signaling for one cycle after its work committed; if
/// its `go` stayed high through that pulse, its assignments would fire
/// again (double-incrementing `i.in = i.out + 1`-style groups). Such groups
/// get a `!child[done]` term in their enable guard.
///
/// Every other kind of group must instead stay enabled through its done
/// cycle:
/// - static groups assert done combinationally on their final cycle (§4.4);
/// - generated compilation groups' done is an FSM-state predicate, and
///   their *reset* assignments fire during the done cycle;
/// - groups completing on a subcomponent's `done` must hold the
///   subcomponent's `go` through that cycle so *its* internal FSMs reset;
/// - groups completing on a pipelined unit's done pulse are safe either way
///   (the `go = !done ? 1` idiom stops the unit restarting).
fn needs_done_protection(b: &mut Builder, group: Id) -> bool {
    let comp = b.component();
    let Some(g) = comp.groups.get(group) else {
        return true;
    };
    // The decision depends only on the done *source*: a `"static"`
    // attribute does not imply a combinational done (frontend-annotated
    // groups signal through registered `reg.done` pulses and still need
    // protection when dynamically scheduled), while the generated
    // compilation groups and constant-done groups never have registered
    // pulses.
    g.done_writes().any(|asgn| match &asgn.src {
        crate::ir::Atom::Port(p) if p.port.as_str() == "done" => p
            .cell_parent()
            .and_then(|c| comp.cells.get(c))
            .is_some_and(|cell| cell.is_register() || cell.is_memory()),
        _ => false,
    })
}

/// The `go` guard for enabling `child` under `base`; see
/// [`needs_done_protection`].
fn enable_guard(b: &mut Builder, child: Id, base: Guard) -> Guard {
    if needs_done_protection(b, child) {
        base.and(done(child).not())
    } else {
        base
    }
}

/// Is `child` a *static island*: a group scheduled by
/// [`StaticTiming`](super::StaticTiming) (or honoring its contract) whose
/// `done` rises combinationally in the very cycle its final writes commit?
fn is_static_island(b: &mut Builder, child: Id) -> bool {
    let is_static = b
        .component()
        .groups
        .get(child)
        .and_then(crate::ir::Group::static_latency)
        .is_some();
    is_static && !needs_done_protection(b, child)
}

/// Wire `child`'s `go` under `base` into compilation group `g` and return
/// the guard the parent FSM must treat as the child's completion.
///
/// Dynamic children hand back their `done` hole directly: their registered
/// done *pulses* one cycle after their final write commits, so the parent
/// consumes the pulse cycle and the next sibling starts with all done
/// signals quiescent. A static island instead asserts `done`
/// combinationally *during* its commit cycle; advancing on it directly
/// would start the next sibling exactly when the island's `reg.done` /
/// `mem.done` pulses land, and a sibling sharing a done source would
/// mistake the stale pulse for its own completion and be skipped entirely.
/// A 1-bit saver (`sd_*`, the sequential analogue of `compile_par`'s
/// `pd_*` savers) registers the island's completion, delaying the parent's
/// view by the one cycle that lets the stale pulse pass.
fn wire_child(b: &mut Builder, g: Id, child: Id, base: Guard) -> Guard {
    if !is_static_island(b, child) {
        let en = enable_guard(b, child, base);
        b.asgn_const_guarded(g, PortRef::hole(child, "go"), 1, 1, en);
        return done(child);
    }
    let sd = b.add_primitive(&format!("sd_{child}"), "std_reg", &[1]);
    b.set_cell_attribute(sd, attr::fsm(), 1);
    let sd_out = Guard::Port(PortRef::cell(sd, "out"));
    // Run the island until its completion is recorded (also protects it
    // from re-executing during the handoff cycle).
    let en = base.clone().and(sd_out.clone().not());
    b.asgn_const_guarded(g, PortRef::hole(child, "go"), 1, 1, en);
    // Record the combinational done on the commit cycle (`!sd` keeps this
    // disjoint from the consume write for constant-done islands)...
    let record = base.clone().and(done(child)).and(sd_out.clone().not());
    b.asgn_const_guarded(g, (sd, "in"), 1, 1, record.clone());
    b.asgn_const_guarded(g, (sd, "write_en"), 1, 1, record);
    // ...and consume it the cycle after, when the parent advances, so the
    // saver is clear if the statement re-executes inside a loop.
    let consume = base.and(sd_out.clone());
    b.asgn_const_guarded(g, (sd, "in"), 0, 1, consume.clone());
    b.asgn_const_guarded(g, (sd, "write_en"), 1, 1, consume);
    sd_out
}

/// Paper Fig. 2c: one state per child plus a final state; each child's
/// `done` advances the FSM; the compilation group is done in the final
/// state, which also resets the FSM.
fn compile_seq(b: &mut Builder, children: &[Id]) -> Id {
    let n = children.len() as u64;
    let width = bits_needed(n);
    let fsm = b.add_primitive("fsm", "std_reg", &[u64::from(width)]);
    b.set_cell_attribute(fsm, attr::fsm(), 1);
    let g = b.add_group("seq");
    b.set_group_attribute(g, attr::generated(), 1);
    let fsm_out = PortRef::cell(fsm, "out");

    for (i, &child) in children.iter().enumerate() {
        let state = Guard::port_eq(fsm_out, i as u64, width);
        // Enable the child while in its state; advance when it completes.
        let finished = wire_child(b, g, child, state.clone());
        let tick = state.and(finished);
        b.asgn_const_guarded(g, (fsm, "in"), i as u64 + 1, width, tick.clone());
        b.asgn_const_guarded(g, (fsm, "write_en"), 1, 1, tick);
    }

    // Final state: signal done and reset the FSM for re-entry.
    let final_state = Guard::port_eq(fsm_out, n, width);
    b.asgn_const_guarded(g, PortRef::hole(g, "done"), 1, 1, final_state.clone());
    b.asgn_const_guarded(g, (fsm, "in"), 0, width, final_state.clone());
    b.asgn_const_guarded(g, (fsm, "write_en"), 1, 1, final_state);
    g
}

/// Paper §4.3 (par): a 1-bit saver register per child records its `done`
/// pulse; the block is done when all savers read 1, which also resets them.
fn compile_par(b: &mut Builder, children: &[Id]) -> Id {
    let g = b.add_group("par");
    b.set_group_attribute(g, attr::generated(), 1);

    let savers: Vec<Id> = children
        .iter()
        .map(|child| {
            let pd = b.add_primitive(&format!("pd_{child}"), "std_reg", &[1]);
            b.set_cell_attribute(pd, attr::fsm(), 1);
            pd
        })
        .collect();

    let all_done = savers
        .iter()
        .map(|pd| Guard::Port(PortRef::cell(*pd, "out")))
        .reduce(Guard::and)
        .expect("par blocks have at least one child");

    for (child, pd) in children.iter().zip(&savers) {
        // Run the child until its saver records completion.
        let not_finished = Guard::Port(PortRef::cell(*pd, "out")).not();
        let en = enable_guard(b, *child, not_finished);
        b.asgn_const_guarded(g, PortRef::hole(*child, "go"), 1, 1, en);
        // Record the done pulse (masked during the reset cycle so the two
        // saver writes cannot conflict when a child's done is level-high).
        let record = done(*child).and(all_done.clone().not());
        b.asgn_const_guarded(g, (*pd, "in"), 1, 1, record.clone());
        b.asgn_const_guarded(g, (*pd, "write_en"), 1, 1, record);
        // Reset for re-entry.
        b.asgn_const_guarded(g, (*pd, "in"), 0, 1, all_done.clone());
        b.asgn_const_guarded(g, (*pd, "write_en"), 1, 1, all_done.clone());
    }

    b.asgn_const_guarded(g, PortRef::hole(g, "done"), 1, 1, all_done);
    g
}

/// Shared structure of `if`/`while` condition evaluation: run the `with`
/// group (when present) until it reports done, then latch the condition
/// port into `cs` and set `cc` (paper §4.3).
struct CondRegs {
    /// 1-bit "condition computed" register.
    cc: Id,
    /// 1-bit "condition saved" register.
    cs: Id,
}

fn build_cond(b: &mut Builder, g: Id, port: PortRef, cond: Option<Id>) -> CondRegs {
    let cc = b.add_primitive("cc", "std_reg", &[1]);
    let cs = b.add_primitive("cs", "std_reg", &[1]);
    b.set_cell_attribute(cc, attr::fsm(), 1);
    b.set_cell_attribute(cs, attr::fsm(), 1);
    let computing = Guard::Port(PortRef::cell(cc, "out")).not();

    // Condition groups are enabled for the whole evaluation phase. They are
    // expected to be combinational or idempotent (both frontends generate
    // combinational condition groups).
    let cond_done = match cond {
        Some(cg) => {
            b.asgn_const_guarded(g, PortRef::hole(cg, "go"), 1, 1, computing.clone());
            done(cg)
        }
        None => Guard::True,
    };

    let latch = computing.and(cond_done);
    b.asgn_const_guarded(g, (cc, "in"), 1, 1, latch.clone());
    b.asgn_const_guarded(g, (cc, "write_en"), 1, 1, latch.clone());
    b.asgn_guarded(g, (cs, "in"), port, latch.clone());
    b.asgn_const_guarded(g, (cs, "write_en"), 1, 1, latch);
    CondRegs { cc, cs }
}

fn compile_if(
    b: &mut Builder,
    port: PortRef,
    cond: Option<Id>,
    tbranch: Option<Id>,
    fbranch: Option<Id>,
) -> Id {
    let g = b.add_group("if");
    b.set_group_attribute(g, attr::generated(), 1);
    let CondRegs { cc, cs } = build_cond(b, g, port, cond);
    let computed = Guard::Port(PortRef::cell(cc, "out"));
    let taken = Guard::Port(PortRef::cell(cs, "out"));

    // done(g) = computed & (taken ? t_done : f_done); empty branches finish
    // immediately.
    let mut done_guard: Option<Guard> = None;
    for (branch, active) in [(tbranch, taken.clone()), (fbranch, taken.clone().not())] {
        let selected = computed.clone().and(active);
        let finished = match branch {
            Some(child) => {
                let complete = wire_child(b, g, child, selected.clone());
                selected.and(complete)
            }
            None => selected,
        };
        done_guard = Some(match done_guard {
            Some(acc) => acc.or(finished),
            None => finished,
        });
    }
    let done_guard = done_guard.expect("both branches contribute a done condition");

    b.asgn_const_guarded(g, PortRef::hole(g, "done"), 1, 1, done_guard.clone());
    // Reset the condition registers when finishing so the statement can
    // re-execute inside loops.
    b.asgn_const_guarded(g, (cc, "in"), 0, 1, done_guard.clone());
    b.asgn_const_guarded(g, (cc, "write_en"), 1, 1, done_guard);
    g
}

fn compile_while(b: &mut Builder, port: PortRef, cond: Option<Id>, body: Option<Id>) -> Id {
    let g = b.add_group("while");
    b.set_group_attribute(g, attr::generated(), 1);
    let CondRegs { cc, cs } = build_cond(b, g, port, cond);
    let computed = Guard::Port(PortRef::cell(cc, "out"));
    let looping = computed.clone().and(Guard::Port(PortRef::cell(cs, "out")));

    // Body iteration: run the body, then clear `cc` to re-evaluate the
    // condition.
    let iter_end = match body {
        Some(child) => {
            let en = enable_guard(b, child, looping.clone());
            b.asgn_const_guarded(g, PortRef::hole(child, "go"), 1, 1, en);
            looping.and(done(child))
        }
        // An empty body completes instantly; the condition is re-evaluated
        // every other cycle.
        None => looping,
    };
    b.asgn_const_guarded(g, (cc, "in"), 0, 1, iter_end.clone());
    b.asgn_const_guarded(g, (cc, "write_en"), 1, 1, iter_end);

    // Exit when the condition was computed false; also reset `cc`.
    let exit = computed.and(Guard::Port(PortRef::cell(cs, "out")).not());
    b.asgn_const_guarded(g, PortRef::hole(g, "done"), 1, 1, exit.clone());
    b.asgn_const_guarded(g, (cc, "in"), 0, 1, exit.clone());
    b.asgn_const_guarded(g, (cc, "write_en"), 1, 1, exit);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{parse_context, validate, Atom};
    use crate::passes::Pass;

    fn compile_src(src: &str) -> crate::ir::Context {
        let mut ctx = parse_context(src).unwrap();
        CompileControl.run(&mut ctx).unwrap();
        super::super::GoInsertion.run(&mut ctx).unwrap();
        ctx
    }

    const FIG2: &str = r#"
        component main() -> () {
          cells { x = std_reg(32); }
          wires {
            group one { x.in = 32'd1; x.write_en = 1'd1; one[done] = x.done; }
            group two { x.in = 32'd2; x.write_en = 1'd1; two[done] = x.done; }
          }
          control { seq { one; two; } }
        }
    "#;

    #[test]
    fn seq_generates_fsm_group() {
        let ctx = compile_src(FIG2);
        let main = ctx.component("main").unwrap();
        // Control reduced to a single enable of the compilation group.
        match &main.control {
            Control::Enable { group, .. } => assert!(group.as_str().starts_with("seq")),
            other => panic!("expected single enable, got {other:?}"),
        }
        // An FSM register was created.
        assert!(main.cells.iter().any(|c| c.attributes.has(attr::fsm())));
        // The compilation group writes the children's go holes.
        let seq_group = main
            .groups
            .iter()
            .find(|g| g.attributes.has(attr::generated()))
            .unwrap();
        let writes_go = |child: &str| {
            seq_group
                .assignments
                .iter()
                .any(|a| a.dst == PortRef::hole(child, "go"))
        };
        assert!(writes_go("one"));
        assert!(writes_go("two"));
        // Result is still structurally valid.
        validate::validate_context(&ctx).unwrap();
    }

    #[test]
    fn seq_resets_fsm_in_final_state() {
        let ctx = compile_src(FIG2);
        let main = ctx.component("main").unwrap();
        let seq_group = main
            .groups
            .iter()
            .find(|g| g.attributes.has(attr::generated()))
            .unwrap();
        // Find the reset write: fsm.in = (fsm.out == 2) ? 0.
        let reset = seq_group.assignments.iter().any(|a| {
            a.dst.port.as_str() == "in" && a.src == Atom::constant(0, 2) && !a.guard.is_true()
        });
        assert!(reset, "seq compilation group must reset its FSM");
    }

    #[test]
    fn par_generates_saver_registers() {
        let ctx = compile_src(
            r#"component main() -> () {
              cells { x = std_reg(32); y = std_reg(32); }
              wires {
                group a { x.in = 32'd1; x.write_en = 1'd1; a[done] = x.done; }
                group b { y.in = 32'd2; y.write_en = 1'd1; b[done] = y.done; }
              }
              control { par { a; b; } }
            }"#,
        );
        let main = ctx.component("main").unwrap();
        let savers = main
            .cells
            .iter()
            .filter(|c| c.attributes.has(attr::fsm()))
            .count();
        assert_eq!(savers, 2, "one done-saver register per par child");
        validate::validate_context(&ctx).unwrap();
    }

    #[test]
    fn if_and_while_generate_cond_registers() {
        let ctx = compile_src(
            r#"component main() -> () {
              cells { lt = std_lt(8); r = std_reg(8); }
              wires {
                group cond { lt.left = r.out; lt.right = 8'd5; cond[done] = 1'd1; }
                group body { r.in = 8'd1; r.write_en = 1'd1; body[done] = r.done; }
                group t { r.in = 8'd2; r.write_en = 1'd1; t[done] = r.done; }
              }
              control { seq { while lt.out with cond { body; } if lt.out with cond { t; } } }
            }"#,
        );
        let main = ctx.component("main").unwrap();
        // while + if each allocate cc/cs.
        let cc_count = main
            .cells
            .names()
            .filter(|n| n.as_str().starts_with("cc"))
            .count();
        assert_eq!(cc_count, 2);
        validate::validate_context(&ctx).unwrap();
    }

    #[test]
    fn nested_control_compiles_bottom_up() {
        let ctx = compile_src(
            r#"component main() -> () {
              cells { x = std_reg(8); y = std_reg(8); z = std_reg(8); }
              wires {
                group a { x.in = 8'd1; x.write_en = 1'd1; a[done] = x.done; }
                group b { y.in = 8'd2; y.write_en = 1'd1; b[done] = y.done; }
                group c { z.in = 8'd3; z.write_en = 1'd1; c[done] = z.done; }
              }
              control { par { seq { a; b; } c; } }
            }"#,
        );
        let main = ctx.component("main").unwrap();
        // Inner seq and outer par each produced a compilation group.
        let generated = main
            .groups
            .iter()
            .filter(|g| g.attributes.has(attr::generated()))
            .count();
        assert_eq!(generated, 2);
        match &main.control {
            Control::Enable { group, .. } => assert!(group.as_str().starts_with("par")),
            other => panic!("expected single enable, got {other:?}"),
        }
    }

    #[test]
    fn empty_control_stays_empty() {
        let ctx = compile_src(r#"component main() -> () { cells {} wires {} control {} }"#);
        assert!(ctx.component("main").unwrap().control.is_empty());
    }

    /// Regression test: a *static island* (combinational done, asserted in
    /// its commit cycle) under a dynamic seq must have its completion
    /// registered through an `sd_*` saver. Advancing on the island's raw
    /// done would start the next sibling exactly when the island's
    /// registered write pulses (`mem.done`/`reg.done`) land; a sibling
    /// whose done comes from the same source would then treat the stale
    /// pulse as its own completion and be skipped without ever running
    /// (observed as the static-timing differential divergence).
    #[test]
    fn static_island_completion_is_registered() {
        let mut ctx = parse_context(
            r#"component main() -> () {
              cells { @external mem = std_mem_d1(8, 2, 1); }
              wires {
                group island<"static"=1> {
                  mem.addr0 = 1'd0; mem.write_data = 8'd7; mem.write_en = 1'd1;
                  island[done] = 1'd1;
                }
                group wr {
                  mem.addr0 = 1'd1; mem.write_data = 8'd42; mem.write_en = 1'd1;
                  wr[done] = mem.done;
                }
              }
              control { seq { island; wr; } }
            }"#,
        )
        .unwrap();
        CompileControl.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        assert!(
            main.cells.names().any(|n| n.as_str() == "sd_island"),
            "a completion saver must be allocated for the static island"
        );
        let seq_group = main
            .groups
            .iter()
            .find(|g| g.attributes.has(attr::generated()))
            .unwrap();
        let island_go = seq_group
            .assignments
            .iter()
            .find(|a| a.dst == PortRef::hole("island", "go"))
            .expect("island is enabled");
        assert!(
            format!("{}", island_go.guard).contains("!sd_island.out"),
            "island must not re-execute during the handoff cycle: {}",
            island_go.guard
        );
        // Every FSM advance out of the island's state must consult the
        // saver, not the island's same-cycle combinational done.
        let advance = seq_group
            .assignments
            .iter()
            .filter(|a| {
                a.dst.cell_parent().is_some_and(|c| c.as_str() == "fsm")
                    && a.dst.port.as_str() == "in"
                    && a.src == Atom::constant(1, 2)
            })
            .collect::<Vec<_>>();
        assert!(!advance.is_empty(), "seq FSM advances past the island");
        for asgn in advance {
            assert!(
                format!("{}", asgn.guard).contains("sd_island.out"),
                "advance must wait for the registered completion: {}",
                asgn.guard
            );
        }
    }

    #[test]
    fn static_children_skip_done_protection() {
        let mut ctx = parse_context(
            r#"component main() -> () {
              cells { x = std_reg(8); }
              wires {
                group a<"static"=1> { x.in = 8'd1; x.write_en = 1'd1; a[done] = 1'd1; }
                group b { x.in = 8'd2; x.write_en = 1'd1; b[done] = x.done; }
              }
              control { seq { a; b; } }
            }"#,
        )
        .unwrap();
        CompileControl.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        let seq_group = main
            .groups
            .iter()
            .find(|g| g.attributes.has(attr::generated()))
            .unwrap();
        let go_guard = |child: &str| {
            seq_group
                .assignments
                .iter()
                .find(|a| a.dst == PortRef::hole(child, "go"))
                .unwrap()
                .guard
                .clone()
        };
        // Static child: plain state guard. Dynamic child: state & !done.
        let a_guard = format!("{}", go_guard("a"));
        let b_guard = format!("{}", go_guard("b"));
        assert!(
            !a_guard.contains("a[done]"),
            "static child guard: {a_guard}"
        );
        assert!(
            b_guard.contains("!b[done]"),
            "dynamic child guard: {b_guard}"
        );
    }
}
