//! Control-program normalization.

use super::pass_ctx::PassCtx;
use super::visitor::{Action, Visitor};
use crate::errors::CalyxResult;
use crate::ir::{Attributes, Component, Control};

/// Flattens directly nested `seq`-in-`seq` and `par`-in-`par`, removes
/// [`Control::Empty`] children, and unwraps single-statement blocks.
///
/// Frontends generate deeply nested control; normalizing it shrinks the
/// FSMs `CompileControl` emits and makes the conflict analyses (§5.1–5.2)
/// more precise.
///
/// The pass is a bottom-up [`Visitor`]: by the time a block's post hook
/// runs, its children are already collapsed, so flattening is a single
/// non-recursive splice.
#[derive(Debug, Clone, Copy, Default)]
pub struct CollapseControl;

impl Visitor for CollapseControl {
    fn name(&self) -> &'static str {
        "collapse-control"
    }

    fn description(&self) -> &'static str {
        "flatten nested seq/par blocks and drop empty statements"
    }

    fn finish_seq(
        &mut self,
        stmts: &mut Vec<Control>,
        attributes: &mut Attributes,
        _comp: &mut Component,
        _ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        // Returning `Change` marks the component dirty for the analysis
        // cache, so already-flat blocks answer `Continue` instead.
        if !needs_collapse(stmts, attributes, BlockKind::Seq) {
            return Ok(Action::Continue);
        }
        Ok(Action::Change(collapse_block(
            std::mem::take(stmts),
            std::mem::take(attributes),
            BlockKind::Seq,
        )))
    }

    fn finish_par(
        &mut self,
        stmts: &mut Vec<Control>,
        attributes: &mut Attributes,
        _comp: &mut Component,
        _ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        if !needs_collapse(stmts, attributes, BlockKind::Par) {
            return Ok(Action::Continue);
        }
        Ok(Action::Change(collapse_block(
            std::mem::take(stmts),
            std::mem::take(attributes),
            BlockKind::Par,
        )))
    }
}

/// Would [`collapse_block`] produce anything different from the block
/// itself? (Children are already collapsed when the post hook runs.)
fn needs_collapse(stmts: &[Control], attributes: &Attributes, kind: BlockKind) -> bool {
    if stmts.is_empty() || (stmts.len() == 1 && attributes.is_empty()) {
        return true; // becomes Empty / is unwrapped
    }
    stmts.iter().any(|s| {
        matches!(
            (kind, s),
            (_, Control::Empty)
                | (BlockKind::Seq, Control::Seq { .. })
                | (BlockKind::Par, Control::Par { .. })
        )
    })
}

#[derive(Clone, Copy, PartialEq)]
enum BlockKind {
    Seq,
    Par,
}

/// Flatten one block whose children are already collapsed.
fn collapse_block(stmts: Vec<Control>, attributes: Attributes, kind: BlockKind) -> Control {
    let mut flat = Vec::new();
    for stmt in stmts {
        match (kind, stmt) {
            (_, Control::Empty) => {}
            // A nested block of the same kind imposes no constraint the
            // outer block does not already impose, so its children can be
            // spliced in directly.
            (BlockKind::Seq, Control::Seq { stmts: inner, .. }) => flat.extend(inner),
            (BlockKind::Par, Control::Par { stmts: inner, .. }) => flat.extend(inner),
            (_, other) => flat.push(other),
        }
    }
    match flat.len() {
        0 => Control::Empty,
        // Unwrapping single-child blocks is only safe when the block carries
        // no attributes a later pass might consume.
        1 if attributes.is_empty() => flat.pop().expect("length checked"),
        _ => match kind {
            BlockKind::Seq => Control::Seq {
                stmts: flat,
                attributes,
            },
            BlockKind::Par => Control::Par {
                stmts: flat,
                attributes,
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Context, PortRef};
    use crate::passes::Pass;

    /// Run the pass over a bare control tree.
    fn collapse(control: Control) -> Control {
        let mut ctx = Context::new();
        let mut comp = ctx.new_component("main");
        comp.control = control;
        ctx.add_component(comp);
        CollapseControl.run(&mut ctx).unwrap();
        std::mem::take(&mut ctx.component_mut("main").unwrap().control)
    }

    #[test]
    fn flattens_nested_seq() {
        let c = Control::seq(vec![
            Control::seq(vec![Control::enable("a"), Control::enable("b")]),
            Control::Empty,
            Control::enable("c"),
        ]);
        let collapsed = collapse(c);
        match collapsed {
            Control::Seq { stmts, .. } => {
                assert_eq!(stmts.len(), 3);
                assert!(stmts.iter().all(|s| matches!(s, Control::Enable { .. })));
            }
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn flattens_nested_par() {
        let c = Control::par(vec![
            Control::par(vec![Control::enable("a")]),
            Control::enable("b"),
        ]);
        match collapse(c) {
            Control::Par { stmts, .. } => assert_eq!(stmts.len(), 2),
            other => panic!("expected par, got {other:?}"),
        }
    }

    #[test]
    fn does_not_flatten_par_in_seq() {
        let c = Control::seq(vec![
            Control::par(vec![Control::enable("a"), Control::enable("b")]),
            Control::enable("c"),
        ]);
        match collapse(c) {
            Control::Seq { stmts, .. } => {
                assert!(matches!(stmts[0], Control::Par { .. }));
            }
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn unwraps_singletons_and_empties() {
        assert_eq!(
            collapse(Control::seq(vec![Control::enable("a")])),
            Control::enable("a")
        );
        assert_eq!(collapse(Control::seq(vec![])), Control::Empty);
        assert_eq!(
            collapse(Control::par(vec![Control::Empty, Control::Empty])),
            Control::Empty
        );
    }

    #[test]
    fn keeps_attributed_singleton_blocks() {
        let mut c = Control::seq(vec![Control::enable("a")]);
        c.attributes_mut()
            .unwrap()
            .insert(crate::ir::attr::static_(), 3);
        assert!(matches!(collapse(c), Control::Seq { .. }));
    }

    #[test]
    fn recurses_into_branches() {
        let c = Control::if_(
            PortRef::cell("lt", "out"),
            None,
            Control::seq(vec![Control::seq(vec![Control::enable("a")])]),
            Control::Empty,
        );
        match collapse(c) {
            Control::If { tbranch, .. } => assert_eq!(*tbranch, Control::enable("a")),
            other => panic!("expected if, got {other:?}"),
        }
    }
}
