//! The per-pass context handed to every visitor hook.

use crate::analysis::{Analysis, AnalysisCache};
use crate::ir::{Component, Context, Id};
use std::rc::Rc;

/// What a visitor hook sees besides the component under edit: the read-only
/// [`Context`] view, the pipeline-wide [`AnalysisCache`], and the dirty
/// flag that drives cache invalidation.
///
/// `PassCtx` derefs to [`Context`], so library and sibling-component
/// lookups (`ctx.lib`, `ctx.components`) and APIs taking `&Context`
/// (e.g. [`Builder::new`](crate::ir::Builder::new)) work unchanged.
///
/// # Queries
///
/// [`PassCtx::get`] pulls an [`Analysis`] result for a component through
/// the cache: a repeated query (by this pass or an earlier one, if nothing
/// invalidated it) is answered from the memo table. The pipeline's
/// [`PassManager`](super::PassManager) keeps one cache alive across all
/// passes and reports per-pass hit/miss statistics.
///
/// # The dirty signal
///
/// The cache cannot see mutations, so passes report them (the
/// [invalidation contract](crate::analysis::cache)):
///
/// - Returning [`Action::Change`](super::Action::Change) from any hook
///   marks the component dirty automatically.
/// - Any other mutation through `&mut Component` — editing wires, removing
///   groups or cells, rewriting guards — must call [`PassCtx::set_dirty`]
///   (from whichever hook performs or detects the mutation, including
///   `finish_component`).
/// - [`PassCtx::invalidate`] drops a single analysis instead, when a pass
///   knows precisely which fact its mutation staled (e.g. resource
///   sharing renames only combinational cells, staling `PortUses` but
///   none of the register or control analyses).
///
/// Invalidation is *immediate*: the signal drops the component's cached
/// entries (and bumps its generation) right away, so a query later in the
/// same visit recomputes against the mutated component instead of reading
/// stale facts. Clean visits leave the cache warm for the next pass.
pub struct PassCtx<'a> {
    ctx: &'a Context,
    cache: &'a mut AnalysisCache,
    /// The component this visit edits (its entry in `ctx` is an inert
    /// placeholder for the duration).
    comp: Id,
    dirty: bool,
}

impl<'a> PassCtx<'a> {
    /// Bundle a context view and cache for one visit of component `comp`.
    pub(super) fn new(ctx: &'a Context, cache: &'a mut AnalysisCache, comp: Id) -> Self {
        PassCtx {
            ctx,
            cache,
            comp,
            dirty: false,
        }
    }

    /// Query analysis `A` for `comp` (cached per component generation).
    pub fn get<A: Analysis>(&mut self, comp: &Component) -> Rc<A::Output> {
        self.cache.get::<A>(comp)
    }

    /// Report that the component under visit was mutated: its cached
    /// analyses are dropped and its generation bumped, immediately.
    pub fn set_dirty(&mut self) {
        self.dirty = true;
        self.cache.invalidate(self.comp);
    }

    /// Has a mutation been reported during this visit?
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Drop analysis `A` for component `comp` — and, cascading, every
    /// cached analysis computed from it — leaving unrelated results and
    /// the component generation untouched.
    pub fn invalidate<A: Analysis>(&mut self, comp: Id) {
        self.cache.invalidate_analysis::<A>(comp);
    }

    /// The read-only context view (also available through deref).
    pub fn context(&self) -> &Context {
        self.ctx
    }

    /// Direct access to the underlying cache (generation queries, stats).
    pub fn cache(&mut self) -> &mut AnalysisCache {
        self.cache
    }
}

impl std::ops::Deref for PassCtx<'_> {
    type Target = Context;

    fn deref(&self) -> &Context {
        self.ctx
    }
}
