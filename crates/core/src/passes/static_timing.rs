//! Latency-sensitive compilation — the paper's `Sensitive` pass (§4.4).
//!
//! When every group nested under a control statement carries a `"static"`
//! latency attribute, the statement can be realized with a *counter* FSM
//! that enables each child for exactly its declared window and ignores
//! `done` handshakes entirely, eliminating the latency-insensitive
//! interface's extra cycles and hardware. The pass is best-effort: any
//! statement with a dynamic child is left for
//! [`CompileControl`](super::CompileControl) — mixing the two styles is the
//! paper's headline compilation feature.
//!
//! ## Static group contract
//!
//! A group with `"static" = L`:
//! - performs its work in exactly `L` cycles once its `go` is held high,
//! - asserts `done` *combinationally during cycle `L-1`* (for `L == 1`,
//!   `done` is constant-true while enabled),
//! - resets any internal counter on its final cycle so it can re-execute.
//!
//! Dynamic parents compiled by `CompileControl` understand this contract
//! (they omit the `!done` re-execution protection for static children), so
//! static islands compose with dynamic surroundings.

use super::pass_ctx::PassCtx;
use super::visitor::{Action, Visitor};
use crate::errors::CalyxResult;
use crate::ir::{
    attr, Atom, Attributes, Builder, Component, Context, Control, Group, Guard, Id, PortRef,
};
use crate::utils::bits_needed;

/// Opportunistically compile control with latency-sensitive counter FSMs.
///
/// A bottom-up [`Visitor`]: the post hooks see already-compiled children,
/// so a statement whose children all became static enables can itself fold
/// into a single counter-FSM group.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticTiming;

impl Visitor for StaticTiming {
    fn name(&self) -> &'static str {
        "static-timing"
    }

    fn description(&self) -> &'static str {
        "compile statically-timed control with counter FSMs (the paper's Sensitive pass)"
    }

    fn enable(
        &mut self,
        group: &mut Id,
        attributes: &mut Attributes,
        comp: &mut Component,
        _ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        // Mirror the group's (possibly inferred) latency onto the enable so
        // parents and later passes can read it off the control tree.
        if let Some(l) = comp.groups.get(*group).and_then(Group::static_latency) {
            attributes.insert(attr::static_(), l);
        }
        Ok(Action::Continue)
    }

    fn finish_seq(
        &mut self,
        stmts: &mut Vec<Control>,
        _attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        Ok(compile_block(comp, ctx, stmts, BlockKind::Seq))
    }

    fn finish_par(
        &mut self,
        stmts: &mut Vec<Control>,
        _attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        Ok(compile_block(comp, ctx, stmts, BlockKind::Par))
    }

    #[allow(clippy::too_many_arguments)]
    fn finish_if(
        &mut self,
        port: &mut PortRef,
        cond: &mut Option<Id>,
        tbranch: &mut Control,
        fbranch: &mut Control,
        _attributes: &mut Attributes,
        comp: &mut Component,
        ctx: &mut PassCtx,
    ) -> CalyxResult<Action> {
        let cond_lat = cond_latency(comp, cond);
        let t = as_static_enable(comp, tbranch);
        let f = as_static_enable(comp, fbranch);
        match (cond_lat, t, f) {
            // Static `if` runs for the *worst-case* branch latency, so it
            // only pays off when the branches are balanced; predicated
            // triangular loops (a frequent PolyBench shape, with an empty
            // else) would otherwise spend the full taken-branch time on
            // every untaken iteration. Unbalanced ifs keep the dynamic
            // FSM, which finishes an untaken branch in two cycles.
            (Some(lc), Some(t), Some(f)) if t.1 == f.1 => {
                let mut b = Builder::new(comp, ctx);
                let (group, total) = build_static_if(&mut b, *port, *cond, lc, t, f);
                Ok(Action::Change(static_enable(group, total)))
            }
            _ => Ok(Action::Continue),
        }
    }

    fn finish_component(&mut self, comp: &mut Component, _ctx: &mut PassCtx) -> CalyxResult<()> {
        // A fully static component gets a component-level latency so
        // instantiating groups can be inferred in turn (§6.1's systolic
        // arrays rely on this composition).
        if let Control::Enable { group, .. } = &comp.control {
            if let Some(l) = comp.groups.get(*group).and_then(Group::static_latency) {
                comp.attributes.insert(attr::static_(), l);
            }
        }
        Ok(())
    }
}

#[derive(Clone, Copy)]
enum BlockKind {
    Seq,
    Par,
}

/// Shared post hook for `seq`/`par`: when every (already-compiled) child is
/// a static activity and at least one is live, fold the block into a single
/// counter-FSM group.
fn compile_block(
    comp: &mut Component,
    ctx: &Context,
    stmts: &[Control],
    kind: BlockKind,
) -> Action {
    let children: Option<Vec<(Option<Id>, u64)>> =
        stmts.iter().map(|s| as_static_enable(comp, s)).collect();
    match children {
        Some(children) if children.iter().any(|(g, _)| g.is_some()) => {
            let live: Vec<(Id, u64)> = children
                .into_iter()
                .filter_map(|(g, l)| g.map(|g| (g, l)))
                .collect();
            if live.len() == 1 {
                return Action::Change(static_enable(live[0].0, live[0].1));
            }
            let mut b = Builder::new(comp, ctx);
            let (group, total) = match kind {
                BlockKind::Seq => build_static_seq(&mut b, &live),
                BlockKind::Par => build_static_par(&mut b, &live),
            };
            Action::Change(static_enable(group, total))
        }
        _ => Action::Continue,
    }
}

/// Latency of a control statement when every nested group is static.
/// `while` is never static (data-dependent trip count).
pub(crate) fn stmt_latency(comp: &Component, stmt: &Control) -> Option<u64> {
    match stmt {
        Control::Empty => Some(0),
        Control::Enable { group, .. } => comp
            .groups
            .get(*group)
            .and_then(Group::static_latency)
            .filter(|l| *l > 0),
        Control::Seq { stmts, .. } => stmts
            .iter()
            .map(|s| stmt_latency(comp, s))
            .sum::<Option<u64>>(),
        Control::Par { stmts, .. } => stmts
            .iter()
            .map(|s| stmt_latency(comp, s))
            .collect::<Option<Vec<_>>>()
            .map(|ls| ls.into_iter().max().unwrap_or(0)),
        Control::If {
            cond,
            tbranch,
            fbranch,
            ..
        } => {
            let lc = cond_latency(comp, cond)?;
            let lt = stmt_latency(comp, tbranch)?;
            let lf = stmt_latency(comp, fbranch)?;
            // Mirrors the transformation: only balanced ifs compile
            // statically (see `transform`), so only they have a latency.
            (lt == lf).then_some(lc + lt)
        }
        Control::While { .. } => None,
    }
}

/// Latency of the condition-evaluation phase of an `if`.
///
/// Combinational condition groups (constant-true `done`) and absent `with`
/// groups still need one cycle to latch the condition value.
pub(crate) fn cond_latency(comp: &Component, cond: &Option<Id>) -> Option<u64> {
    match cond {
        None => Some(1),
        Some(cg) => {
            let group = comp.groups.get(*cg)?;
            if let Some(l) = group.static_latency() {
                if l > 0 {
                    return Some(l);
                }
            }
            if is_comb_group(group) {
                Some(1)
            } else {
                None
            }
        }
    }
}

/// A group whose `done` is the constant 1 — it computes combinationally.
pub(crate) fn is_comb_group(group: &Group) -> bool {
    group
        .done_writes()
        .any(|a| a.guard.is_true() && matches!(a.src, Atom::Const { val: 1, .. }))
}

/// A statement that is already a single static activity: `Empty` (latency
/// 0) or an enable of a static group.
fn as_static_enable(comp: &Component, stmt: &Control) -> Option<(Option<Id>, u64)> {
    match stmt {
        Control::Empty => Some((None, 0)),
        Control::Enable { group, .. } => {
            let l = comp.groups.get(*group)?.static_latency()?;
            (l > 0).then_some((Some(*group), l))
        }
        _ => None,
    }
}

fn static_enable(group: Id, latency: u64) -> Control {
    let mut e = Control::enable(group);
    if let Some(a) = e.attributes_mut() {
        a.insert(attr::static_(), latency);
    }
    e
}

/// `lo <= fsm < hi` within a schedule of `total` cycles, with the redundant
/// bound checks dropped.
fn window_guard(fsm_out: PortRef, lo: u64, hi: u64, total: u64, width: u32) -> Guard {
    let lower = (lo > 0).then(|| Guard::port_geq(fsm_out, lo, width));
    let upper = (hi < total).then(|| Guard::port_lt(fsm_out, hi, width));
    match (lower, upper) {
        (Some(l), Some(u)) => l.and(u),
        (Some(l), None) => l,
        (None, Some(u)) => u,
        (None, None) => Guard::True,
    }
}

/// Shared counter scaffolding: an incrementing FSM that counts `0..total`,
/// resets on its last cycle, and drives the group's combinational `done`.
/// Returns the FSM output port (or `None` when `total == 1` and no counter
/// is needed).
fn build_counter(b: &mut Builder, g: Id, total: u64) -> Option<(PortRef, u32)> {
    if total <= 1 {
        b.asgn_const(g, PortRef::hole(g, "done"), 1, 1);
        return None;
    }
    let width = bits_needed(total - 1);
    let fsm = b.add_primitive("fsm", "std_reg", &[u64::from(width)]);
    b.set_cell_attribute(fsm, attr::fsm(), 1);
    let add = b.add_primitive("incr", "std_add", &[u64::from(width)]);
    b.set_cell_attribute(add, attr::fsm(), 1);
    let fsm_out = PortRef::cell(fsm, "out");

    b.asgn(g, (add, "left"), fsm_out);
    b.asgn_const(g, (add, "right"), 1, width);
    let not_last = Guard::port_lt(fsm_out, total - 1, width);
    b.asgn_guarded(g, (fsm, "in"), (add, "out"), not_last.clone());
    b.asgn_const_guarded(g, (fsm, "write_en"), 1, 1, not_last);
    let last = Guard::port_eq(fsm_out, total - 1, width);
    b.asgn_const_guarded(g, (fsm, "in"), 0, width, last.clone());
    b.asgn_const_guarded(g, (fsm, "write_en"), 1, 1, last.clone());
    b.asgn_const_guarded(g, PortRef::hole(g, "done"), 1, 1, last);
    Some((fsm_out, width))
}

/// The paper's `static_seq` example: children enabled back-to-back in
/// `[offset, offset + latency)` windows.
fn build_static_seq(b: &mut Builder, children: &[(Id, u64)]) -> (Id, u64) {
    let total: u64 = children.iter().map(|(_, l)| l).sum();
    let g = b.add_static_group("static_seq", total);
    b.set_group_attribute(g, attr::generated(), 1);
    let counter = build_counter(b, g, total);
    let mut offset = 0;
    for &(child, latency) in children {
        let guard = match counter {
            Some((fsm_out, width)) => window_guard(fsm_out, offset, offset + latency, total, width),
            None => Guard::True,
        };
        b.asgn_const_guarded(g, PortRef::hole(child, "go"), 1, 1, guard);
        offset += latency;
    }
    (g, total)
}

/// Static `par`: all children start at cycle 0; each runs for its own
/// latency; the block takes the maximum.
fn build_static_par(b: &mut Builder, children: &[(Id, u64)]) -> (Id, u64) {
    let total: u64 = children.iter().map(|(_, l)| *l).max().unwrap_or(1);
    let g = b.add_static_group("static_par", total);
    b.set_group_attribute(g, attr::generated(), 1);
    let counter = build_counter(b, g, total);
    for &(child, latency) in children {
        let guard = match counter {
            Some((fsm_out, width)) => window_guard(fsm_out, 0, latency, total, width),
            None => Guard::True,
        };
        b.asgn_const_guarded(g, PortRef::hole(child, "go"), 1, 1, guard);
    }
    (g, total)
}

/// Static `if`: evaluate the condition for `cond_lat` cycles, latch the
/// condition port into `cs` on the last condition cycle, then run the
/// selected branch; the whole statement takes the worst-case branch time.
fn build_static_if(
    b: &mut Builder,
    port: PortRef,
    cond: Option<Id>,
    cond_lat: u64,
    tbranch: (Option<Id>, u64),
    fbranch: (Option<Id>, u64),
) -> (Id, u64) {
    let branch_lat = tbranch.1.max(fbranch.1);
    let total = cond_lat + branch_lat;
    let g = b.add_static_group("static_if", total);
    b.set_group_attribute(g, attr::generated(), 1);
    let counter = build_counter(b, g, total);

    let window = |counter: &Option<(PortRef, u32)>, lo: u64, hi: u64| match counter {
        Some((fsm_out, width)) => window_guard(*fsm_out, lo, hi, total, *width),
        None => Guard::True,
    };

    if let Some(cg) = cond {
        b.asgn_const_guarded(
            g,
            PortRef::hole(cg, "go"),
            1,
            1,
            window(&counter, 0, cond_lat),
        );
    }

    if branch_lat > 0 {
        let cs = b.add_primitive("cs", "std_reg", &[1]);
        b.set_cell_attribute(cs, attr::fsm(), 1);
        // Latch the condition on the final condition cycle.
        let latch = match &counter {
            Some((fsm_out, width)) => Guard::port_eq(*fsm_out, cond_lat - 1, *width),
            None => Guard::True,
        };
        b.asgn_guarded(g, (cs, "in"), port, latch.clone());
        b.asgn_const_guarded(g, (cs, "write_en"), 1, 1, latch);
        let taken = Guard::Port(PortRef::cell(cs, "out"));
        for (branch, active) in [(tbranch, taken.clone()), (fbranch, taken.not())] {
            let (Some(child), latency) = branch else {
                continue;
            };
            let guard = window(&counter, cond_lat, cond_lat + latency).and(active);
            b.asgn_const_guarded(g, PortRef::hole(child, "go"), 1, 1, guard);
        }
    }
    (g, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;
    use crate::passes::Pass;

    /// The paper's §4.4 example: two static groups in sequence compile to a
    /// single static group of latency 3 with window guards.
    const PAPER_SEQ: &str = r#"
        component main() -> () {
          cells { x = std_reg(8); y = std_reg(8); }
          wires {
            group one<"static"=1> { x.in = 8'd1; x.write_en = 1'd1; one[done] = 1'd1; }
            group two<"static"=2> { y.in = 8'd2; y.write_en = 1'd1; two[done] = 1'd1; }
          }
          control { seq { one; two; } }
        }
    "#;

    #[test]
    fn compiles_static_seq_with_counter() {
        let mut ctx = parse_context(PAPER_SEQ).unwrap();
        StaticTiming.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        // Control is a single enable of a static group with latency 3.
        match &main.control {
            Control::Enable { group, attributes } => {
                assert!(group.as_str().starts_with("static_seq"));
                assert_eq!(attributes.get(attr::static_()), Some(3));
            }
            other => panic!("expected static enable, got {other:?}"),
        }
        // Window guards like the paper's `fsm.out >= 1 && fsm.out < 3`.
        let sg = main
            .groups
            .iter()
            .find(|g| g.name.as_str().starts_with("static_seq"))
            .unwrap();
        let text = format!("{sg}");
        assert!(text.contains("one[go]"), "{text}");
        assert!(text.contains("two[go]"), "{text}");
        assert!(text.contains("fsm.out >= 2'd1"), "{text}");
        // Component latency is recorded for cross-component inference.
        assert_eq!(main.static_latency(), Some(3));
    }

    #[test]
    fn static_par_takes_max_latency() {
        let mut ctx = parse_context(
            r#"component main() -> () {
              cells { x = std_reg(8); y = std_reg(8); }
              wires {
                group a<"static"=1> { x.in = 8'd1; x.write_en = 1'd1; a[done] = 1'd1; }
                group c<"static"=4> { y.in = 8'd3; y.write_en = 1'd1; c[done] = 1'd1; }
              }
              control { par { a; c; } }
            }"#,
        )
        .unwrap();
        StaticTiming.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        assert_eq!(main.control.static_latency(), Some(4));
    }

    #[test]
    fn dynamic_children_fall_back() {
        let mut ctx = parse_context(
            r#"component main() -> () {
              cells { x = std_reg(8); y = std_reg(8); }
              wires {
                group s<"static"=1> { x.in = 8'd1; x.write_en = 1'd1; s[done] = 1'd1; }
                group d { y.in = 8'd2; y.write_en = 1'd1; d[done] = y.done; }
              }
              control { seq { s; d; } }
            }"#,
        )
        .unwrap();
        StaticTiming.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        // Mixed latency: the seq stays dynamic.
        assert!(matches!(main.control, Control::Seq { .. }));
        assert!(main.static_latency().is_none());
    }

    #[test]
    fn while_bodies_are_compiled_but_loop_stays_dynamic() {
        let mut ctx = parse_context(
            r#"component main() -> () {
              cells { x = std_reg(8); y = std_reg(8); lt = std_lt(8); }
              wires {
                group cond { lt.left = x.out; lt.right = 8'd3; cond[done] = 1'd1; }
                group a<"static"=1> { x.in = 8'd1; x.write_en = 1'd1; a[done] = 1'd1; }
                group c<"static"=1> { y.in = 8'd2; y.write_en = 1'd1; c[done] = 1'd1; }
              }
              control { while lt.out with cond { seq { a; c; } } }
            }"#,
        )
        .unwrap();
        StaticTiming.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        match &main.control {
            Control::While { body, .. } => match body.as_ref() {
                Control::Enable { group, attributes } => {
                    assert!(group.as_str().starts_with("static_seq"));
                    assert_eq!(attributes.get(attr::static_()), Some(2));
                }
                other => panic!("body should be a static enable, got {other:?}"),
            },
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn static_if_latches_condition() {
        let mut ctx = parse_context(
            r#"component main() -> () {
              cells { x = std_reg(8); lt = std_lt(8); }
              wires {
                group cond { lt.left = x.out; lt.right = 8'd3; cond[done] = 1'd1; }
                group t<"static"=2> { x.in = 8'd1; x.write_en = 1'd1; t[done] = 1'd1; }
                group f<"static"=2> { x.in = 8'd2; x.write_en = 1'd1; f[done] = 1'd1; }
              }
              control { if lt.out with cond { t; } else { f; } }
            }"#,
        )
        .unwrap();
        StaticTiming.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        // 1 (comb cond latch) + 2 (balanced branches).
        assert_eq!(main.control.static_latency(), Some(3));
        let cs = main
            .cells
            .iter()
            .find(|c| c.name.as_str().starts_with("cs"));
        assert!(cs.is_some(), "condition-save register allocated");
    }

    #[test]
    fn unbalanced_if_stays_dynamic() {
        let mut ctx = parse_context(
            r#"component main() -> () {
              cells { x = std_reg(8); lt = std_lt(8); }
              wires {
                group cond { lt.left = x.out; lt.right = 8'd3; cond[done] = 1'd1; }
                group t<"static"=5> { x.in = 8'd1; x.write_en = 1'd1; t[done] = 1'd1; }
              }
              control { if lt.out with cond { t; } }
            }"#,
        )
        .unwrap();
        StaticTiming.run(&mut ctx).unwrap();
        let main = ctx.component("main").unwrap();
        // A predicated (empty-else) if would waste the full taken-branch
        // latency on untaken executions; it keeps the dynamic FSM.
        assert!(matches!(main.control, Control::If { .. }));
        assert!(main.static_latency().is_none());
    }

    #[test]
    fn stmt_latency_computes_compositionally() {
        let ctx = parse_context(PAPER_SEQ).unwrap();
        let comp = ctx.component("main").unwrap();
        assert_eq!(stmt_latency(comp, &comp.control), Some(3));
        assert_eq!(stmt_latency(comp, &Control::Empty), Some(0));
        let w = Control::while_(PortRef::cell("x", "out"), None, Control::enable("one"));
        assert_eq!(stmt_latency(comp, &w), None);
    }
}
