//! Conservative register read/write sets per group (paper §5.2).
//!
//! The live-range analysis needs, for every group, which registers it *may
//! read* and which it *must write*. Groups can contain arbitrary logic, so
//! both sets are conservative over-approximations: reads include any
//! appearance of a register output in a source or guard; must-writes
//! require an unconditional data write *and* an unconditional `write_en`,
//! since only then is the old value certainly dead after the group runs.

use super::cache::{Analysis, AnalysisCache};
use crate::ir::{Atom, Component, Group, Id, PortParent, PortRef};
use std::collections::{BTreeMap, BTreeSet};

/// Read/write sets for every group in a component.
#[derive(Debug, Clone, Default)]
pub struct ReadWriteSets {
    reads: BTreeMap<Id, BTreeSet<Id>>,
    must_writes: BTreeMap<Id, BTreeSet<Id>>,
    may_writes: BTreeMap<Id, BTreeSet<Id>>,
}

impl Analysis for ReadWriteSets {
    type Output = ReadWriteSets;
    const NAME: &'static str = "read-write-sets";

    fn compute(comp: &Component, _cache: &mut AnalysisCache) -> ReadWriteSets {
        ReadWriteSets::analyze(comp)
    }
}

impl ReadWriteSets {
    /// Analyze all groups of `comp`, considering only `std_reg` cells.
    pub fn analyze(comp: &Component) -> Self {
        let registers: BTreeSet<Id> = comp
            .cells
            .iter()
            .filter(|c| c.is_register())
            .map(|c| c.name)
            .collect();
        let mut rw = ReadWriteSets::default();
        for group in comp.groups.iter() {
            let (reads, must, may) = analyze_group(group, &registers);
            rw.reads.insert(group.name, reads);
            rw.must_writes.insert(group.name, must);
            rw.may_writes.insert(group.name, may);
        }
        rw
    }

    /// Registers `group` may read.
    pub fn reads(&self, group: Id) -> &BTreeSet<Id> {
        static EMPTY: std::sync::OnceLock<BTreeSet<Id>> = std::sync::OnceLock::new();
        self.reads
            .get(&group)
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// Registers `group` certainly overwrites.
    pub fn must_writes(&self, group: Id) -> &BTreeSet<Id> {
        static EMPTY: std::sync::OnceLock<BTreeSet<Id>> = std::sync::OnceLock::new();
        self.must_writes
            .get(&group)
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }

    /// Registers `group` may write (superset of must-writes).
    pub fn may_writes(&self, group: Id) -> &BTreeSet<Id> {
        static EMPTY: std::sync::OnceLock<BTreeSet<Id>> = std::sync::OnceLock::new();
        self.may_writes
            .get(&group)
            .unwrap_or_else(|| EMPTY.get_or_init(BTreeSet::new))
    }
}

fn reg_of(port: &PortRef, registers: &BTreeSet<Id>) -> Option<Id> {
    match port.parent {
        PortParent::Cell(c) if registers.contains(&c) => Some(c),
        _ => None,
    }
}

fn analyze_group(
    group: &Group,
    registers: &BTreeSet<Id>,
) -> (BTreeSet<Id>, BTreeSet<Id>, BTreeSet<Id>) {
    let mut reads = BTreeSet::new();
    let mut data_writes: BTreeMap<Id, bool> = BTreeMap::new(); // reg -> unconditional?
    let mut en_writes: BTreeMap<Id, bool> = BTreeMap::new();
    for asgn in &group.assignments {
        for p in asgn.reads_iter() {
            if let Some(r) = reg_of(&p, registers) {
                // Only `out` observes the register's *value*. Reading `done`
                // observes control state (the write handshake) and would
                // otherwise make every written register self-live-before its
                // write, inflating every live range by one group.
                if p.port.as_str() == "out" {
                    reads.insert(r);
                }
            }
        }
        if let Some(r) = reg_of(&asgn.dst, registers) {
            let unconditional = asgn.guard.is_true();
            match asgn.dst.port.as_str() {
                "in" => {
                    let e = data_writes.entry(r).or_insert(false);
                    *e = *e || unconditional;
                }
                "write_en" => {
                    // `write_en = 0` is not a write at all.
                    let enables = !matches!(asgn.src, Atom::Const { val: 0, .. });
                    if enables {
                        let e = en_writes.entry(r).or_insert(false);
                        *e = *e || unconditional;
                    }
                }
                _ => {}
            }
        }
    }
    let mut must = BTreeSet::new();
    let mut may = BTreeSet::new();
    for (&r, &data_uncond) in &data_writes {
        if let Some(&en_uncond) = en_writes.get(&r) {
            may.insert(r);
            if data_uncond && en_uncond {
                must.insert(r);
            }
        }
    }
    // `write_en` driven without a data write still clobbers the register
    // (it latches whatever the undriven `in` reads as).
    for &r in en_writes.keys() {
        may.insert(r);
    }
    (reads, must, may)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn analyze(src: &str) -> (ReadWriteSets, crate::ir::Context) {
        let ctx = parse_context(src).unwrap();
        let rw = ReadWriteSets::analyze(ctx.component("main").unwrap());
        (rw, ctx)
    }

    #[test]
    fn unconditional_write_is_must() {
        let (rw, _) = analyze(
            r#"component main() -> () {
                cells { r = std_reg(8); }
                wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
                control { g; }
            }"#,
        );
        let g = Id::new("g");
        assert!(rw.must_writes(g).contains(&Id::new("r")));
        assert!(rw.may_writes(g).contains(&Id::new("r")));
    }

    #[test]
    fn guarded_write_is_only_may() {
        let (rw, _) = analyze(
            r#"component main() -> () {
                cells { r = std_reg(8); c = std_lt(8); }
                wires {
                  group g {
                    r.in = 8'd1;
                    r.write_en = c.out ? 1'd1;
                    g[done] = r.done;
                  }
                }
                control { g; }
            }"#,
        );
        let g = Id::new("g");
        assert!(!rw.must_writes(g).contains(&Id::new("r")));
        assert!(rw.may_writes(g).contains(&Id::new("r")));
    }

    #[test]
    fn reads_include_guards_and_sources() {
        let (rw, _) = analyze(
            r#"component main() -> () {
                cells { a = std_reg(8); b = std_reg(1); r = std_reg(8); }
                wires {
                  group g {
                    r.in = b.out ? a.out;
                    r.write_en = 1'd1;
                    g[done] = r.done;
                  }
                }
                control { g; }
            }"#,
        );
        let reads = rw.reads(Id::new("g"));
        assert!(reads.contains(&Id::new("a")));
        assert!(reads.contains(&Id::new("b")));
    }

    #[test]
    fn non_registers_ignored() {
        let (rw, _) = analyze(
            r#"component main() -> () {
                cells { add = std_add(8); r = std_reg(8); }
                wires {
                  group g {
                    add.left = r.out; add.right = 8'd1;
                    r.in = add.out; r.write_en = 1'd1;
                    g[done] = r.done;
                  }
                }
                control { g; }
            }"#,
        );
        let g = Id::new("g");
        assert!(!rw.reads(g).contains(&Id::new("add")));
        assert!(rw.reads(g).contains(&Id::new("r")));
    }

    #[test]
    fn write_en_zero_is_not_a_write() {
        let (rw, _) = analyze(
            r#"component main() -> () {
                cells { r = std_reg(8); }
                wires { group g { r.in = 8'd1; r.write_en = 1'd0; g[done] = 1'd1; } }
                control { g; }
            }"#,
        );
        assert!(rw.may_writes(Id::new("g")).is_empty());
    }
}
