//! Live-range analysis for registers over parallel CFGs (paper §5.2).
//!
//! A standard backward may-liveness dataflow with one twist from the paper:
//! for the children of a p-node, "we set the live sets at the end of each
//! child to be the set of live registers coming out of the p-node", and the
//! p-node's kill set is the union of its children's must-writes (all
//! children execute).

use super::cache::{Analysis, AnalysisCache};
use super::pcfg::{Pcfg, PcfgNode};
use super::port_uses::PortUses;
use super::read_write::ReadWriteSets;
use crate::ir::{Component, Control, Id};
use std::collections::BTreeSet;

/// Cells observable outside the control schedule: cells read or written by
/// continuous assignments, plus cells referenced directly as `if`/`while`
/// condition ports. Resource sharing pins these (their values are consumed
/// outside any group), and [`BoundaryRegs`] filters them down to the
/// registers that live-range analysis must keep live at the exit.
#[derive(Debug, Clone, Default)]
pub struct BoundaryCells {
    cells: BTreeSet<Id>,
}

impl BoundaryCells {
    /// The boundary cell set.
    pub fn cells(&self) -> &BTreeSet<Id> {
        &self.cells
    }
}

impl Analysis for BoundaryCells {
    type Output = BoundaryCells;
    const NAME: &'static str = "boundary-cells";

    fn compute(comp: &Component, cache: &mut AnalysisCache) -> BoundaryCells {
        let uses = cache.get::<PortUses>(comp);
        let mut cells: BTreeSet<Id> = uses.continuous_cells().clone();
        collect_condition_cells(&comp.control, &mut cells);
        BoundaryCells { cells }
    }
}

/// Registers observable outside the control schedule, which therefore stay
/// live at the pCFG's exit (and may never be merged away): the register
/// subset of [`BoundaryCells`].
#[derive(Debug, Clone, Default)]
pub struct BoundaryRegs {
    registers: BTreeSet<Id>,
}

impl BoundaryRegs {
    /// The boundary register set.
    pub fn registers(&self) -> &BTreeSet<Id> {
        &self.registers
    }
}

impl Analysis for BoundaryRegs {
    type Output = BoundaryRegs;
    const NAME: &'static str = "boundary-regs";

    fn compute(comp: &Component, cache: &mut AnalysisCache) -> BoundaryRegs {
        let cells = cache.get::<BoundaryCells>(comp);
        BoundaryRegs {
            registers: cells
                .cells()
                .iter()
                .copied()
                .filter(|c| comp.cells.get(*c).is_some_and(|c| c.is_register()))
                .collect(),
        }
    }
}

/// Cells referenced as `if`/`while` condition ports anywhere in `control`.
fn collect_condition_cells(control: &Control, out: &mut BTreeSet<Id>) {
    match control {
        Control::Empty | Control::Enable { .. } => {}
        Control::Seq { stmts, .. } | Control::Par { stmts, .. } => {
            for s in stmts {
                collect_condition_cells(s, out);
            }
        }
        Control::If {
            port,
            tbranch,
            fbranch,
            ..
        } => {
            out.extend(port.cell_parent());
            collect_condition_cells(tbranch, out);
            collect_condition_cells(fbranch, out);
        }
        Control::While { port, body, .. } => {
            out.extend(port.cell_parent());
            collect_condition_cells(body, out);
        }
    }
}

/// Liveness facts for one pCFG (recursively including p-node children).
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live *into* each node.
    pub live_in: Vec<BTreeSet<Id>>,
    /// Registers live *out of* each node.
    pub live_out: Vec<BTreeSet<Id>>,
}

impl Analysis for Liveness {
    type Output = Liveness;
    const NAME: &'static str = "liveness";

    fn compute(comp: &Component, cache: &mut AnalysisCache) -> Liveness {
        let pcfg = cache.get::<Pcfg>(comp);
        let rw = cache.get::<ReadWriteSets>(comp);
        let boundary = cache.get::<BoundaryRegs>(comp);
        // Cached queries go through the generic dataflow engine; the
        // hand-rolled `Liveness::solve` below stays as the differential
        // oracle (both compute the same least fixpoint).
        super::dataflow::solve_liveness(&pcfg, &rw, boundary.registers())
    }
}

impl Liveness {
    /// Solve liveness over `pcfg` with `boundary` live at the graph's
    /// exit — the hand-rolled round-robin solver, kept as the oracle the
    /// engine-backed [`solve_liveness`](super::dataflow::solve_liveness)
    /// is differentially tested against.
    pub fn solve(pcfg: &Pcfg, rw: &ReadWriteSets, boundary: &BTreeSet<Id>) -> Self {
        let n = pcfg.len();
        let mut live_in = vec![BTreeSet::new(); n];
        let mut live_out = vec![BTreeSet::new(); n];
        live_out[pcfg.exit] = boundary.clone();

        // Iterate to fixpoint (loops create cycles). Node count is small —
        // groups per component — so a simple round-robin converges quickly.
        loop {
            let mut changed = false;
            for node in (0..n).rev() {
                // live_out = union of successors' live_in (exit keeps its
                // boundary set).
                let mut out = if node == pcfg.exit {
                    boundary.clone()
                } else {
                    BTreeSet::new()
                };
                for &s in &pcfg.succs[node] {
                    out.extend(live_in[s].iter().copied());
                }
                let (uses, defs) = node_use_def(&pcfg.nodes[node], rw, &out);
                let mut inn: BTreeSet<Id> = out.difference(&defs).copied().collect();
                inn.extend(uses);
                if inn != live_in[node] || out != live_out[node] {
                    changed = true;
                    live_in[node] = inn;
                    live_out[node] = out;
                }
            }
            if !changed {
                return Liveness { live_in, live_out };
            }
        }
    }
}

/// use/def of a node. For p-nodes this *recursively solves* the children
/// with the current live-out as their boundary, per the paper.
fn node_use_def(
    node: &PcfgNode,
    rw: &ReadWriteSets,
    live_out: &BTreeSet<Id>,
) -> (BTreeSet<Id>, BTreeSet<Id>) {
    match node {
        PcfgNode::Nop => (BTreeSet::new(), BTreeSet::new()),
        PcfgNode::Group(g) => (rw.reads(*g).clone(), rw.must_writes(*g).clone()),
        PcfgNode::Par(children) => {
            let mut uses = BTreeSet::new();
            let mut defs = BTreeSet::new();
            for child in children {
                let solved = Liveness::solve(child, rw, live_out);
                uses.extend(solved.live_in[child.entry].iter().copied());
                defs.extend(par_defs(child, rw));
            }
            // A register used by one child must not be treated as killed by
            // a sibling: uses win over defs at the p-node boundary.
            let defs = defs.difference(&uses).copied().collect();
            (uses, defs)
        }
    }
}

/// Must-writes of an entire sub-pCFG: only nodes that execute on *every*
/// path kill unconditionally. We conservatively take the union of must-
/// writes of nodes that dominate the exit; a simple safe approximation is
/// nodes with no branching anywhere, so instead we under-approximate with
/// the intersection-free rule: a register is killed by the child if every
/// path from entry to exit must-writes it. For simplicity and safety this
/// implementation only counts *straight-line* children (no branch nodes);
/// otherwise it reports no kills, which is conservative (registers stay
/// live longer). Shared with the engine-backed liveness in
/// [`dataflow`](crate::analysis::dataflow) so the two can never drift.
pub(crate) fn par_defs(child: &Pcfg, rw: &ReadWriteSets) -> BTreeSet<Id> {
    // Straight-line check: every node has at most one successor.
    let straight = child.succs.iter().all(|s| s.len() <= 1);
    if !straight {
        return BTreeSet::new();
    }
    let mut defs = BTreeSet::new();
    for node in &child.nodes {
        if let PcfgNode::Group(g) = node {
            defs.extend(rw.must_writes(*g).iter().copied());
        }
    }
    defs
}

/// Build the register interference relation from liveness facts.
///
/// Two registers conflict when they are simultaneously live at some node
/// (pairwise within `live_out ∪ may_def ∪ use` at every group node), or
/// when they are touched by different children of the same p-node (parallel
/// execution).
#[derive(Debug, Clone, Default)]
pub struct Interference {
    edges: BTreeSet<(Id, Id)>,
}

impl Analysis for Interference {
    type Output = Interference;
    const NAME: &'static str = "interference";

    fn compute(comp: &Component, cache: &mut AnalysisCache) -> Interference {
        let pcfg = cache.get::<Pcfg>(comp);
        let rw = cache.get::<ReadWriteSets>(comp);
        let live = cache.get::<Liveness>(comp);
        Interference::build_with(&pcfg, &rw, &live)
    }
}

impl Interference {
    /// Compute interference over `pcfg`, solving liveness internally.
    pub fn build(pcfg: &Pcfg, rw: &ReadWriteSets, boundary: &BTreeSet<Id>) -> Self {
        let live = Liveness::solve(pcfg, rw, boundary);
        Interference::build_with(pcfg, rw, &live)
    }

    /// Compute interference over `pcfg` reusing an already-solved top-level
    /// [`Liveness`] (p-node children are still solved recursively, since
    /// each child takes its parent node's live-out as boundary).
    pub fn build_with(pcfg: &Pcfg, rw: &ReadWriteSets, live: &Liveness) -> Self {
        let mut interference = Interference::default();
        interference.visit(pcfg, rw, live);
        interference
    }

    fn add_clique(&mut self, regs: &BTreeSet<Id>) {
        for &a in regs {
            for &b in regs {
                if a < b {
                    self.edges.insert((a, b));
                }
            }
        }
    }

    fn add_cross(&mut self, left: &BTreeSet<Id>, right: &BTreeSet<Id>) {
        for &a in left {
            for &b in right {
                if a != b {
                    let (x, y) = if a < b { (a, b) } else { (b, a) };
                    self.edges.insert((x, y));
                }
            }
        }
    }

    fn visit(&mut self, pcfg: &Pcfg, rw: &ReadWriteSets, live: &Liveness) {
        for (idx, node) in pcfg.nodes.iter().enumerate() {
            match node {
                PcfgNode::Nop => {
                    self.add_clique(&live.live_out[idx]);
                }
                PcfgNode::Group(g) => {
                    let mut set = live.live_out[idx].clone();
                    set.extend(rw.may_writes(*g).iter().copied());
                    set.extend(rw.reads(*g).iter().copied());
                    self.add_clique(&set);
                }
                PcfgNode::Par(children) => {
                    // Recurse with this node's live-out as the boundary.
                    for child in children {
                        let child_live = Liveness::solve(child, rw, &live.live_out[idx]);
                        self.visit(child, rw, &child_live);
                    }
                    // Registers touched in different children interfere.
                    let touched: Vec<BTreeSet<Id>> =
                        children.iter().map(|c| touched_regs(c, rw)).collect();
                    for i in 0..touched.len() {
                        for j in (i + 1)..touched.len() {
                            self.add_cross(&touched[i], &touched[j]);
                        }
                    }
                    self.add_clique(&live.live_out[idx]);
                }
            }
        }
    }

    /// Do `a` and `b` interfere?
    pub fn conflict(&self, a: Id, b: Id) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.edges.contains(&key)
    }
}

fn touched_regs(pcfg: &Pcfg, rw: &ReadWriteSets) -> BTreeSet<Id> {
    let mut out = BTreeSet::new();
    for node in &pcfg.nodes {
        match node {
            PcfgNode::Nop => {}
            PcfgNode::Group(g) => {
                out.extend(rw.reads(*g).iter().copied());
                out.extend(rw.may_writes(*g).iter().copied());
            }
            PcfgNode::Par(children) => {
                for c in children {
                    out.extend(touched_regs(c, rw));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{parse_context, Control};

    /// Two registers written and read in disjoint phases can share.
    #[test]
    fn sequential_disjoint_lifetimes_do_not_interfere() {
        let ctx = parse_context(
            r#"component main() -> () {
                cells { a = std_reg(8); b = std_reg(8); out = std_reg(8); }
                wires {
                  group wa { a.in = 8'd1; a.write_en = 1'd1; wa[done] = a.done; }
                  group ra { out.in = a.out; out.write_en = 1'd1; ra[done] = out.done; }
                  group wb { b.in = 8'd2; b.write_en = 1'd1; wb[done] = b.done; }
                  group rb { out.in = b.out; out.write_en = 1'd1; rb[done] = out.done; }
                }
                control { seq { wa; ra; wb; rb; } }
            }"#,
        )
        .unwrap();
        let comp = ctx.component("main").unwrap();
        let rw = ReadWriteSets::analyze(comp);
        let pcfg = Pcfg::from_control(&comp.control);
        let interference = Interference::build(&pcfg, &rw, &BTreeSet::new());
        let (a, b) = (Id::new("a"), Id::new("b"));
        assert!(
            !interference.conflict(a, b),
            "a dies before b is written; they can share"
        );
        // But both interfere with `out` while it is being written/read...
        // (out is written while a/b are live).
        assert!(interference.conflict(a, Id::new("out")));
    }

    #[test]
    fn overlapping_lifetimes_interfere() {
        let ctx = parse_context(
            r#"component main() -> () {
                cells { a = std_reg(8); b = std_reg(8); out = std_reg(8); add = std_add(8); }
                wires {
                  group wa { a.in = 8'd1; a.write_en = 1'd1; wa[done] = a.done; }
                  group wb { b.in = 8'd2; b.write_en = 1'd1; wb[done] = b.done; }
                  group sum {
                    add.left = a.out; add.right = b.out;
                    out.in = add.out; out.write_en = 1'd1;
                    sum[done] = out.done;
                  }
                }
                control { seq { wa; wb; sum; } }
            }"#,
        )
        .unwrap();
        let comp = ctx.component("main").unwrap();
        let rw = ReadWriteSets::analyze(comp);
        let pcfg = Pcfg::from_control(&comp.control);
        let interference = Interference::build(&pcfg, &rw, &BTreeSet::new());
        assert!(interference.conflict(Id::new("a"), Id::new("b")));
    }

    #[test]
    fn par_children_interfere() {
        let ctx = parse_context(
            r#"component main() -> () {
                cells { a = std_reg(8); b = std_reg(8); }
                wires {
                  group wa { a.in = 8'd1; a.write_en = 1'd1; wa[done] = a.done; }
                  group wb { b.in = 8'd2; b.write_en = 1'd1; wb[done] = b.done; }
                }
                control { par { wa; wb; } }
            }"#,
        )
        .unwrap();
        let comp = ctx.component("main").unwrap();
        let rw = ReadWriteSets::analyze(comp);
        let pcfg = Pcfg::from_control(&comp.control);
        let interference = Interference::build(&pcfg, &rw, &BTreeSet::new());
        assert!(interference.conflict(Id::new("a"), Id::new("b")));
    }

    #[test]
    fn loop_keeps_loop_carried_register_live() {
        let ctx = parse_context(
            r#"component main() -> () {
                cells { i = std_reg(8); lt = std_lt(8); add = std_add(8); t = std_reg(8); }
                wires {
                  group cond { lt.left = i.out; lt.right = 8'd10; cond[done] = 1'd1; }
                  group incr {
                    add.left = i.out; add.right = 8'd1;
                    i.in = add.out; i.write_en = 1'd1;
                    incr[done] = i.done;
                  }
                  group tmp { t.in = 8'd0; t.write_en = 1'd1; tmp[done] = t.done; }
                }
                control { while lt.out with cond { seq { tmp; incr; } } }
            }"#,
        )
        .unwrap();
        let comp = ctx.component("main").unwrap();
        let rw = ReadWriteSets::analyze(comp);
        let pcfg = Pcfg::from_control(&comp.control);
        let live = Liveness::solve(&pcfg, &rw, &BTreeSet::new());
        // `i` is live around the back edge: at the condition node's entry.
        let cond_idx = pcfg
            .nodes
            .iter()
            .position(|n| matches!(n, PcfgNode::Group(g) if g.as_str() == "cond"))
            .unwrap();
        assert!(live.live_in[cond_idx].contains(&Id::new("i")));
        // The loop-carried register interferes with the temporary.
        let interference = Interference::build(&pcfg, &rw, &BTreeSet::new());
        assert!(interference.conflict(Id::new("i"), Id::new("t")));
    }

    #[test]
    fn boundary_registers_stay_live() {
        let c = Control::enable("g");
        let ctx = parse_context(
            r#"component main() -> () {
                cells { r = std_reg(8); }
                wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
                control { g; }
            }"#,
        )
        .unwrap();
        let comp = ctx.component("main").unwrap();
        let rw = ReadWriteSets::analyze(comp);
        let pcfg = Pcfg::from_control(&c);
        let boundary: BTreeSet<Id> = [Id::new("r")].into_iter().collect();
        let live = Liveness::solve(&pcfg, &rw, &boundary);
        assert!(live.live_out[pcfg.exit].contains(&Id::new("r")));
    }
}
