//! The generic worklist fixpoint engine over [`Pcfg`]s.
//!
//! A dataflow analysis is a [`Lattice`] of facts plus a [`Transfer`]
//! function describing how each node transforms a fact in its
//! [`Direction`]. [`solve`] then computes the least fixpoint of the flow
//! equations with a classic worklist: recompute a node's fact from its
//! neighbors, and re-queue the neighbors on the other side whenever the
//! result changed. P-nodes are where the pCFG earns its name — all
//! children of a `par` execute, so [`Transfer::par`] recursively solves
//! each child sub-pCFG and combines the far-side facts (see the paper's
//! §5.2 treatment of liveness, generalized here to any lattice).

use crate::analysis::pcfg::{Pcfg, PcfgNode};
use crate::ir::Id;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A join-semilattice of dataflow facts.
///
/// Facts only ever grow (in the `leq` order) during solving, so `join`
/// combined with monotone transfer functions guarantees termination on
/// finite lattices.
pub trait Lattice: Clone + PartialEq {
    /// The least element: "nothing known yet" / unreached.
    fn bottom() -> Self;
    /// Join `other` into `self`; returns `true` when `self` changed.
    fn join(&mut self, other: &Self) -> bool;
    /// The partial order: is `self ⊑ other`?
    fn leq(&self, other: &Self) -> bool;
}

/// Any ordered set is a union lattice (used by liveness and reaching
/// definitions).
impl<T: Clone + Ord> Lattice for BTreeSet<T> {
    fn bottom() -> Self {
        BTreeSet::new()
    }

    fn join(&mut self, other: &Self) -> bool {
        let before = self.len();
        self.extend(other.iter().cloned());
        self.len() != before
    }

    fn leq(&self, other: &Self) -> bool {
        self.is_subset(other)
    }
}

/// Which way facts flow through the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow entry → exit; a node's input joins its predecessors'
    /// outputs.
    Forward,
    /// Facts flow exit → entry; a node's output joins its successors'
    /// inputs.
    Backward,
}

/// The transfer function of one analysis: how each pCFG node transforms
/// a fact. Implementations must be *monotone* in the [`Lattice`] order —
/// the solver debug-asserts this while iterating.
pub trait Transfer: Sized {
    /// The fact lattice.
    type Fact: Lattice;
    /// The flow direction.
    const DIRECTION: Direction;

    /// Apply a group node's effect to `fact` (the node-entry fact for
    /// forward analyses, the node-exit fact for backward ones).
    fn group(&self, group: Id, fact: &Self::Fact) -> Self::Fact;

    /// Apply a p-node's effect. All children of a `par` execute, so the
    /// default recursively [`solve`]s every child sub-pCFG with `fact` at
    /// its boundary and joins the far-side facts. Analyses that can be
    /// more precise (liveness kills, single-writer constants) override
    /// this.
    fn par(&self, children: &[Pcfg], fact: &Self::Fact) -> Self::Fact {
        let mut out = Self::Fact::bottom();
        for child in children {
            let solved = solve(child, self, fact.clone());
            let far = match Self::DIRECTION {
                Direction::Forward => &solved.output[child.exit],
                Direction::Backward => &solved.input[child.entry],
            };
            out.join(far);
        }
        out
    }
}

/// Per-node facts of a solved analysis. `input[n]` is the fact at node
/// `n`'s entry (program order) and `output[n]` the fact at its exit —
/// for backward analyses these are the live-in/live-out convention.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact at each node's entry.
    pub input: Vec<F>,
    /// Fact at each node's exit.
    pub output: Vec<F>,
}

/// Solve `transfer` over `pcfg` to the least fixpoint, with `boundary`
/// as the fact at the flow source (the entry node's input for forward
/// analyses, the exit node's output for backward ones).
pub fn solve<T: Transfer>(pcfg: &Pcfg, transfer: &T, boundary: T::Fact) -> Solution<T::Fact> {
    let n = pcfg.len();
    let mut input = vec![T::Fact::bottom(); n];
    let mut output = vec![T::Fact::bottom(); n];
    // Seed every node once, in rough flow order so the common (acyclic)
    // case converges in one sweep; loops re-queue through the edges.
    let mut work: VecDeque<usize> = match T::DIRECTION {
        Direction::Forward => (0..n).collect(),
        Direction::Backward => (0..n).rev().collect(),
    };
    let mut queued = vec![true; n];
    while let Some(node) = work.pop_front() {
        queued[node] = false;
        match T::DIRECTION {
            Direction::Forward => {
                let mut inn = if node == pcfg.entry {
                    boundary.clone()
                } else {
                    T::Fact::bottom()
                };
                for &p in &pcfg.preds[node] {
                    inn.join(&output[p]);
                }
                let out = apply(transfer, &pcfg.nodes[node], &inn);
                debug_assert!(output[node].leq(&out), "non-monotone forward transfer");
                input[node] = inn;
                if out != output[node] {
                    output[node] = out;
                    for &s in &pcfg.succs[node] {
                        if !queued[s] {
                            queued[s] = true;
                            work.push_back(s);
                        }
                    }
                }
            }
            Direction::Backward => {
                let mut out = if node == pcfg.exit {
                    boundary.clone()
                } else {
                    T::Fact::bottom()
                };
                for &s in &pcfg.succs[node] {
                    out.join(&input[s]);
                }
                let inn = apply(transfer, &pcfg.nodes[node], &out);
                debug_assert!(input[node].leq(&inn), "non-monotone backward transfer");
                output[node] = out;
                if inn != input[node] {
                    input[node] = inn;
                    for &p in &pcfg.preds[node] {
                        if !queued[p] {
                            queued[p] = true;
                            work.push_back(p);
                        }
                    }
                }
            }
        }
    }
    Solution { input, output }
}

fn apply<T: Transfer>(transfer: &T, node: &PcfgNode, fact: &T::Fact) -> T::Fact {
    match node {
        PcfgNode::Nop => fact.clone(),
        PcfgNode::Group(g) => transfer.group(*g, fact),
        PcfgNode::Par(children) => transfer.par(children, fact),
    }
}

/// A flat (three-level) constant lattice value: a register either holds
/// one known constant or is "not a constant" ([`ConstVal::Nac`]); the
/// implicit bottom is absence from the fact map (unreached / untracked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstVal {
    /// Provably this constant on every path.
    Const(u64),
    /// Not a constant (conflicting or unknowable values).
    Nac,
}

impl ConstVal {
    /// The lattice join of two flat values.
    pub fn join(self, other: ConstVal) -> ConstVal {
        match (self, other) {
            (ConstVal::Const(a), ConstVal::Const(b)) if a == b => self,
            _ => ConstVal::Nac,
        }
    }

    /// The known constant, if any.
    pub fn as_const(self) -> Option<u64> {
        match self {
            ConstVal::Const(v) => Some(v),
            ConstVal::Nac => None,
        }
    }
}

/// Maps from cells to flat constants form a lattice: pointwise join, with
/// missing keys as bottom.
impl Lattice for BTreeMap<Id, ConstVal> {
    fn bottom() -> Self {
        BTreeMap::new()
    }

    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (&k, &v) in other {
            match self.get_mut(&k) {
                None => {
                    self.insert(k, v);
                    changed = true;
                }
                Some(cur) => {
                    let joined = cur.join(v);
                    if joined != *cur {
                        *cur = joined;
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    fn leq(&self, other: &Self) -> bool {
        self.iter().all(|(k, v)| match (v, other.get(k)) {
            (_, Some(ConstVal::Nac)) => true,
            (a, Some(b)) => a == b,
            (_, None) => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Control;

    /// A toy forward analysis: collect every group name seen on some path.
    struct SeenGroups;

    impl Transfer for SeenGroups {
        type Fact = BTreeSet<Id>;
        const DIRECTION: Direction = Direction::Forward;

        fn group(&self, group: Id, fact: &Self::Fact) -> Self::Fact {
            let mut f = fact.clone();
            f.insert(group);
            f
        }
    }

    #[test]
    fn forward_solve_reaches_fixpoint_through_loops() {
        // while c { body }; tail — the back edge must not diverge, and
        // `body` must be seen at the exit.
        let c = Control::seq(vec![
            Control::while_(
                crate::ir::PortRef::cell("w", "out"),
                Some(Id::new("c")),
                Control::enable("body"),
            ),
            Control::enable("tail"),
        ]);
        let pcfg = Pcfg::from_control(&c);
        let sol = solve(&pcfg, &SeenGroups, BTreeSet::new());
        let exit_fact = &sol.output[pcfg.exit];
        for g in ["c", "body", "tail"] {
            assert!(
                exit_fact.contains(&Id::new(g)),
                "missing {g}: {exit_fact:?}"
            );
        }
    }

    #[test]
    fn default_par_transfer_joins_all_children() {
        let c = Control::par(vec![Control::enable("a"), Control::enable("b")]);
        let pcfg = Pcfg::from_control(&c);
        let sol = solve(&pcfg, &SeenGroups, BTreeSet::new());
        let exit_fact = &sol.output[pcfg.exit];
        assert!(exit_fact.contains(&Id::new("a")));
        assert!(exit_fact.contains(&Id::new("b")));
    }

    #[test]
    fn backward_direction_flows_exit_to_entry() {
        /// Backward twin of `SeenGroups`.
        struct SeenBackward;
        impl Transfer for SeenBackward {
            type Fact = BTreeSet<Id>;
            const DIRECTION: Direction = Direction::Backward;
            fn group(&self, group: Id, fact: &Self::Fact) -> Self::Fact {
                let mut f = fact.clone();
                f.insert(group);
                f
            }
        }
        let c = Control::seq(vec![Control::enable("a"), Control::enable("b")]);
        let pcfg = Pcfg::from_control(&c);
        let sol = solve(&pcfg, &SeenBackward, BTreeSet::new());
        let entry_fact = &sol.input[pcfg.entry];
        assert!(entry_fact.contains(&Id::new("a")));
        assert!(entry_fact.contains(&Id::new("b")));
    }

    #[test]
    fn set_lattice_laws() {
        let a: BTreeSet<Id> = [Id::new("x")].into_iter().collect();
        let mut b = BTreeSet::bottom();
        assert!(b.leq(&a));
        assert!(b.join(&a), "joining new elements reports a change");
        assert!(!b.join(&a), "re-joining is idempotent");
        assert!(a.leq(&b) && b.leq(&a));
    }

    #[test]
    fn const_lattice_joins_flat() {
        assert_eq!(
            ConstVal::Const(3).join(ConstVal::Const(3)),
            ConstVal::Const(3)
        );
        assert_eq!(ConstVal::Const(3).join(ConstVal::Const(4)), ConstVal::Nac);
        assert_eq!(ConstVal::Nac.join(ConstVal::Const(3)), ConstVal::Nac);

        let mut m: BTreeMap<Id, ConstVal> = BTreeMap::bottom();
        let mut n = BTreeMap::bottom();
        n.insert(Id::new("r"), ConstVal::Const(1));
        assert!(m.leq(&n));
        assert!(m.join(&n));
        assert!(m.leq(&n) && n.leq(&m));
        let mut conflicting = BTreeMap::new();
        conflicting.insert(Id::new("r"), ConstVal::Const(2));
        assert!(m.join(&conflicting));
        assert_eq!(m[&Id::new("r")], ConstVal::Nac);
        assert!(n.leq(&m), "constants are below Nac");
        assert!(!m.leq(&n));
    }
}
