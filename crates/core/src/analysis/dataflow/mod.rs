//! The dataflow engine: fixpoint abstract interpretation over the pCFG.
//!
//! [`solver`] provides the generic machinery — a [`Lattice`] of facts, a
//! per-direction [`Transfer`] function, and a worklist [`solve`] that
//! treats `par` p-nodes correctly (every child executes, so a p-node's
//! effect combines *all* children, each recursively solved as its own
//! sub-pCFG). The concrete analyses on top:
//!
//! - [`solve_liveness`] — backward liveness as an engine instance,
//!   differentially tested byte-for-byte against the hand-rolled solver
//!   in [`liveness`](crate::analysis::liveness);
//! - [`ReachingDefs`] — forward def-site tracking with synthetic entry
//!   defs, powering the `uninit-read` lint;
//! - [`ConstProp`] — forward constant propagation over register values
//!   through a flat lattice, powering the `const-loop` lint and the
//!   wire-chain-aware `unreachable-control` upgrade.

pub mod const_prop;
pub mod live;
pub mod reaching;
pub mod solver;

pub use const_prop::{eval_port, CondFacts, ConstFacts, ConstProp, Scope};
pub use live::{solve_liveness, LiveTransfer};
pub use reaching::{DefSite, ReachFacts, ReachingDefs};
pub use solver::{solve, ConstVal, Direction, Lattice, Solution, Transfer};
