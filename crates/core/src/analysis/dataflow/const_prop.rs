//! Forward constant propagation over register values (a flat lattice),
//! plus the combinational constant evaluator it shares with the
//! `unreachable-control` lint.
//!
//! Register facts flow forward through the pCFG with [`ConstVal`]'s flat
//! lattice: a group that must-write a register sets its fact to the
//! written value (evaluated through constants, `std_wire` chains, and
//! known combinational primitives), guarded writes join with the old
//! value, and merge points join pointwise. On top of the solved facts,
//! every `if`/`while` [`CondSite`](crate::analysis::pcfg::CondSite) gets
//! its condition evaluated twice:
//!
//! - **structurally** — from wiring alone, no register knowledge: the
//!   value is fixed no matter what the program does (the
//!   `unreachable-control` C0104 territory);
//! - **with register facts** — using the constants that reach the loop
//!   head (the `const-loop` C0206 territory: a condition over registers
//!   the loop never changes).

use super::solver::{solve, ConstVal, Direction, Transfer};
use crate::analysis::cache::{Analysis, AnalysisCache};
use crate::analysis::pcfg::{CondKind, Pcfg, PcfgNode};
use crate::analysis::read_write::ReadWriteSets;
use crate::ir::{Atom, Component, Id, PortParent, PortRef};
use std::collections::BTreeMap;

/// Recursion budget for the port evaluator: deeper chains (or
/// combinational cycles, which the `comb-cycle` lint reports separately)
/// simply evaluate to "unknown".
const MAX_DEPTH: u32 = 16;

/// The constant fact map: register → flat constant value.
pub type ConstFacts = BTreeMap<Id, ConstVal>;

/// Which assignments may drive ports during evaluation.
#[derive(Clone, Copy)]
pub enum Scope<'a> {
    /// Every assignment in the component: a value provable here is fixed
    /// no matter which groups are active.
    All,
    /// The named group's assignments (when present) plus continuous ones
    /// — what is actually driving wires while a condition is sampled.
    Active(Option<Id>, &'a Component),
}

impl Scope<'_> {
    fn drivers<'c>(
        &self,
        comp: &'c Component,
        dst: PortRef,
    ) -> Box<dyn Iterator<Item = &'c crate::ir::Assignment> + 'c> {
        match self {
            Scope::All => Box::new(comp.all_assignments().filter(move |a| a.dst == dst)),
            Scope::Active(group, _) => {
                let in_group = group
                    .and_then(|g| comp.groups.get(g))
                    .map(|g| g.assignments.iter())
                    .into_iter()
                    .flatten();
                Box::new(
                    in_group
                        .chain(comp.continuous.iter())
                        .filter(move |a| a.dst == dst),
                )
            }
        }
    }
}

/// Evaluate `port` to a constant, if provable: through `std_wire` chains,
/// known combinational primitives with constant inputs, and (when `regs`
/// is supplied) register outputs with known constant values. Returns
/// `None` unless the value is one provable constant.
pub fn eval_port(
    comp: &Component,
    scope: Scope,
    regs: Option<&ConstFacts>,
    port: PortRef,
) -> Option<u64> {
    match eval_port_at(comp, scope, regs, port, MAX_DEPTH) {
        Some(v) => v.as_const(),
        None => None,
    }
}

/// Three-valued port evaluation: `None` is lattice bottom ("no fact has
/// reached this yet" — only possible when a register read is still
/// bottom in `regs`), `Some(Const)` a proven constant, `Some(Nac)`
/// unknowable. Keeping bottom distinct from Nac is what makes the
/// [`ConstTransfer`] monotone: as a register's fact rises
/// bottom → Const → Nac, the evaluated result can only rise with it.
fn eval_port_at(
    comp: &Component,
    scope: Scope,
    regs: Option<&ConstFacts>,
    port: PortRef,
    depth: u32,
) -> Option<ConstVal> {
    if depth == 0 {
        // Deeper chains (or combinational cycles, which `comb-cycle`
        // reports separately) are unknowable, not unreached.
        return Some(ConstVal::Nac);
    }
    let PortParent::Cell(cell_name) = port.parent else {
        return Some(ConstVal::Nac);
    };
    let Some(cell) = comp.cells.get(cell_name) else {
        return Some(ConstVal::Nac);
    };
    if cell.is_register() {
        if port.port.as_str() == "out" {
            return match regs {
                // Structural mode never assumes register contents.
                None => Some(ConstVal::Nac),
                Some(facts) => facts.get(&cell_name).copied(),
            };
        }
        return Some(ConstVal::Nac);
    }
    if port.port.as_str() != "out" {
        return Some(ConstVal::Nac);
    }
    let Some(width) = cell.port_width(Id::new("out")) else {
        return Some(ConstVal::Nac);
    };
    let input =
        |name: &str| eval_input(comp, scope, regs, PortRef::cell(cell_name, name), depth - 1);
    let prim = |p: &str| cell.is_primitive(p);
    let unary = |f: fn(u64) -> u64| lift1(input("in"), f);
    let binary = |f: fn(u64, u64) -> u64| lift2(input("left"), input("right"), f);
    let v = if prim("std_wire") || prim("std_slice") || prim("std_pad") {
        unary(|a| a)
    } else if prim("std_not") {
        unary(|a| !a)
    } else if prim("std_add") {
        binary(u64::wrapping_add)
    } else if prim("std_sub") {
        binary(u64::wrapping_sub)
    } else if prim("std_and") {
        binary(|a, b| a & b)
    } else if prim("std_or") {
        binary(|a, b| a | b)
    } else if prim("std_xor") {
        binary(|a, b| a ^ b)
    } else if prim("std_lt") {
        binary(|a, b| u64::from(a < b))
    } else if prim("std_gt") {
        binary(|a, b| u64::from(a > b))
    } else if prim("std_eq") {
        binary(|a, b| u64::from(a == b))
    } else if prim("std_neq") {
        binary(|a, b| u64::from(a != b))
    } else if prim("std_ge") {
        binary(|a, b| u64::from(a >= b))
    } else if prim("std_le") {
        binary(|a, b| u64::from(a <= b))
    } else {
        // Stateful, signed, or unknown primitives: not evaluated.
        Some(ConstVal::Nac)
    };
    match v {
        Some(ConstVal::Const(v)) => Some(ConstVal::Const(mask(v, width))),
        other => other,
    }
}

/// Lift a unary operator: bottom stays bottom, Nac stays Nac.
fn lift1(a: Option<ConstVal>, f: fn(u64) -> u64) -> Option<ConstVal> {
    match a? {
        ConstVal::Const(a) => Some(ConstVal::Const(f(a))),
        ConstVal::Nac => Some(ConstVal::Nac),
    }
}

/// Lift a binary operator: bottom infects first, then Nac.
fn lift2(a: Option<ConstVal>, b: Option<ConstVal>, f: fn(u64, u64) -> u64) -> Option<ConstVal> {
    match (a?, b?) {
        (ConstVal::Const(a), ConstVal::Const(b)) => Some(ConstVal::Const(f(a, b))),
        _ => Some(ConstVal::Nac),
    }
}

/// The value driven onto input port `dst`. Guarded drivers, conflicting
/// drivers, and undriven ports are unknowable (Nac); a driver whose own
/// value is still bottom makes the whole input bottom.
fn eval_input(
    comp: &Component,
    scope: Scope,
    regs: Option<&ConstFacts>,
    dst: PortRef,
    depth: u32,
) -> Option<ConstVal> {
    let mut value: Option<ConstVal> = None;
    let mut any = false;
    for asgn in scope.drivers(comp, dst) {
        if !asgn.guard.is_true() {
            // A guarded driver may or may not fire: unknowable.
            return Some(ConstVal::Nac);
        }
        any = true;
        let v = match asgn.src {
            Atom::Const { val, .. } => Some(ConstVal::Const(val)),
            Atom::Port(p) => eval_port_at(comp, scope, regs, p, depth),
        }?;
        value = Some(match value {
            None => v,
            Some(prev) => prev.join(v),
        });
    }
    if !any {
        // An undriven input reads as an unknowable value.
        return Some(ConstVal::Nac);
    }
    value
}

fn mask(v: u64, width: u32) -> u64 {
    if width >= 64 {
        v
    } else {
        v & ((1u64 << width) - 1)
    }
}

/// A solved `if`/`while` condition site.
#[derive(Debug, Clone)]
pub struct CondFacts {
    /// The condition port.
    pub port: PortRef,
    /// The `with` condition group, when present.
    pub cond: Option<Id>,
    /// The construct and its arm/body shape.
    pub kind: CondKind,
    /// Condition value provable from wiring alone (constants through
    /// `std_wire` chains and combinational logic), independent of any
    /// register state.
    pub structural: Option<u64>,
    /// Condition value provable using the register constants reaching
    /// the site (a superset of `structural`).
    pub value: Option<u64>,
}

/// Constant propagation facts for one component: every condition site,
/// recursively through p-node children, with its proven values.
#[derive(Debug, Clone, Default)]
pub struct ConstProp {
    sites: Vec<CondFacts>,
}

impl ConstProp {
    /// Every `if`/`while` site in the component with its proven
    /// condition values.
    pub fn sites(&self) -> &[CondFacts] {
        &self.sites
    }
}

impl Analysis for ConstProp {
    type Output = ConstProp;
    const NAME: &'static str = "const-prop";

    fn compute(comp: &Component, cache: &mut AnalysisCache) -> ConstProp {
        let pcfg = cache.get::<Pcfg>(comp);
        let rw = cache.get::<ReadWriteSets>(comp);
        let transfer = ConstTransfer { comp, rw: &rw };
        // Power-on register values are undefined: seed every register as
        // not-a-constant at the schedule's entry.
        let boundary: ConstFacts = comp
            .cells
            .iter()
            .filter(|c| c.is_register())
            .map(|c| (c.name, ConstVal::Nac))
            .collect();
        let mut sites = Vec::new();
        collect_sites(&transfer, &pcfg, boundary, &mut sites);
        ConstProp { sites }
    }
}

/// Solve `pcfg` from `boundary` and evaluate its condition sites, then
/// recurse into p-node children with the fact at the p-node.
fn collect_sites(
    transfer: &ConstTransfer,
    pcfg: &Pcfg,
    boundary: ConstFacts,
    sites: &mut Vec<CondFacts>,
) {
    let comp = transfer.comp;
    let sol = solve(pcfg, transfer, boundary);
    for site in &pcfg.conds {
        sites.push(CondFacts {
            port: site.port,
            cond: site.cond,
            kind: site.kind,
            structural: eval_port(comp, Scope::All, None, site.port),
            value: eval_port(
                comp,
                Scope::Active(site.cond, comp),
                Some(&sol.input[site.node]),
                site.port,
            ),
        });
    }
    for (idx, node) in pcfg.nodes.iter().enumerate() {
        if let PcfgNode::Par(children) = node {
            for child in children {
                collect_sites(transfer, child, sol.input[idx].clone(), sites);
            }
        }
    }
}

struct ConstTransfer<'a> {
    comp: &'a Component,
    rw: &'a ReadWriteSets,
}

impl Transfer for ConstTransfer<'_> {
    type Fact = ConstFacts;
    const DIRECTION: Direction = Direction::Forward;

    fn group(&self, group: Id, fact: &Self::Fact) -> Self::Fact {
        let mut out = fact.clone();
        for &r in self.rw.may_writes(group) {
            let written = eval_input(
                self.comp,
                Scope::Active(Some(group), self.comp),
                Some(fact),
                PortRef::cell(r, "in"),
                MAX_DEPTH,
            );
            let new = if self.rw.must_writes(group).contains(&r) {
                written
            } else {
                // A guarded write leaves either the old or the new value.
                match (out.get(&r).copied(), written) {
                    (None, w) => w,
                    (o, None) => o,
                    (Some(a), Some(b)) => Some(a.join(b)),
                }
            };
            // Bottom (no fact reached the written value yet) must stay
            // absent from the map, or the transfer loses monotonicity.
            match new {
                Some(v) => out.insert(r, v),
                None => out.remove(&r),
            };
        }
        out
    }

    fn par(&self, children: &[Pcfg], fact: &Self::Fact) -> Self::Fact {
        // Writes inside any child are visible after the p-node. A
        // register written by exactly one child takes that child's exit
        // fact; two writers is a race (Nac); untouched registers keep the
        // incoming fact.
        let mut out = fact.clone();
        let mut votes: BTreeMap<Id, (Option<ConstVal>, usize)> = BTreeMap::new();
        for child in children {
            let solved = solve(child, self, fact.clone());
            let exit = &solved.output[child.exit];
            for r in may_written_regs(child, self.rw) {
                let v = exit.get(&r).copied();
                votes
                    .entry(r)
                    .and_modify(|(_, n)| *n += 1)
                    .or_insert((v, 1));
            }
        }
        for (r, (v, writers)) in votes {
            // Two writers is a race whatever the values: structurally
            // Nac, which is also monotone-constant in the inputs.
            let v = if writers > 1 { Some(ConstVal::Nac) } else { v };
            match v {
                Some(v) => out.insert(r, v),
                None => out.remove(&r),
            };
        }
        out
    }
}

/// Registers any node of `pcfg` (recursively) may write.
fn may_written_regs(pcfg: &Pcfg, rw: &ReadWriteSets) -> Vec<Id> {
    let mut regs = std::collections::BTreeSet::new();
    for node in &pcfg.nodes {
        match node {
            PcfgNode::Nop => {}
            PcfgNode::Group(g) => regs.extend(rw.may_writes(*g).iter().copied()),
            PcfgNode::Par(children) => {
                for c in children {
                    regs.extend(may_written_regs(c, rw));
                }
            }
        }
    }
    regs.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn analyze(src: &str) -> ConstProp {
        let ctx = parse_context(src).unwrap();
        let comp = ctx.component("main").unwrap();
        let mut cache = AnalysisCache::new();
        ConstProp::compute(comp, &mut cache)
    }

    const LOOP_SHELL: &str = r#"
        group init { i.in = 8'd0; i.write_en = 1'd1; init[done] = i.done; }
        group cond { lt.left = i.out; lt.right = 8'd10; cond[done] = 1'd1; }
    "#;

    #[test]
    fn unchanging_counter_proves_the_condition_true() {
        let cp = analyze(&format!(
            r#"component main() -> () {{
                cells {{ i = std_reg(8); lt = std_lt(8); t = std_reg(8); }}
                wires {{
                  {LOOP_SHELL}
                  group work {{ t.in = i.out; t.write_en = 1'd1; work[done] = t.done; }}
                }}
                control {{ seq {{ init; while lt.out with cond {{ work; }} }} }}
            }}"#
        ));
        let site = &cp.sites()[0];
        assert!(matches!(site.kind, CondKind::While { has_body: true }));
        assert_eq!(site.value, Some(1), "i stays 0, so 0 < 10 is provable");
        assert_eq!(site.structural, None, "wiring alone cannot prove it");
    }

    #[test]
    fn incremented_counter_is_not_constant() {
        let cp = analyze(&format!(
            r#"component main() -> () {{
                cells {{ i = std_reg(8); lt = std_lt(8); add = std_add(8); }}
                wires {{
                  {LOOP_SHELL}
                  group incr {{
                    add.left = i.out; add.right = 8'd1;
                    i.in = add.out; i.write_en = 1'd1;
                    incr[done] = i.done;
                  }}
                }}
                control {{ seq {{ init; while lt.out with cond {{ incr; }} }} }}
            }}"#
        ));
        assert_eq!(cp.sites()[0].value, None, "i varies around the back edge");
    }

    #[test]
    fn uninitialized_registers_prove_nothing() {
        let cp = analyze(
            r#"component main() -> () {
                cells { i = std_reg(8); lt = std_lt(8); t = std_reg(8); }
                wires {
                  group cond { lt.left = i.out; lt.right = 8'd10; cond[done] = 1'd1; }
                  group work { t.in = i.out; t.write_en = 1'd1; work[done] = t.done; }
                }
                control { while lt.out with cond { work; } }
            }"#,
        );
        assert_eq!(cp.sites()[0].value, None, "power-on values are undefined");
    }

    #[test]
    fn structural_value_sees_through_wire_chains() {
        let cp = analyze(
            r#"component main() -> () {
                cells { a = std_wire(1); b = std_wire(1); r = std_reg(8); }
                wires {
                  a.in = 1'd1;
                  b.in = a.out;
                  group set { r.in = 8'd1; r.write_en = 1'd1; set[done] = r.done; }
                }
                control { while b.out { set; } }
            }"#,
        );
        let site = &cp.sites()[0];
        assert_eq!(site.structural, Some(1), "constant through a 2-wire chain");
        assert_eq!(site.value, Some(1));
    }

    #[test]
    fn par_single_writer_keeps_the_constant() {
        let cp = analyze(&format!(
            r#"component main() -> () {{
                cells {{ i = std_reg(8); lt = std_lt(8); t = std_reg(8); }}
                wires {{
                  {LOOP_SHELL}
                  group tset {{ t.in = 8'd7; t.write_en = 1'd1; tset[done] = t.done; }}
                  group use {{ t.in = i.out; t.write_en = 1'd1; use[done] = t.done; }}
                }}
                control {{ seq {{ par {{ init; tset; }} while lt.out with cond {{ use; }} }} }}
            }}"#
        ));
        assert_eq!(
            cp.sites()[0].value,
            Some(1),
            "init runs in a par but is the unique writer of i"
        );
    }

    #[test]
    fn guarded_writes_fall_to_nac() {
        let cp = analyze(&format!(
            r#"component main() -> () {{
                cells {{ i = std_reg(8); lt = std_lt(8); c = std_reg(1); t = std_reg(8); }}
                wires {{
                  {LOOP_SHELL}
                  group maybe {{
                    i.in = 8'd3;
                    i.write_en = c.out ? 1'd1;
                    maybe[done] = 1'd1;
                  }}
                  group work {{ t.in = i.out; t.write_en = 1'd1; work[done] = t.done; }}
                }}
                control {{ seq {{ init; maybe; while lt.out with cond {{ work; }} }} }}
            }}"#
        ));
        assert_eq!(
            cp.sites()[0].value,
            None,
            "after the guarded write i is 0-or-3"
        );
    }
}
