//! Reaching definitions: which writes of a register or memory can still
//! be the source of its value when a group runs.
//!
//! A forward union analysis over def sites. Every register and memory
//! starts with a synthetic [`DefSite::Entry`] definition (its power-on
//! value); a group that must-write a register kills every prior def of
//! it, while guarded register writes and *all* memory writes only add a
//! [`DefSite::Group`] def — a memory write updates one address, so the
//! power-on contents of the others still reach. The `uninit-read` lint
//! asks [`ReachingDefs::entry_reaches`]: a register read while its entry
//! def still reaches may observe an undefined power-on value.

use super::solver::{solve, Direction, Transfer};
use crate::analysis::cache::{Analysis, AnalysisCache};
use crate::analysis::liveness::par_defs;
use crate::analysis::pcfg::{Pcfg, PcfgNode};
use crate::analysis::read_write::ReadWriteSets;
use crate::ir::{Atom, Component, Id, PortParent};
use std::collections::{BTreeMap, BTreeSet};

/// Where a cell's value may have been defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DefSite {
    /// The undefined power-on value from before the schedule started.
    Entry,
    /// A write inside this group.
    Group(Id),
}

/// The reaching-defs fact: the set of `(cell, def site)` pairs alive on
/// some path to a program point.
pub type ReachFacts = BTreeSet<(Id, DefSite)>;

/// Reaching definitions for every group occurrence in a component.
#[derive(Debug, Clone, Default)]
pub struct ReachingDefs {
    reaching_in: BTreeMap<Id, ReachFacts>,
}

impl ReachingDefs {
    /// The defs reaching `group`'s entry, joined over every occurrence of
    /// the group in the schedule. `None` when the group is never enabled
    /// (the `dead-group` lint's territory, not ours).
    pub fn reaching_in(&self, group: Id) -> Option<&ReachFacts> {
        self.reaching_in.get(&group)
    }

    /// Can `cell` still hold its undefined power-on value when `group`
    /// runs? False for groups that never run.
    pub fn entry_reaches(&self, group: Id, cell: Id) -> bool {
        self.reaching_in
            .get(&group)
            .is_some_and(|f| f.contains(&(cell, DefSite::Entry)))
    }

    /// The group-write sites of `cell` that reach `group`'s entry.
    pub fn group_defs_reaching(&self, group: Id, cell: Id) -> Vec<Id> {
        self.reaching_in
            .get(&group)
            .map(|f| {
                f.iter()
                    .filter_map(|&(c, site)| match site {
                        DefSite::Group(g) if c == cell => Some(g),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

impl Analysis for ReachingDefs {
    type Output = ReachingDefs;
    const NAME: &'static str = "reaching-defs";

    fn compute(comp: &Component, cache: &mut AnalysisCache) -> ReachingDefs {
        let pcfg = cache.get::<Pcfg>(comp);
        let rw = cache.get::<ReadWriteSets>(comp);
        let transfer = ReachTransfer::new(comp, &rw);
        let boundary: ReachFacts = comp
            .cells
            .iter()
            .filter(|c| c.is_register() || c.is_memory())
            .map(|c| (c.name, DefSite::Entry))
            .collect();
        let mut defs = ReachingDefs::default();
        collect_reaching(&transfer, &pcfg, boundary, &mut defs);
        defs
    }
}

/// Solve `pcfg` from `boundary`, record every group node's input fact,
/// and recurse into p-node children with the fact at the p-node.
fn collect_reaching(
    transfer: &ReachTransfer,
    pcfg: &Pcfg,
    boundary: ReachFacts,
    defs: &mut ReachingDefs,
) {
    let sol = solve(pcfg, transfer, boundary);
    for (idx, node) in pcfg.nodes.iter().enumerate() {
        match node {
            PcfgNode::Nop => {}
            PcfgNode::Group(g) => {
                defs.reaching_in
                    .entry(*g)
                    .or_default()
                    .extend(sol.input[idx].iter().cloned());
            }
            PcfgNode::Par(children) => {
                for child in children {
                    collect_reaching(transfer, child, sol.input[idx].clone(), defs);
                }
            }
        }
    }
}

struct ReachTransfer<'a> {
    rw: &'a ReadWriteSets,
    /// Memories each group may write (`write_en` driven by anything but
    /// a literal 0) — [`ReadWriteSets`] tracks registers only.
    mem_writes: BTreeMap<Id, BTreeSet<Id>>,
}

impl<'a> ReachTransfer<'a> {
    fn new(comp: &Component, rw: &'a ReadWriteSets) -> Self {
        let memories: BTreeSet<Id> = comp
            .cells
            .iter()
            .filter(|c| c.is_memory())
            .map(|c| c.name)
            .collect();
        let mut mem_writes: BTreeMap<Id, BTreeSet<Id>> = BTreeMap::new();
        for group in comp.groups.iter() {
            let written = group
                .assignments
                .iter()
                .filter(|a| {
                    a.dst.port.as_str() == "write_en"
                        && !matches!(a.src, Atom::Const { val: 0, .. })
                })
                .filter_map(|a| match a.dst.parent {
                    PortParent::Cell(c) if memories.contains(&c) => Some(c),
                    _ => None,
                })
                .collect();
            mem_writes.insert(group.name, written);
        }
        ReachTransfer { rw, mem_writes }
    }
}

impl Transfer for ReachTransfer<'_> {
    type Fact = ReachFacts;
    const DIRECTION: Direction = Direction::Forward;

    fn group(&self, group: Id, fact: &Self::Fact) -> Self::Fact {
        let must = self.rw.must_writes(group);
        let mut out: ReachFacts = fact
            .iter()
            .filter(|(c, _)| !must.contains(c))
            .cloned()
            .collect();
        for &r in self.rw.may_writes(group) {
            out.insert((r, DefSite::Group(group)));
        }
        if let Some(mems) = self.mem_writes.get(&group) {
            // A memory write touches one address: it gens a def but never
            // kills the entry def of the untouched addresses.
            for &m in mems {
                out.insert((m, DefSite::Group(group)));
            }
        }
        out
    }

    fn par(&self, children: &[Pcfg], fact: &Self::Fact) -> Self::Fact {
        // Join the children's exits, then kill the entry defs of any
        // register some child certainly overwrote: after the p-node that
        // register holds a written value no matter how siblings
        // interleaved. Stale group defs from the join are conservative.
        let mut out = ReachFacts::new();
        let mut killed = BTreeSet::new();
        for child in children {
            let solved = solve(child, self, fact.clone());
            out.extend(solved.output[child.exit].iter().cloned());
            killed.extend(par_defs(child, self.rw));
        }
        out.retain(|&(c, site)| site != DefSite::Entry || !killed.contains(&c));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn analyze(src: &str) -> ReachingDefs {
        let ctx = parse_context(src).unwrap();
        let comp = ctx.component("main").unwrap();
        let mut cache = AnalysisCache::new();
        ReachingDefs::compute(comp, &mut cache)
    }

    #[test]
    fn must_write_kills_the_entry_def() {
        let defs = analyze(
            r#"component main() -> () {
                cells { r = std_reg(8); t = std_reg(8); }
                wires {
                  group init { r.in = 8'd1; r.write_en = 1'd1; init[done] = r.done; }
                  group read { t.in = r.out; t.write_en = 1'd1; read[done] = t.done; }
                }
                control { seq { init; read; } }
            }"#,
        );
        let (init, read, r) = (Id::new("init"), Id::new("read"), Id::new("r"));
        assert!(defs.entry_reaches(init, r), "nothing written before init");
        assert!(!defs.entry_reaches(read, r), "init killed the entry def");
        assert_eq!(defs.group_defs_reaching(read, r), vec![init]);
    }

    #[test]
    fn skipped_branch_keeps_the_entry_def_reaching() {
        let defs = analyze(
            r#"component main() -> () {
                cells { c = std_reg(1); r = std_reg(8); t = std_reg(8); }
                wires {
                  group init { r.in = 8'd1; r.write_en = 1'd1; init[done] = r.done; }
                  group read { t.in = r.out; t.write_en = 1'd1; read[done] = t.done; }
                }
                control { seq { if c.out { init; } read; } }
            }"#,
        );
        assert!(
            defs.entry_reaches(Id::new("read"), Id::new("r")),
            "the else path skips init"
        );
    }

    #[test]
    fn par_sibling_write_kills_the_entry_def() {
        let defs = analyze(
            r#"component main() -> () {
                cells { r = std_reg(8); s = std_reg(8); t = std_reg(8); }
                wires {
                  group wr { r.in = 8'd1; r.write_en = 1'd1; wr[done] = r.done; }
                  group ws { s.in = 8'd2; s.write_en = 1'd1; ws[done] = s.done; }
                  group read { t.in = r.out; t.write_en = 1'd1; read[done] = t.done; }
                }
                control { seq { par { wr; ws; } read; } }
            }"#,
        );
        assert!(!defs.entry_reaches(Id::new("read"), Id::new("r")));
        assert!(!defs.entry_reaches(Id::new("read"), Id::new("s")));
    }

    #[test]
    fn memory_writes_never_kill_the_entry_def() {
        let defs = analyze(
            r#"component main() -> () {
                cells { m = std_mem_d1(8, 4, 2); r = std_reg(8); }
                wires {
                  group store {
                    m.addr0 = 2'd0; m.write_data = 8'd1; m.write_en = 1'd1;
                    store[done] = m.done;
                  }
                  group load {
                    m.addr0 = 2'd1;
                    r.in = m.read_data; r.write_en = 1'd1;
                    load[done] = r.done;
                  }
                }
                control { seq { store; load; } }
            }"#,
        );
        let (load, m) = (Id::new("load"), Id::new("m"));
        assert!(
            defs.entry_reaches(load, m),
            "store wrote one address; the rest are still power-on"
        );
        assert_eq!(defs.group_defs_reaching(load, m), vec![Id::new("store")]);
    }

    #[test]
    fn loop_body_sees_its_own_defs_around_the_back_edge() {
        let defs = analyze(
            r#"component main() -> () {
                cells { lt = std_lt(8); i = std_reg(8); add = std_add(8); }
                wires {
                  group cond { lt.left = i.out; lt.right = 8'd10; cond[done] = 1'd1; }
                  group incr {
                    add.left = i.out; add.right = 8'd1;
                    i.in = add.out; i.write_en = 1'd1;
                    incr[done] = i.done;
                  }
                }
                control { while lt.out with cond { incr; } }
            }"#,
        );
        let (cond, i) = (Id::new("cond"), Id::new("i"));
        assert!(defs.entry_reaches(cond, i), "first iteration: power-on i");
        assert_eq!(defs.group_defs_reaching(cond, i), vec![Id::new("incr")]);
    }
}
