//! Liveness as a backward instance of the generic dataflow engine.
//!
//! This is the same analysis as the hand-rolled solver in
//! [`liveness`](crate::analysis::liveness) — identical flow equations,
//! identical p-node treatment (children solved with the p-node's
//! live-out as their boundary, straight-line must-writes as kills, uses
//! winning over kills) — expressed through [`Transfer`]. The hand-rolled
//! version stays as a differential oracle: both compute the least
//! fixpoint of the same monotone equations, so their results must be
//! byte-identical, and a test suite pins that on every PolyBench kernel.

use super::solver::{solve, Direction, Transfer};
use crate::analysis::liveness::{par_defs, Liveness};
use crate::analysis::pcfg::Pcfg;
use crate::analysis::read_write::ReadWriteSets;
use crate::ir::Id;
use std::collections::BTreeSet;

/// The liveness transfer function: `in = (out − must-writes) ∪ reads`.
pub struct LiveTransfer<'a> {
    rw: &'a ReadWriteSets,
}

impl Transfer for LiveTransfer<'_> {
    type Fact = BTreeSet<Id>;
    const DIRECTION: Direction = Direction::Backward;

    fn group(&self, group: Id, fact: &Self::Fact) -> Self::Fact {
        let mut inn: BTreeSet<Id> = fact
            .difference(self.rw.must_writes(group))
            .copied()
            .collect();
        inn.extend(self.rw.reads(group).iter().copied());
        inn
    }

    fn par(&self, children: &[Pcfg], fact: &Self::Fact) -> Self::Fact {
        // Paper §5.2: each child's live-out boundary is the p-node's
        // live-out; the p-node uses are the union of child live-ins and
        // its kills the union of child must-writes, with uses winning
        // (a register one child reads is not killed by a sibling).
        let mut uses = BTreeSet::new();
        let mut defs = BTreeSet::new();
        for child in children {
            let solved = solve(child, self, fact.clone());
            uses.extend(solved.input[child.entry].iter().copied());
            defs.extend(par_defs(child, self.rw));
        }
        let defs: BTreeSet<Id> = defs.difference(&uses).copied().collect();
        let mut inn: BTreeSet<Id> = fact.difference(&defs).copied().collect();
        inn.extend(uses);
        inn
    }
}

/// Solve liveness over `pcfg` with the generic engine, `boundary` live at
/// the exit. Drop-in equivalent of [`Liveness::solve`].
pub fn solve_liveness(pcfg: &Pcfg, rw: &ReadWriteSets, boundary: &BTreeSet<Id>) -> Liveness {
    let sol = solve(pcfg, &LiveTransfer { rw }, boundary.clone());
    Liveness {
        live_in: sol.input,
        live_out: sol.output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    /// The engine-backed solver and the hand-rolled oracle agree exactly
    /// on a program exercising seq, par, if, and while.
    #[test]
    fn agrees_with_the_hand_rolled_oracle() {
        let ctx = parse_context(
            r#"component main() -> () {
                cells {
                  i = std_reg(8); lt = std_lt(8); add = std_add(8);
                  a = std_reg(8); b = std_reg(8); c = std_reg(1);
                }
                wires {
                  group init { i.in = 8'd0; i.write_en = 1'd1; init[done] = i.done; }
                  group cond { lt.left = i.out; lt.right = 8'd10; cond[done] = 1'd1; }
                  group wa { a.in = i.out; a.write_en = 1'd1; wa[done] = a.done; }
                  group wb { b.in = 8'd2; b.write_en = 1'd1; wb[done] = b.done; }
                  group incr {
                    add.left = i.out; add.right = 8'd1;
                    i.in = add.out; i.write_en = 1'd1;
                    incr[done] = i.done;
                  }
                  group rb { a.in = b.out; a.write_en = 1'd1; rb[done] = a.done; }
                }
                control {
                  seq {
                    init;
                    while lt.out with cond {
                      seq { par { wa; wb; } if c.out { rb; } incr; }
                    }
                  }
                }
            }"#,
        )
        .unwrap();
        let comp = ctx.component("main").unwrap();
        let rw = ReadWriteSets::analyze(comp);
        let pcfg = Pcfg::from_control(&comp.control);
        for boundary in [BTreeSet::new(), [Id::new("a")].into_iter().collect()] {
            let oracle = Liveness::solve(&pcfg, &rw, &boundary);
            let engine = solve_liveness(&pcfg, &rw, &boundary);
            assert_eq!(oracle.live_in, engine.live_in);
            assert_eq!(oracle.live_out, engine.live_out);
        }
    }
}
