//! Reusable analyses over Calyx programs, served through a demand-driven,
//! memoized query layer.
//!
//! # The `Analysis` trait and the cache
//!
//! An analysis is a type implementing [`Analysis`]: a pure function
//! [`Analysis::compute`] from a [`Component`](crate::ir::Component) to a
//! typed result. Passes never call `compute` directly — they *query* the
//! per-component [`AnalysisCache`] (through
//! [`PassCtx`](crate::passes::PassCtx) inside visitor hooks):
//!
//! ```
//! use calyx_core::analysis::{AnalysisCache, ReadWriteSets};
//! use calyx_core::ir::parse_context;
//!
//! let ctx = parse_context(
//!     r#"component main() -> () {
//!         cells { r = std_reg(8); }
//!         wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
//!         control { g; }
//!     }"#,
//! )
//! .unwrap();
//! let comp = ctx.component("main").unwrap();
//!
//! let mut cache = AnalysisCache::new();
//! let rw = cache.get::<ReadWriteSets>(comp);   // miss: computed
//! let again = cache.get::<ReadWriteSets>(comp); // hit: shared result
//! assert!(std::rc::Rc::ptr_eq(&rw, &again));
//! assert_eq!(cache.stats().hits, 1);
//! ```
//!
//! Analyses depend on *each other* through the same cache —
//! [`Liveness`] pulls [`Pcfg`], [`ReadWriteSets`], and [`BoundaryRegs`]
//! with [`AnalysisCache::get`] instead of taking them as arguments — so a
//! prerequisite computed for one consumer is shared with every other.
//! Results are invalidated per component by *generation*: mutation signals
//! from the pass framework (see the [cache module docs](cache) for the
//! invalidation contract) bump the component's generation and drop its
//! entries, while read-only passes keep the cache warm across a whole
//! pipeline.
//!
//! # Registered analyses
//!
//! | Analysis | Computes | Depends on |
//! |----------|----------|------------|
//! | [`ParConflicts`] | which groups may execute in parallel (resource sharing, §5.1) | — |
//! | [`Pcfg`] | parallel control-flow graph with p-nodes (register sharing, §5.2) | — |
//! | [`ReadWriteSets`] | conservative register read/may-write/must-write sets per group | — |
//! | [`PortUses`] | port → reading/writing assignment sites, cell usage digests | — |
//! | [`BoundaryCells`] | cells observable outside the schedule (continuous/condition uses) | `PortUses` |
//! | [`BoundaryRegs`] | registers observable outside the schedule (live at exit) | `BoundaryCells` |
//! | [`Liveness`] | backward live-range dataflow over the pCFG (engine-backed) | `Pcfg`, `ReadWriteSets`, `BoundaryRegs` |
//! | [`Interference`] | register interference relation for sharing | `Pcfg`, `ReadWriteSets`, `Liveness` |
//! | [`ReachingDefs`] | forward def-site dataflow with power-on entry defs | `Pcfg`, `ReadWriteSets` |
//! | [`ConstProp`] | forward register constant propagation (flat lattice) | `Pcfg`, `ReadWriteSets` |
//!
//! The dataflow analyses are all instances of one generic worklist
//! fixpoint engine over the pCFG — see [`dataflow`] for the `Lattice` /
//! `Transfer` machinery and its p-node treatment.

pub mod cache;
pub mod conflict;
pub mod dataflow;
pub mod liveness;
pub mod pcfg;
pub mod port_uses;
pub mod read_write;

pub use cache::{Analysis, AnalysisCache, CacheStats};
pub use conflict::ParConflicts;
pub use dataflow::{ConstProp, ReachingDefs};
pub use liveness::{BoundaryCells, BoundaryRegs, Interference, Liveness};
pub use pcfg::{CondKind, CondSite, Pcfg, PcfgNode};
pub use port_uses::{AssignmentSite, PortUses, SiteOwner};
pub use read_write::ReadWriteSets;
