//! Reusable analyses over Calyx programs.
//!
//! These back the optimization passes described in the paper:
//!
//! - [`ParConflicts`](conflict::ParConflicts): which groups may execute in
//!   parallel (resource sharing, §5.1).
//! - [`Pcfg`](pcfg::Pcfg): parallel control-flow graphs with p-nodes
//!   (register sharing, §5.2, after Srinivasan & Wolfe).
//! - [`ReadWriteSets`](read_write::ReadWriteSets): conservative register
//!   read/may-write/must-write sets per group.
//! - [`Liveness`](liveness::Liveness): backward live-range dataflow over the
//!   pCFG.

pub mod conflict;
pub mod liveness;
pub mod pcfg;
pub mod read_write;
