//! Parallel control-flow graphs (paper §5.2, after Srinivasan & Wolfe).
//!
//! Most Calyx control maps onto an ordinary CFG, but `par` needs a special
//! *p-node* that executes **all** of its children: writes inside any child
//! are visible after the block, unlike an `if` where only one branch runs.
//! A p-node therefore recursively contains one sub-pCFG per child.

use super::cache::{Analysis, AnalysisCache};
use crate::ir::{Component, Control, Id, PortRef};

/// A node in the parallel CFG.
#[derive(Debug, Clone)]
pub enum PcfgNode {
    /// A no-op fork/join/entry/exit marker.
    Nop,
    /// Execution of a group (an enable, or a `with` condition evaluation).
    Group(Id),
    /// A `par` block: all children execute; each child is its own pCFG.
    Par(Vec<Pcfg>),
}

/// Which control construct a [`CondSite`] came from, with enough shape
/// information (arm/body emptiness) for lints to phrase their findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondKind {
    /// An `if`, recording whether each arm is non-empty.
    If {
        /// The then-arm is non-empty.
        has_then: bool,
        /// The else-arm is non-empty.
        has_else: bool,
    },
    /// A `while`, recording whether the body is non-empty.
    While {
        /// The loop body is non-empty.
        has_body: bool,
    },
}

/// A conditional control site (`if`/`while`) recorded while building the
/// pCFG: the head node where the condition is evaluated, the condition
/// port, and the optional `with` group. Dataflow clients (constant
/// propagation, the `const-loop` lint) use this to ask "what fact holds
/// where this condition is read?" without re-walking the control tree.
#[derive(Debug, Clone)]
pub struct CondSite {
    /// Head node index in *this* pCFG (sites inside `par` children live
    /// in the child's own [`Pcfg::conds`]).
    pub node: usize,
    /// The condition port.
    pub port: PortRef,
    /// The `with` condition group, when present.
    pub cond: Option<Id>,
    /// The construct and its arm/body shape.
    pub kind: CondKind,
}

/// A parallel control-flow graph with unique entry and exit markers.
#[derive(Debug, Clone)]
pub struct Pcfg {
    /// Node payloads, indexed by node id.
    pub nodes: Vec<PcfgNode>,
    /// Forward edges.
    pub succs: Vec<Vec<usize>>,
    /// Backward edges.
    pub preds: Vec<Vec<usize>>,
    /// Entry node (a [`PcfgNode::Nop`]).
    pub entry: usize,
    /// Exit node (a [`PcfgNode::Nop`]).
    pub exit: usize,
    /// `if`/`while` condition sites in this graph (not its p-node
    /// children — each child sub-pCFG records its own).
    pub conds: Vec<CondSite>,
}

impl Analysis for Pcfg {
    type Output = Pcfg;
    const NAME: &'static str = "pcfg";

    fn compute(comp: &Component, _cache: &mut AnalysisCache) -> Pcfg {
        Pcfg::from_control(&comp.control)
    }
}

impl Pcfg {
    /// Build the pCFG of a control program.
    pub fn from_control(control: &Control) -> Self {
        let mut g = Builder::default();
        let entry = g.add(PcfgNode::Nop);
        let exit = g.add(PcfgNode::Nop);
        let (first, last) = g.build(control, entry);
        // `build` returns the subgraph's entry/exit; wire the global exit.
        g.edge(last, exit);
        let _ = first;
        Pcfg {
            nodes: g.nodes,
            succs: g.succs,
            preds: g.preds,
            entry,
            exit,
            conds: g.conds,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes (never happens for built graphs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[derive(Default)]
struct Builder {
    nodes: Vec<PcfgNode>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    conds: Vec<CondSite>,
}

impl Builder {
    fn add(&mut self, node: PcfgNode) -> usize {
        self.nodes.push(node);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.succs[from].push(to);
        self.preds[to].push(from);
    }

    /// Append the subgraph for `control` after node `pred`; returns the
    /// subgraph's (first, last) node ids.
    fn build(&mut self, control: &Control, pred: usize) -> (usize, usize) {
        match control {
            Control::Empty => {
                let n = self.add(PcfgNode::Nop);
                self.edge(pred, n);
                (n, n)
            }
            Control::Enable { group, .. } => {
                let n = self.add(PcfgNode::Group(*group));
                self.edge(pred, n);
                (n, n)
            }
            Control::Seq { stmts, .. } => {
                let first = self.add(PcfgNode::Nop);
                self.edge(pred, first);
                let mut last = first;
                for stmt in stmts {
                    let (_, stmt_last) = self.build(stmt, last);
                    last = stmt_last;
                }
                (first, last)
            }
            Control::Par { stmts, .. } => {
                let children = stmts.iter().map(Pcfg::from_control).collect();
                let n = self.add(PcfgNode::Par(children));
                self.edge(pred, n);
                (n, n)
            }
            Control::If {
                port,
                cond,
                tbranch,
                fbranch,
                ..
            } => {
                let head = match cond {
                    Some(c) => self.add(PcfgNode::Group(*c)),
                    None => self.add(PcfgNode::Nop),
                };
                self.conds.push(CondSite {
                    node: head,
                    port: *port,
                    cond: *cond,
                    kind: CondKind::If {
                        has_then: !tbranch.is_empty(),
                        has_else: !fbranch.is_empty(),
                    },
                });
                self.edge(pred, head);
                let join = self.add(PcfgNode::Nop);
                let (_, t_last) = self.build(tbranch, head);
                self.edge(t_last, join);
                let (_, f_last) = self.build(fbranch, head);
                self.edge(f_last, join);
                (head, join)
            }
            Control::While {
                port, cond, body, ..
            } => {
                let head = match cond {
                    Some(c) => self.add(PcfgNode::Group(*c)),
                    None => self.add(PcfgNode::Nop),
                };
                self.conds.push(CondSite {
                    node: head,
                    port: *port,
                    cond: *cond,
                    kind: CondKind::While {
                        has_body: !body.is_empty(),
                    },
                });
                self.edge(pred, head);
                let (_, body_last) = self.build(body, head);
                // Back edge: after the body, the condition re-evaluates.
                self.edge(body_last, head);
                let exit = self.add(PcfgNode::Nop);
                self.edge(head, exit);
                (head, exit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::PortRef;

    fn groups_in(pcfg: &Pcfg) -> Vec<String> {
        let mut out = Vec::new();
        for n in &pcfg.nodes {
            match n {
                PcfgNode::Group(g) => out.push(g.to_string()),
                PcfgNode::Par(children) => {
                    for c in children {
                        out.extend(groups_in(c));
                    }
                }
                PcfgNode::Nop => {}
            }
        }
        out.sort();
        out
    }

    #[test]
    fn seq_chains_nodes() {
        let c = Control::seq(vec![Control::enable("a"), Control::enable("b")]);
        let g = Pcfg::from_control(&c);
        assert_eq!(groups_in(&g), vec!["a", "b"]);
        // a's successor chain reaches b.
        let a = g
            .nodes
            .iter()
            .position(|n| matches!(n, PcfgNode::Group(id) if id.as_str() == "a"))
            .unwrap();
        let b = g
            .nodes
            .iter()
            .position(|n| matches!(n, PcfgNode::Group(id) if id.as_str() == "b"))
            .unwrap();
        assert!(g.succs[a].contains(&b));
    }

    #[test]
    fn par_becomes_p_node_with_child_graphs() {
        // Paper Fig. 4: the p-node recursively contains its children.
        let c = Control::par(vec![
            Control::seq(vec![Control::enable("x0"), Control::enable("x1")]),
            Control::seq(vec![Control::enable("y0"), Control::enable("y1")]),
        ]);
        let g = Pcfg::from_control(&c);
        let p = g
            .nodes
            .iter()
            .find_map(|n| match n {
                PcfgNode::Par(children) => Some(children),
                _ => None,
            })
            .expect("p-node exists");
        assert_eq!(p.len(), 2);
        assert_eq!(groups_in(&g), vec!["x0", "x1", "y0", "y1"]);
    }

    #[test]
    fn while_has_back_edge() {
        let c = Control::while_(
            PortRef::cell("lt", "out"),
            Some(crate::ir::Id::new("cond")),
            Control::enable("body"),
        );
        let g = Pcfg::from_control(&c);
        let cond = g
            .nodes
            .iter()
            .position(|n| matches!(n, PcfgNode::Group(id) if id.as_str() == "cond"))
            .unwrap();
        let body = g
            .nodes
            .iter()
            .position(|n| matches!(n, PcfgNode::Group(id) if id.as_str() == "body"))
            .unwrap();
        assert!(g.succs[cond].contains(&body));
        assert!(g.succs[body].contains(&cond), "loop back edge");
    }

    #[test]
    fn if_joins_branches() {
        let c = Control::if_(
            PortRef::cell("lt", "out"),
            Some(crate::ir::Id::new("cond")),
            Control::enable("t"),
            Control::enable("f"),
        );
        let g = Pcfg::from_control(&c);
        let cond = g
            .nodes
            .iter()
            .position(|n| matches!(n, PcfgNode::Group(id) if id.as_str() == "cond"))
            .unwrap();
        // Condition node has two successors (the branches).
        assert_eq!(g.succs[cond].len(), 2);
    }
}
