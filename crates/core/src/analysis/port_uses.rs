//! Port-use sites: which assignments read and write each port.
//!
//! Several passes need "who touches what" facts over the whole wires
//! section — dead-cell removal needs every referenced cell, resource
//! sharing needs which groups use a cell and which cells the continuous
//! assignments pin, go-insertion needs each group's `done`-hole writers.
//! Before the [cache](super::cache), each pass re-walked every assignment
//! of every group to answer its own variant of the question; [`PortUses`]
//! answers all of them from one walk, built once per component generation.
//!
//! The site tables are stored as *flat sorted vectors* rather than
//! per-port maps: after lowering, a component's guards contain tens of
//! thousands of port reads, and building a `BTreeMap<PortRef, Vec<_>>`
//! (one allocation per port, string-comparing interned ids on every
//! insert) dominated the analysis. A bulk sort on the raw intern indices
//! followed by binary-searched range lookups is several times cheaper.

use super::cache::{Analysis, AnalysisCache};
use crate::ir::{Component, Id, PortParent, PortRef};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Where an assignment lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SiteOwner {
    /// Inside the named group.
    Group(Id),
    /// In the component's continuous `wires` section.
    Continuous,
}

/// One assignment site: its owner plus its index in the owner's assignment
/// list (stable until the component is mutated, which invalidates the
/// analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AssignmentSite {
    /// The group (or continuous section) holding the assignment.
    pub owner: SiteOwner,
    /// Index into the owner's assignment vector.
    pub index: usize,
}

/// Process-local sort key for grouping sites by port: raw intern indices,
/// never exposed (lookup tables only — iteration order is not observable).
fn port_key(p: &PortRef) -> (u8, u32, u32) {
    match p.parent {
        PortParent::Cell(c) => (0, c.raw(), p.port.raw()),
        PortParent::Group(g) => (1, g.raw(), p.port.raw()),
        PortParent::This => (2, 0, p.port.raw()),
    }
}

/// A flat multimap from port to sites, sorted by [`port_key`].
#[derive(Debug, Clone, Default)]
struct SiteTable(Vec<(PortRef, AssignmentSite)>);

impl SiteTable {
    /// Stable sort groups equal ports while preserving scan order within
    /// each port.
    fn finish(&mut self) {
        self.0.sort_by_key(|(p, _)| port_key(p));
    }

    fn get(&self, port: PortRef) -> &[(PortRef, AssignmentSite)] {
        let key = port_key(&port);
        let lo = self.0.partition_point(|(p, _)| port_key(p) < key);
        let hi = self.0.partition_point(|(p, _)| port_key(p) <= key);
        &self.0[lo..hi]
    }
}

/// Read/write sites per port, plus the cell-level digests passes consume.
#[derive(Debug, Clone, Default)]
pub struct PortUses {
    reads: SiteTable,
    writes: SiteTable,
    /// cell -> groups referencing it, in group definition order (first
    /// appearance), deduplicated.
    cell_users: BTreeMap<Id, Vec<Id>>,
    /// Cells referenced (read or written) by continuous assignments.
    continuous_cells: BTreeSet<Id>,
    /// Every cell referenced by any assignment anywhere.
    referenced_cells: BTreeSet<Id>,
}

/// Scan-time accumulator using hash containers (cheap `Id` hashing);
/// converted to deterministic sorted structures once at the end.
#[derive(Default)]
struct Scan {
    reads: SiteTable,
    writes: SiteTable,
    cell_users: HashMap<Id, Vec<Id>>,
    continuous_cells: HashSet<Id>,
    referenced_cells: HashSet<Id>,
}

impl Scan {
    fn record(&mut self, asgn: &crate::ir::Assignment, site: AssignmentSite, group: Option<Id>) {
        self.writes.0.push((asgn.dst, site));
        self.touch_cell(asgn.dst, group);
        for p in asgn.reads_iter() {
            self.reads.0.push((p, site));
            self.touch_cell(p, group);
        }
    }

    fn touch_cell(&mut self, port: PortRef, group: Option<Id>) {
        let Some(cell) = port.cell_parent() else {
            return;
        };
        self.referenced_cells.insert(cell);
        match group {
            Some(g) => {
                let users = self.cell_users.entry(cell).or_default();
                // Groups are scanned in definition order, so a repeat can
                // only be the most recent entry.
                if users.last() != Some(&g) {
                    users.push(g);
                }
            }
            None => {
                self.continuous_cells.insert(cell);
            }
        }
    }
}

impl PortUses {
    /// Scan every assignment of `comp` once.
    pub fn analyze(comp: &Component) -> Self {
        let mut scan = Scan::default();
        for group in comp.groups.iter() {
            let owner = SiteOwner::Group(group.name);
            for (index, asgn) in group.assignments.iter().enumerate() {
                scan.record(asgn, AssignmentSite { owner, index }, Some(group.name));
            }
        }
        for (index, asgn) in comp.continuous.iter().enumerate() {
            let site = AssignmentSite {
                owner: SiteOwner::Continuous,
                index,
            };
            scan.record(asgn, site, None);
        }
        let mut uses = PortUses {
            reads: scan.reads,
            writes: scan.writes,
            cell_users: scan.cell_users.into_iter().collect(),
            continuous_cells: scan.continuous_cells.into_iter().collect(),
            referenced_cells: scan.referenced_cells.into_iter().collect(),
        };
        uses.reads.finish();
        uses.writes.finish();
        uses
    }

    /// Sites reading `port`, in scan order (groups in definition order,
    /// then continuous assignments).
    pub fn reads(&self, port: PortRef) -> impl ExactSizeIterator<Item = AssignmentSite> + '_ {
        self.reads.get(port).iter().map(|(_, s)| *s)
    }

    /// Sites writing `port`, in scan order.
    pub fn writes(&self, port: PortRef) -> impl ExactSizeIterator<Item = AssignmentSite> + '_ {
        self.writes.get(port).iter().map(|(_, s)| *s)
    }

    /// Groups referencing `cell`, in group definition order.
    pub fn cell_users(&self, cell: Id) -> &[Id] {
        self.cell_users.get(&cell).map_or(&[], Vec::as_slice)
    }

    /// All (cell, using groups) pairs, cells in name order.
    pub fn cells_with_users(&self) -> impl Iterator<Item = (Id, &[Id])> + '_ {
        self.cell_users.iter().map(|(c, gs)| (*c, gs.as_slice()))
    }

    /// Cells referenced by continuous assignments (reads or writes).
    pub fn continuous_cells(&self) -> &BTreeSet<Id> {
        &self.continuous_cells
    }

    /// Every cell referenced by any assignment (group or continuous).
    pub fn referenced_cells(&self) -> &BTreeSet<Id> {
        &self.referenced_cells
    }
}

impl Analysis for PortUses {
    type Output = PortUses;
    const NAME: &'static str = "port-uses";

    fn compute(comp: &Component, _cache: &mut AnalysisCache) -> PortUses {
        PortUses::analyze(comp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn analyzed(src: &str) -> PortUses {
        let ctx = parse_context(src).unwrap();
        PortUses::analyze(ctx.component("main").unwrap())
    }

    const SRC: &str = r#"component main() -> (o: 8) {
        cells { r = std_reg(8); a = std_add(8); w = std_wire(8); }
        wires {
          o = w.out;
          w.in = a.out;
          group g0 {
            a.left = r.out; a.right = 8'd1;
            r.in = a.out; r.write_en = 1'd1;
            g0[done] = r.done;
          }
          group g1 { r.in = 8'd0; r.write_en = 1'd1; g1[done] = r.done; }
        }
        control { seq { g0; g1; } }
    }"#;

    #[test]
    fn records_read_and_write_sites() {
        let uses = analyzed(SRC);
        let g0 = SiteOwner::Group(Id::new("g0"));
        // `a.out` is read once in g0 (r.in = a.out) and once continuously.
        let reads: Vec<_> = uses.reads(PortRef::cell("a", "out")).collect();
        assert_eq!(reads.len(), 2);
        assert!(reads.iter().any(|s| s.owner == g0));
        assert!(reads.iter().any(|s| s.owner == SiteOwner::Continuous));
        // `r.in` is written in both groups.
        let owners: Vec<_> = uses
            .writes(PortRef::cell("r", "in"))
            .map(|s| s.owner)
            .collect();
        assert_eq!(
            owners,
            vec![g0, SiteOwner::Group(Id::new("g1"))],
            "sites follow group definition order"
        );
        assert_eq!(uses.reads(PortRef::cell("nope", "out")).len(), 0);
    }

    #[test]
    fn done_hole_writers_are_indexed() {
        let uses = analyzed(SRC);
        let sites: Vec<_> = uses.writes(PortRef::hole("g0", "done")).collect();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].owner, SiteOwner::Group(Id::new("g0")));
        assert_eq!(sites[0].index, 4, "done write is g0's fifth assignment");
    }

    #[test]
    fn cell_digests() {
        let uses = analyzed(SRC);
        assert_eq!(
            uses.cell_users(Id::new("r")),
            &[Id::new("g0"), Id::new("g1")]
        );
        assert_eq!(uses.cell_users(Id::new("a")), &[Id::new("g0")]);
        let cont: Vec<_> = uses.continuous_cells().iter().map(|c| c.as_str()).collect();
        assert_eq!(cont, vec!["a", "w"]);
        let all: Vec<_> = uses.referenced_cells().iter().map(|c| c.as_str()).collect();
        assert_eq!(all, vec!["a", "r", "w"]);
    }

    #[test]
    fn guard_reads_are_recorded() {
        let uses = analyzed(
            r#"component main() -> () {
                cells { r = std_reg(8); c = std_lt(8); }
                wires {
                  group g {
                    r.in = c.out ? 8'd1;
                    r.write_en = 1'd1;
                    g[done] = r.done;
                  }
                }
                control { g; }
            }"#,
        );
        assert_eq!(uses.reads(PortRef::cell("c", "out")).len(), 1);
        assert!(uses.referenced_cells().contains(&Id::new("c")));
    }
}
