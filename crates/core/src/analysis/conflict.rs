//! May-run-in-parallel conflict analysis (paper §5.1).
//!
//! Resource sharing needs to know which groups can never execute
//! simultaneously. Following the paper: the analysis "traverses the control
//! program and adds edges between all children of a `par` block. If the
//! children of the `par` block are themselves control programs, the pass
//! adds edges between the groups contained within each child."

use super::cache::{Analysis, AnalysisCache};
use crate::ir::{Component, Control, Id};
use std::collections::{BTreeMap, BTreeSet};

/// Symmetric group-level conflict relation: an edge means the two groups may
/// run in parallel.
#[derive(Debug, Clone, Default)]
pub struct ParConflicts {
    edges: BTreeMap<Id, BTreeSet<Id>>,
    groups: BTreeSet<Id>,
}

impl Analysis for ParConflicts {
    type Output = ParConflicts;
    const NAME: &'static str = "par-conflicts";

    fn compute(comp: &Component, _cache: &mut AnalysisCache) -> ParConflicts {
        ParConflicts::from_control(&comp.control)
    }
}

impl ParConflicts {
    /// Build the conflict relation for a control program.
    pub fn from_control(control: &Control) -> Self {
        let mut c = ParConflicts {
            groups: control.used_groups(),
            ..ParConflicts::default()
        };
        c.visit(control);
        c
    }

    fn add_edge(&mut self, a: Id, b: Id) {
        if a != b {
            self.edges.entry(a).or_default().insert(b);
            self.edges.entry(b).or_default().insert(a);
        }
    }

    fn visit(&mut self, control: &Control) {
        match control {
            Control::Empty | Control::Enable { .. } => {}
            Control::Seq { stmts, .. } => {
                for s in stmts {
                    self.visit(s);
                }
            }
            Control::Par { stmts, .. } => {
                for s in stmts {
                    self.visit(s);
                }
                // All pairs of groups under *different* children conflict.
                let child_groups: Vec<BTreeSet<Id>> =
                    stmts.iter().map(Control::used_groups).collect();
                for i in 0..child_groups.len() {
                    for j in (i + 1)..child_groups.len() {
                        for &a in &child_groups[i] {
                            for &b in &child_groups[j] {
                                self.add_edge(a, b);
                            }
                        }
                    }
                }
            }
            Control::If {
                tbranch, fbranch, ..
            } => {
                self.visit(tbranch);
                self.visit(fbranch);
            }
            Control::While { body, .. } => self.visit(body),
        }
    }

    /// May `a` and `b` execute in the same cycle?
    pub fn conflict(&self, a: Id, b: Id) -> bool {
        self.edges.get(&a).is_some_and(|s| s.contains(&b))
    }

    /// All groups the control program references.
    pub fn groups(&self) -> impl Iterator<Item = Id> + '_ {
        self.groups.iter().copied()
    }

    /// The groups conflicting with `g`.
    pub fn conflicts_of(&self, g: Id) -> impl Iterator<Item = Id> + '_ {
        self.edges.get(&g).into_iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Id {
        Id::new(s)
    }

    #[test]
    fn par_children_conflict() {
        // par { a; b; }
        let c = Control::par(vec![Control::enable("a"), Control::enable("b")]);
        let conflicts = ParConflicts::from_control(&c);
        assert!(conflicts.conflict(id("a"), id("b")));
        assert!(conflicts.conflict(id("b"), id("a")));
    }

    #[test]
    fn seq_children_do_not_conflict() {
        // The paper's Fig. 3: incr_r0 and incr_r1 in sequence can share.
        let c = Control::seq(vec![
            Control::par(vec![Control::enable("let_r0"), Control::enable("let_r1")]),
            Control::enable("incr_r0"),
            Control::enable("incr_r1"),
        ]);
        let conflicts = ParConflicts::from_control(&c);
        assert!(conflicts.conflict(id("let_r0"), id("let_r1")));
        assert!(!conflicts.conflict(id("incr_r0"), id("incr_r1")));
        assert!(!conflicts.conflict(id("let_r0"), id("incr_r0")));
    }

    #[test]
    fn nested_control_in_par_conflicts_transitively() {
        // par { seq { a; b; }; seq { c; d; } }
        let c = Control::par(vec![
            Control::seq(vec![Control::enable("a"), Control::enable("b")]),
            Control::seq(vec![Control::enable("c"), Control::enable("d")]),
        ]);
        let conflicts = ParConflicts::from_control(&c);
        for x in ["a", "b"] {
            for y in ["c", "d"] {
                assert!(conflicts.conflict(id(x), id(y)), "{x} vs {y}");
            }
        }
        // Within one child the groups are sequenced.
        assert!(!conflicts.conflict(id("a"), id("b")));
    }

    #[test]
    fn while_cond_group_conflicts_across_par() {
        use crate::ir::PortRef;
        let w = Control::while_(
            PortRef::cell("lt", "out"),
            Some(id("cond")),
            Control::enable("body"),
        );
        let c = Control::par(vec![w, Control::enable("other")]);
        let conflicts = ParConflicts::from_control(&c);
        assert!(conflicts.conflict(id("cond"), id("other")));
        assert!(conflicts.conflict(id("body"), id("other")));
        assert!(!conflicts.conflict(id("cond"), id("body")));
    }

    #[test]
    fn if_branches_do_not_conflict() {
        use crate::ir::PortRef;
        let c = Control::if_(
            PortRef::cell("lt", "out"),
            Some(id("cond")),
            Control::enable("t"),
            Control::enable("f"),
        );
        let conflicts = ParConflicts::from_control(&c);
        assert!(!conflicts.conflict(id("t"), id("f")));
    }
}
