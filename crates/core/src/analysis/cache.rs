//! The demand-driven analysis cache: typed, memoized, invalidation-aware
//! queries over components.
//!
//! Optimization passes are *analysis + rewrite*: resource sharing needs the
//! par-conflict graph, register minimization needs the pCFG, read/write
//! sets, liveness, and interference. Instead of each pass recomputing these
//! from scratch, passes *query* them through an [`AnalysisCache`] (usually
//! via [`PassCtx`](crate::passes::PassCtx)):
//!
//! - An analysis is a type implementing [`Analysis`]: a pure function from
//!   a [`Component`] to a result, which may itself pull other analyses
//!   through the cache (e.g. [`Liveness`](super::liveness::Liveness) pulls
//!   [`Pcfg`](super::pcfg::Pcfg) and
//!   [`ReadWriteSets`](super::read_write::ReadWriteSets)).
//! - The cache memoizes results per component, keyed by the analysis's
//!   [`TypeId`]. A repeated query is a *hit* and returns the stored result.
//! - Invalidation is generation-based: every mutation signal (an
//!   [`Action::Change`](crate::passes::Action), a component reported dirty
//!   through [`PassCtx::set_dirty`](crate::passes::PassCtx::set_dirty), or
//!   an explicit [`AnalysisCache::invalidate`]) bumps the component's
//!   generation and drops its cached results, so the next query recomputes
//!   against the mutated component. Read-only passes signal nothing and
//!   keep the cache warm across the whole pipeline.
//!
//! # The invalidation contract
//!
//! The cache cannot observe mutations — passes must report them. The rule:
//! **after mutating anything an analysis might read (cells, groups,
//! assignments, guards, the control tree), signal dirty before the next
//! query observes the component.** Returning
//! [`Action::Change`](crate::passes::Action::Change) from a visitor hook
//! signals automatically; direct mutations through `&mut Component` require
//! [`PassCtx::set_dirty`](crate::passes::PassCtx::set_dirty). The one
//! sanctioned exception: *attributes* are invisible to every registered
//! analysis, so attribute-only passes (latency inference) may skip the
//! signal — if a future analysis reads attributes, those passes must start
//! signaling.
//!
//! Failing to signal is a correctness bug (a later pass acts on stale
//! facts); signaling spuriously only costs recomputation.

use crate::ir::{Component, Id};
use std::any::{Any, TypeId};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// A memoizable analysis over one component.
///
/// Implementations are *types used as keys*: the analysis is identified by
/// its `TypeId`, computed by [`Analysis::compute`], and stored as
/// [`Analysis::Output`] (usually `Self`). `compute` receives the cache so
/// analyses can depend on each other — pull prerequisites with
/// [`AnalysisCache::get`] instead of taking them as arguments, and the
/// cache shares them with every other consumer.
///
/// `compute` must be a pure function of the component: no reading of
/// global state, no dependence on query order. Cyclic dependencies are a
/// programming error and panic.
pub trait Analysis: 'static {
    /// The computed result stored in the cache.
    type Output: 'static;

    /// Kebab-case analysis name, used in diagnostics.
    const NAME: &'static str;

    /// Compute the analysis for `comp`, pulling dependencies from `cache`.
    fn compute(comp: &Component, cache: &mut AnalysisCache) -> Self::Output;
}

/// Hit/miss/recompute counters, reported per pass by
/// [`PassManager`](crate::passes::PassManager) and `futil --stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the memo table.
    pub hits: u64,
    /// Queries that ran [`Analysis::compute`].
    pub misses: u64,
    /// The subset of misses that re-ran an analysis previously computed
    /// for the same component (i.e. work repeated because of invalidation
    /// or disabled caching).
    pub recomputes: u64,
}

impl CacheStats {
    /// Sum of two stat blocks (used to total a pipeline's counters).
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            recomputes: self.recomputes + other.recomputes,
        }
    }
}

/// A per-component, generation-invalidated memo table of analysis results.
///
/// See the [module docs](self) for the design and the invalidation
/// contract. Results are stored behind [`Rc`] so dependent analyses can
/// hold a result while the cache keeps computing (and so hits are O(1)
/// clone-of-pointer, never a deep copy).
///
/// Entries are keyed by *component name*: a cache belongs to exactly one
/// program ([`Context`](crate::ir::Context)). Reusing a cache across
/// different programs would serve one program's facts for another's
/// same-named components — construct a fresh cache (what
/// [`Pass::run`](crate::passes::Pass::run) and
/// [`PassManager::run`](crate::passes::PassManager::run) do) or keep one
/// cache per program when driving
/// [`run_with_cache`](crate::passes::PassManager::run_with_cache)
/// yourself.
#[derive(Default)]
pub struct AnalysisCache {
    /// component -> analysis TypeId -> result.
    entries: HashMap<Id, HashMap<TypeId, Rc<dyn Any>>>,
    /// Monotonic per-component generation; bumped on every invalidation.
    generations: HashMap<Id, u64>,
    /// (component, analysis) pairs ever computed — distinguishes first
    /// computes from recomputes in [`CacheStats`].
    ever_computed: HashSet<(Id, TypeId)>,
    /// Queries currently being computed, to catch cyclic dependencies and
    /// to record dependency edges for cascading invalidation.
    in_flight: Vec<(Id, TypeId, &'static str)>,
    /// Observed dependency edges: (component, analysis) -> analyses whose
    /// `compute` queried it. Drives [`AnalysisCache::invalidate_analysis`]
    /// cascades so a dependent never outlives its inputs.
    dependents: HashMap<(Id, TypeId), HashSet<TypeId>>,
    /// When set, every query recomputes (the differential-testing and
    /// benchmarking baseline).
    disabled: bool,
    /// Counters since the last [`AnalysisCache::take_stats`].
    stats: CacheStats,
}

impl AnalysisCache {
    /// An empty, enabled cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache that never memoizes: every [`AnalysisCache::get`] runs
    /// [`Analysis::compute`]. Used as the baseline for differential tests
    /// (cached and uncached pipelines must produce byte-identical output)
    /// and benchmarks.
    pub fn recompute_every_query() -> Self {
        AnalysisCache {
            disabled: true,
            ..Self::default()
        }
    }

    /// Is this the recompute-every-query baseline?
    pub fn caching_disabled(&self) -> bool {
        self.disabled
    }

    /// Query analysis `A` for `comp`, computing and memoizing on a miss.
    ///
    /// # Panics
    ///
    /// Panics when `A::compute` (transitively) queries `A` for the same
    /// component — a cyclic analysis dependency.
    pub fn get<A: Analysis>(&mut self, comp: &Component) -> Rc<A::Output> {
        let key = TypeId::of::<A>();
        // A query issued while another analysis computes is a dependency
        // edge: remember it so invalidating this analysis later also drops
        // the dependent.
        if let Some(&(parent_comp, parent_key, _)) = self.in_flight.last() {
            if parent_comp == comp.name {
                self.dependents
                    .entry((comp.name, key))
                    .or_default()
                    .insert(parent_key);
            }
        }
        if !self.disabled {
            if let Some(hit) = self.entries.get(&comp.name).and_then(|m| m.get(&key)) {
                self.stats.hits += 1;
                return hit
                    .clone()
                    .downcast::<A::Output>()
                    .expect("entries are keyed by the analysis TypeId");
            }
        }
        self.stats.misses += 1;
        if !self.ever_computed.insert((comp.name, key)) {
            self.stats.recomputes += 1;
        }
        assert!(
            !self
                .in_flight
                .iter()
                .any(|(c, t, _)| *c == comp.name && *t == key),
            "cyclic analysis dependency: `{}` (for `{}`) transitively depends on itself; \
             chain: {:?}",
            A::NAME,
            comp.name,
            self.in_flight
                .iter()
                .map(|(_, _, n)| *n)
                .collect::<Vec<_>>(),
        );
        self.in_flight.push((comp.name, key, A::NAME));
        let value = Rc::new(A::compute(comp, self));
        self.in_flight.pop();
        if !self.disabled {
            self.entries
                .entry(comp.name)
                .or_default()
                .insert(key, value.clone() as Rc<dyn Any>);
        }
        value
    }

    /// Drop the cached result of analysis `A` for component `comp`, plus
    /// — recursively — every cached analysis observed to depend on it
    /// (dependency edges are recorded whenever one `compute` queries
    /// another), so a dependent can never outlive its inputs. Finer-
    /// grained than [`AnalysisCache::invalidate`]: the component's
    /// generation is not bumped and unrelated analyses stay cached. Use
    /// when a pass knows exactly which facts its mutation staled.
    pub fn invalidate_analysis<A: Analysis>(&mut self, comp: Id) {
        self.invalidate_key(comp, TypeId::of::<A>());
    }

    /// [`AnalysisCache::invalidate_analysis`] by raw key, cascading to
    /// recorded dependents. Terminates because dependency edges mirror
    /// `compute` calls, which the cycle check keeps acyclic.
    fn invalidate_key(&mut self, comp: Id, key: TypeId) {
        if let Some(m) = self.entries.get_mut(&comp) {
            m.remove(&key);
        }
        if let Some(deps) = self.dependents.get(&(comp, key)) {
            for dep in deps.clone() {
                self.invalidate_key(comp, dep);
            }
        }
    }

    /// Invalidate everything cached for `comp`: bump its generation and
    /// drop all of its entries. This is the mutation signal —
    /// [`PassCtx`](crate::passes::PassCtx) calls it for dirty components.
    pub fn invalidate(&mut self, comp: Id) {
        *self.generations.entry(comp).or_default() += 1;
        self.entries.remove(&comp);
    }

    /// The component's invalidation generation (0 until first invalidated).
    pub fn generation(&self, comp: Id) -> u64 {
        self.generations.get(&comp).copied().unwrap_or_default()
    }

    /// Take (and reset) the counters accumulated since the last call —
    /// how [`PassManager`](crate::passes::PassManager) attributes stats to
    /// individual passes.
    pub fn take_stats(&mut self) -> CacheStats {
        std::mem::take(&mut self.stats)
    }

    /// Counters accumulated since the last [`AnalysisCache::take_stats`].
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Context;

    /// Counts how many cells the component has (cheap leaf analysis).
    struct CellCount;
    impl Analysis for CellCount {
        type Output = usize;
        const NAME: &'static str = "cell-count";
        fn compute(comp: &Component, _cache: &mut AnalysisCache) -> usize {
            comp.cells.len()
        }
    }

    /// Depends on `CellCount` through the cache.
    struct CellCountPlusOne;
    impl Analysis for CellCountPlusOne {
        type Output = usize;
        const NAME: &'static str = "cell-count-plus-one";
        fn compute(comp: &Component, cache: &mut AnalysisCache) -> usize {
            *cache.get::<CellCount>(comp) + 1
        }
    }

    /// Cyclic: depends on itself.
    struct Cyclic;
    impl Analysis for Cyclic {
        type Output = ();
        const NAME: &'static str = "cyclic";
        fn compute(comp: &Component, cache: &mut AnalysisCache) {
            let () = *cache.get::<Cyclic>(comp);
        }
    }

    fn comp() -> Component {
        Context::new().new_component("main")
    }

    #[test]
    fn repeated_queries_hit() {
        let comp = comp();
        let mut cache = AnalysisCache::new();
        assert_eq!(*cache.get::<CellCount>(&comp), 0);
        assert_eq!(*cache.get::<CellCount>(&comp), 0);
        let stats = cache.take_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.recomputes, 0);
    }

    #[test]
    fn dependencies_are_pulled_through_the_cache() {
        let comp = comp();
        let mut cache = AnalysisCache::new();
        assert_eq!(*cache.get::<CellCountPlusOne>(&comp), 1);
        // The dependency is now cached too.
        cache.take_stats();
        cache.get::<CellCount>(&comp);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn invalidation_bumps_generation_and_forces_recompute() {
        let comp = comp();
        let mut cache = AnalysisCache::new();
        cache.get::<CellCount>(&comp);
        assert_eq!(cache.generation(comp.name), 0);
        cache.invalidate(comp.name);
        assert_eq!(cache.generation(comp.name), 1);
        cache.take_stats();
        cache.get::<CellCount>(&comp);
        let stats = cache.take_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.recomputes, 1, "post-invalidation miss is a recompute");
    }

    #[test]
    fn per_analysis_invalidation_keeps_other_entries() {
        let comp = comp();
        let mut cache = AnalysisCache::new();
        cache.get::<CellCount>(&comp);
        cache.get::<CellCountPlusOne>(&comp);
        cache.invalidate_analysis::<CellCountPlusOne>(comp.name);
        assert_eq!(cache.generation(comp.name), 0, "generation untouched");
        cache.take_stats();
        cache.get::<CellCount>(&comp);
        cache.get::<CellCountPlusOne>(&comp);
        let stats = cache.take_stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    /// Depends on `CellCountPlusOne` (a two-level chain for the cascade).
    struct CellCountPlusTwo;
    impl Analysis for CellCountPlusTwo {
        type Output = usize;
        const NAME: &'static str = "cell-count-plus-two";
        fn compute(comp: &Component, cache: &mut AnalysisCache) -> usize {
            *cache.get::<CellCountPlusOne>(comp) + 1
        }
    }

    /// Invalidating an analysis also drops everything computed *from* it —
    /// transitively — so a cached dependent can never outlive its inputs.
    #[test]
    fn per_analysis_invalidation_cascades_to_dependents() {
        let comp = comp();
        let mut cache = AnalysisCache::new();
        cache.get::<CellCountPlusTwo>(&comp); // caches all three levels
        cache.invalidate_analysis::<CellCount>(comp.name);
        cache.take_stats();
        cache.get::<CellCountPlusTwo>(&comp);
        let stats = cache.take_stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 3),
            "the whole dependent chain must recompute"
        );
        // Dependents recorded through a *hit* cascade too: recompute the
        // chain, then re-query the middle level (a hit) and invalidate the
        // leaf again.
        cache.get::<CellCountPlusOne>(&comp);
        cache.invalidate_analysis::<CellCount>(comp.name);
        cache.take_stats();
        cache.get::<CellCountPlusOne>(&comp);
        assert_eq!(cache.take_stats().hits, 0);
    }

    #[test]
    fn entries_are_per_component() {
        let ctx = Context::new();
        let a = ctx.new_component("a");
        let b = ctx.new_component("b");
        let mut cache = AnalysisCache::new();
        cache.get::<CellCount>(&a);
        cache.invalidate(b.name);
        cache.take_stats();
        cache.get::<CellCount>(&a);
        assert_eq!(cache.stats().hits, 1, "a's entry survives b's invalidation");
    }

    #[test]
    fn disabled_cache_recomputes_every_query() {
        let comp = comp();
        let mut cache = AnalysisCache::recompute_every_query();
        assert!(cache.caching_disabled());
        cache.get::<CellCountPlusOne>(&comp);
        cache.get::<CellCountPlusOne>(&comp);
        let stats = cache.take_stats();
        assert_eq!(stats.hits, 0);
        // 2 top-level queries + 2 dependency pulls, second round all
        // recomputes.
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.recomputes, 2);
    }

    #[test]
    #[should_panic(expected = "cyclic analysis dependency")]
    fn cyclic_dependency_panics() {
        let comp = comp();
        AnalysisCache::new().get::<Cyclic>(&comp);
    }
}
