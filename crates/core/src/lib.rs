//! The Calyx intermediate language and its pass-based compiler.
//!
//! Calyx (Nigam et al., ASPLOS 2021) is an intermediate language for
//! compiling domain-specific languages to hardware. It combines a
//! hardware-like *structural* sub-language — components instantiate cells
//! and connect their ports with guarded, non-blocking assignments — with a
//! software-like *control* sub-language (`seq`, `par`, `if`, `while`) that
//! schedules *groups* of assignments.
//!
//! This crate contains:
//!
//! - [`ir`]: the program representation (components, cells, wires, groups,
//!   control, attributes), a builder API for frontends, a pretty printer,
//!   and a parser for the textual format.
//! - [`analysis`]: reusable analyses — control-flow conflict graphs,
//!   parallel control-flow graphs (pCFGs), live-range analysis, read/write
//!   sets, and port-use sites — served through a demand-driven, memoized
//!   query cache with generation-based invalidation.
//! - [`passes`]: the compiler passes, including the lowering pipeline
//!   (`GoInsertion` → `CompileControl` → `RemoveGroups`) that turns control
//!   programs into latency-insensitive finite-state machines, the
//!   latency-sensitive `StaticTiming` compiler, and the optimization passes
//!   described in the paper (resource sharing, register sharing, latency
//!   inference).
//! - [`lint`]: the `futil check` diagnostics engine — accumulating,
//!   position-carrying diagnostics and a registry of read-only lints
//!   (par-race detection, combinational cycles, dead code, …) that reuse
//!   the cached analyses.
//!
//! # Example
//!
//! Build the two-group sequence from Figure 2 of the paper and lower it:
//!
//! ```
//! use calyx_core::ir::{Builder, Context, Control};
//! use calyx_core::passes;
//!
//! # fn main() -> Result<(), calyx_core::errors::Error> {
//! let mut ctx = Context::new();
//! let mut comp = ctx.new_component("main");
//! {
//!     let mut b = Builder::new(&mut comp, &ctx);
//!     let x = b.add_primitive("x", "std_reg", &[32]);
//!     let one = b.add_group("one");
//!     b.asgn_const(one, (x, "in"), 1, 32);
//!     b.asgn_const(one, (x, "write_en"), 1, 1);
//!     b.group_done(one, (x, "done"));
//!     let two = b.add_group("two");
//!     b.asgn_const(two, (x, "in"), 2, 32);
//!     b.asgn_const(two, (x, "write_en"), 1, 1);
//!     b.group_done(two, (x, "done"));
//!     b.set_control(Control::seq(vec![Control::enable(one), Control::enable(two)]));
//! }
//! ctx.add_component(comp);
//! passes::lower_pipeline().run(&mut ctx)?;
//! // After lowering, no groups or control statements remain.
//! let main = ctx.component("main").unwrap();
//! assert!(main.groups.is_empty());
//! assert!(main.control.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod errors;
pub mod ir;
pub mod lint;
pub mod passes;
pub mod utils;
