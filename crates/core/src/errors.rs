//! Error types shared by the Calyx compiler.

use std::fmt;

/// The error type returned by compiler entry points.
///
/// Variants record which phase produced the error so that driver code (and
/// test assertions) can distinguish malformed input from internal misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The textual frontend rejected the input.
    Parse {
        /// Explanation of what went wrong.
        msg: String,
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
    },
    /// A program failed structural validation (see
    /// [`WellFormed`](crate::passes::WellFormed)).
    Malformed(String),
    /// A pass could not complete.
    Pass {
        /// Name of the failing pass.
        pass: &'static str,
        /// Explanation of what went wrong.
        msg: String,
    },
    /// An IR construction helper was misused (e.g. a reference to an
    /// undefined port or a duplicate cell name).
    BuildError(String),
    /// A name lookup failed.
    Undefined(String),
    /// An output sink failed while a backend was streaming emission
    /// (wraps [`std::io::Error`], stringified so the error stays `Clone`
    /// and comparable).
    Io(String),
    /// A backend failed at run time (e.g. a simulation timeout) on an
    /// otherwise well-formed program.
    Backend {
        /// Name of the failing backend.
        backend: &'static str,
        /// Explanation of what went wrong.
        msg: String,
    },
}

impl Error {
    /// Construct a [`Error::Malformed`] from anything printable.
    pub fn malformed(msg: impl fmt::Display) -> Self {
        Error::Malformed(msg.to_string())
    }

    /// Construct a [`Error::Pass`] for pass `pass`.
    pub fn pass(pass: &'static str, msg: impl fmt::Display) -> Self {
        Error::Pass {
            pass,
            msg: msg.to_string(),
        }
    }

    /// Construct a [`Error::BuildError`] from anything printable.
    pub fn build(msg: impl fmt::Display) -> Self {
        Error::BuildError(msg.to_string())
    }

    /// Construct a [`Error::Undefined`] from anything printable.
    pub fn undefined(msg: impl fmt::Display) -> Self {
        Error::Undefined(msg.to_string())
    }

    /// Construct a [`Error::Backend`] for backend `backend`.
    pub fn backend(backend: &'static str, msg: impl fmt::Display) -> Self {
        Error::Backend {
            backend,
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { msg, line, col } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            Error::Malformed(msg) => write!(f, "malformed program: {msg}"),
            Error::Pass { pass, msg } => write!(f, "pass `{pass}` failed: {msg}"),
            Error::BuildError(msg) => write!(f, "IR construction error: {msg}"),
            Error::Undefined(msg) => write!(f, "undefined name: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::Backend { backend, msg } => {
                write!(f, "backend `{backend}` failed: {msg}")
            }
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the compiler.
pub type CalyxResult<T> = Result<T, Error>;
