//! Error types shared by the Calyx compiler.

use std::fmt;

/// The error type returned by compiler entry points.
///
/// Variants record which phase produced the error so that driver code (and
/// test assertions) can distinguish malformed input from internal misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The textual frontend rejected the input.
    Parse {
        /// Explanation of what went wrong.
        msg: String,
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
    },
    /// A program failed structural validation (see
    /// [`WellFormed`](crate::passes::WellFormed)).
    Malformed(String),
    /// A pass could not complete.
    Pass {
        /// Name of the failing pass.
        pass: &'static str,
        /// Explanation of what went wrong.
        msg: String,
    },
    /// An IR construction helper was misused (e.g. a reference to an
    /// undefined port or a duplicate cell name).
    BuildError(String),
    /// A name lookup failed.
    Undefined(String),
    /// An output sink failed while a backend was streaming emission
    /// (wraps [`std::io::Error`], stringified so the error stays `Clone`
    /// and comparable).
    Io(String),
    /// A backend failed at run time (e.g. a simulation timeout) on an
    /// otherwise well-formed program.
    Backend {
        /// Name of the failing backend.
        backend: &'static str,
        /// Explanation of what went wrong.
        msg: String,
    },
}

impl Error {
    /// Construct a [`Error::Malformed`] from anything printable.
    pub fn malformed(msg: impl fmt::Display) -> Self {
        Error::Malformed(msg.to_string())
    }

    /// Construct a [`Error::Pass`] for pass `pass`.
    pub fn pass(pass: &'static str, msg: impl fmt::Display) -> Self {
        Error::Pass {
            pass,
            msg: msg.to_string(),
        }
    }

    /// Construct a [`Error::BuildError`] from anything printable.
    pub fn build(msg: impl fmt::Display) -> Self {
        Error::BuildError(msg.to_string())
    }

    /// Construct a [`Error::Undefined`] from anything printable.
    pub fn undefined(msg: impl fmt::Display) -> Self {
        Error::Undefined(msg.to_string())
    }

    /// Construct a [`Error::Backend`] for backend `backend`.
    pub fn backend(backend: &'static str, msg: impl fmt::Display) -> Self {
        Error::Backend {
            backend,
            msg: msg.to_string(),
        }
    }

    /// Render a file-anchored caret diagnostic for an [`Error::Parse`]
    /// against the source text it was produced from: the message
    /// prefixed with `file:line:col`, then the offending source line
    /// with a `^` caret under the column —
    ///
    /// ```text
    /// parse error at prog.futil:3:9: expected `=`
    ///  3 | group g {
    ///    |         ^
    /// ```
    ///
    /// Returns `None` for every other variant (they carry no position),
    /// so drivers can fall back to plain [`fmt::Display`]. When the
    /// recorded line is out of range for `src` (e.g. an unexpected end
    /// of input), only the header is rendered. Tabs in the source line
    /// are preserved in the caret gutter so the caret stays aligned.
    pub fn caret_diagnostic(&self, file: &str, src: &str) -> Option<String> {
        let Error::Parse { msg, line, col } = self else {
            return None;
        };
        let mut out = format!("parse error at {file}:{line}:{col}: {msg}");
        if let Some(snippet) = caret_snippet(src, *line, *col) {
            out.push('\n');
            out.push_str(&snippet);
        }
        Some(out)
    }
}

/// Render the two-line source snippet under a caret diagnostic header:
/// the offending source line with its line-number margin, then a `^`
/// caret under the 1-based `col` —
///
/// ```text
///  3 | group g {
///    |         ^
/// ```
///
/// Shared by [`Error::caret_diagnostic`] and the lint
/// [`Diagnostic`](crate::lint::Diagnostic) renderer so every positioned
/// message in the toolchain draws spans the same way. Returns `None`
/// when `line` is out of range for `src` (e.g. an unexpected end of
/// input), letting callers degrade to a bare header.
pub fn caret_snippet(src: &str, line: usize, col: usize) -> Option<String> {
    let text = line.checked_sub(1).and_then(|i| src.lines().nth(i))?;
    // The caret gutter mirrors each pre-column character as a space
    // (tabs stay tabs) so the `^` lands under the column even with
    // mixed indentation; a column past the end clamps to just after
    // the line, so a wild column can't push the caret into the void.
    let clamped = col.saturating_sub(1).min(text.chars().count());
    let gutter: String = text
        .chars()
        .take(clamped)
        .map(|c| if c == '\t' { '\t' } else { ' ' })
        .collect();
    let margin = line.to_string();
    Some(format!(
        " {margin} | {text}\n {blank} | {gutter}^",
        blank = " ".repeat(margin.len())
    ))
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { msg, line, col } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            Error::Malformed(msg) => write!(f, "malformed program: {msg}"),
            Error::Pass { pass, msg } => write!(f, "pass `{pass}` failed: {msg}"),
            Error::BuildError(msg) => write!(f, "IR construction error: {msg}"),
            Error::Undefined(msg) => write!(f, "undefined name: {msg}"),
            Error::Io(msg) => write!(f, "i/o error: {msg}"),
            Error::Backend { backend, msg } => {
                write!(f, "backend `{backend}` failed: {msg}")
            }
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the compiler.
pub type CalyxResult<T> = Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caret_diagnostic_underlines_the_column() {
        let err = Error::Parse {
            msg: "expected `=`".to_string(),
            line: 2,
            col: 9,
        };
        let src = "cells {\n  group g {\n}\n";
        let rendered = err.caret_diagnostic("prog.futil", src).unwrap();
        assert_eq!(
            rendered,
            "parse error at prog.futil:2:9: expected `=`\n \
             2 |   group g {\n   |         ^"
        );
    }

    #[test]
    fn caret_diagnostic_preserves_tabs_in_the_gutter() {
        let err = Error::Parse {
            msg: "bad".to_string(),
            line: 1,
            col: 3,
        };
        let rendered = err.caret_diagnostic("f", "\t\tx").unwrap();
        assert!(rendered.ends_with(" | \t\tx\n   | \t\t^"), "{rendered:?}");
    }

    #[test]
    fn caret_diagnostic_degrades_to_the_header_past_eof() {
        let err = Error::Parse {
            msg: "unexpected end of input".to_string(),
            line: 9,
            col: 1,
        };
        assert_eq!(
            err.caret_diagnostic("f.futil", "one line\n").unwrap(),
            "parse error at f.futil:9:1: unexpected end of input"
        );
    }

    #[test]
    fn caret_diagnostic_clamps_columns_past_the_line_end() {
        let err = Error::Parse {
            msg: "expected `;`".to_string(),
            line: 1,
            col: 50,
        };
        let rendered = err.caret_diagnostic("f", "g").unwrap();
        assert!(rendered.ends_with(" 1 | g\n   |  ^"), "{rendered:?}");
    }

    #[test]
    fn caret_snippet_is_usable_standalone() {
        assert_eq!(
            caret_snippet("a\nbcd\n", 2, 2).unwrap(),
            " 2 | bcd\n   |  ^"
        );
        assert!(caret_snippet("a\n", 5, 1).is_none());
    }

    #[test]
    fn non_parse_errors_have_no_diagnostic() {
        assert!(Error::malformed("nope")
            .caret_diagnostic("f", "src")
            .is_none());
    }
}
