//! The standard primitive library.
//!
//! Primitives are the leaves of the hardware hierarchy: registers, adders,
//! memories, and pipelined arithmetic units. Each [`PrimitiveDef`] declares
//! parameters (widths and sizes) and ports whose widths may reference those
//! parameters; instantiation resolves the widths to concrete values.
//!
//! Timing conventions (shared with the simulator and the Verilog backend):
//!
//! - Combinational primitives (`is_comb`) settle within a cycle.
//! - `std_reg` and memories commit on the clock edge; their `done` port is
//!   *registered*, reading 1 the cycle after `write_en` was high.
//! - `std_mult_pipe`/`std_div_pipe` assert `done` exactly 4 cycles after
//!   `go` is sampled (the paper's "multiplies take four cycles", §6.2).
//! - `std_sqrt` has *data-dependent* latency — it exercises the
//!   latency-insensitive compilation path, like the paper's black-box RTL
//!   square root.

use super::{attr, Attributes, Direction, Id, PortDef};
use crate::errors::{CalyxResult, Error};
use std::collections::HashMap;

/// A port width: either a constant or a reference to a primitive parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WidthSpec {
    /// A fixed width.
    Const(u32),
    /// The value of the named parameter.
    Param(Id),
}

/// A port on a primitive definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimitivePort {
    /// Port name.
    pub name: Id,
    /// Width, possibly parameter-dependent.
    pub width: WidthSpec,
    /// Direction from the primitive's perspective.
    pub direction: Direction,
}

/// The definition of a primitive component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimitiveDef {
    /// Primitive name, e.g. `std_add`.
    pub name: Id,
    /// Parameter names in declaration order, e.g. `[WIDTH]`.
    pub params: Vec<Id>,
    /// Port declarations.
    pub ports: Vec<PrimitivePort>,
    /// Definition-level attributes (`share`, `static`).
    pub attributes: Attributes,
    /// True when the primitive is purely combinational.
    pub is_comb: bool,
}

impl PrimitiveDef {
    /// Fixed latency in cycles, if the primitive declares one.
    pub fn static_latency(&self) -> Option<u64> {
        self.attributes.get(attr::static_())
    }

    /// True when marked shareable for resource sharing.
    pub fn is_shareable(&self) -> bool {
        self.attributes.has(attr::share())
    }

    /// Resolve this definition's ports against concrete parameter values.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BuildError`] when the number of parameters is wrong
    /// or a parameter-sized width resolves to zero or exceeds 64 bits.
    pub fn resolve(&self, params: &[u64]) -> CalyxResult<Vec<PortDef>> {
        if params.len() != self.params.len() {
            return Err(Error::build(format!(
                "primitive `{}` takes {} parameter(s), got {}",
                self.name,
                self.params.len(),
                params.len()
            )));
        }
        let env: HashMap<Id, u64> = self
            .params
            .iter()
            .copied()
            .zip(params.iter().copied())
            .collect();
        self.ports
            .iter()
            .map(|p| {
                let width = match p.width {
                    WidthSpec::Const(w) => u64::from(w),
                    WidthSpec::Param(name) => env[&name],
                };
                if width == 0 || width > 64 {
                    return Err(Error::build(format!(
                        "primitive `{}` port `{}` resolves to unsupported width {width}",
                        self.name, p.name
                    )));
                }
                Ok(PortDef::new(p.name, width as u32, p.direction))
            })
            .collect()
    }
}

/// The collection of known primitives (plus `extern` black-box components).
#[derive(Debug, Clone)]
pub struct Library {
    prims: HashMap<Id, PrimitiveDef>,
}

impl Default for Library {
    fn default() -> Self {
        Self::std()
    }
}

/// Shorthand used by [`Library::std`] below.
struct Sig(&'static str, &'static [&'static str]);

impl Library {
    /// An empty library (no primitives). Useful for tests that define their
    /// own.
    pub fn empty() -> Self {
        Library {
            prims: HashMap::new(),
        }
    }

    /// The standard library every [`Context`](super::Context) starts with.
    pub fn std() -> Self {
        use Direction::{Input, Output};
        let mut lib = Library::empty();

        let w = WidthSpec::Param(Id::new("WIDTH"));
        let one = WidthSpec::Const(1);

        // Registers: in, write_en -> out, done. `done` is registered.
        lib.define(
            Sig("std_reg", &["WIDTH"]),
            vec![
                ("in", w, Input),
                ("write_en", one, Input),
                ("out", w, Output),
                ("done", one, Output),
            ],
            Attributes::new().with(attr::static_(), 1),
            false,
        );

        // A named wire; useful for fan-out control and port adaptation.
        lib.define(
            Sig("std_wire", &["WIDTH"]),
            vec![("in", w, Input), ("out", w, Output)],
            Attributes::new(),
            true,
        );

        // Combinational binary arithmetic/logic: left, right -> out.
        for name in [
            "std_add", "std_sub", "std_and", "std_or", "std_xor", "std_lsh", "std_rsh",
        ] {
            lib.define(
                Sig(name, &["WIDTH"]),
                vec![("left", w, Input), ("right", w, Input), ("out", w, Output)],
                Attributes::new().with(attr::share(), 1),
                true,
            );
        }

        // Bitwise negation.
        lib.define(
            Sig("std_not", &["WIDTH"]),
            vec![("in", w, Input), ("out", w, Output)],
            Attributes::new().with(attr::share(), 1),
            true,
        );

        // Comparisons: left, right -> out (1 bit). Both unsigned and signed
        // views are provided; the signed ones interpret operands as two's
        // complement at the declared width.
        for name in [
            "std_lt", "std_gt", "std_eq", "std_neq", "std_ge", "std_le", "std_slt", "std_sgt",
        ] {
            lib.define(
                Sig(name, &["WIDTH"]),
                vec![
                    ("left", w, Input),
                    ("right", w, Input),
                    ("out", one, Output),
                ],
                Attributes::new().with(attr::share(), 1),
                true,
            );
        }

        // Width adaptation: truncation and zero-extension.
        let iw = WidthSpec::Param(Id::new("IN_WIDTH"));
        let ow = WidthSpec::Param(Id::new("OUT_WIDTH"));
        for name in ["std_slice", "std_pad"] {
            lib.define(
                Sig(name, &["IN_WIDTH", "OUT_WIDTH"]),
                vec![("in", iw, Input), ("out", ow, Output)],
                Attributes::new().with(attr::share(), 1),
                true,
            );
        }

        // Pipelined multiplier/divider: 4-cycle latency, go/done interface.
        lib.define(
            Sig("std_mult_pipe", &["WIDTH"]),
            vec![
                ("left", w, Input),
                ("right", w, Input),
                ("go", one, Input),
                ("out", w, Output),
                ("done", one, Output),
            ],
            Attributes::new()
                .with(attr::static_(), 4)
                .with(attr::share(), 1),
            false,
        );
        lib.define(
            Sig("std_div_pipe", &["WIDTH"]),
            vec![
                ("left", w, Input),
                ("right", w, Input),
                ("go", one, Input),
                ("out_quotient", w, Output),
                ("out_remainder", w, Output),
                ("done", one, Output),
            ],
            Attributes::new()
                .with(attr::static_(), 4)
                .with(attr::share(), 1),
            false,
        );

        // Integer square root with data-dependent latency (the paper's
        // black-box `sqrt.sv` example; exercises latency-insensitive code).
        lib.define(
            Sig("std_sqrt", &["WIDTH"]),
            vec![
                ("in", w, Input),
                ("go", one, Input),
                ("out", w, Output),
                ("done", one, Output),
            ],
            Attributes::new(),
            false,
        );

        // Memories. Reads are combinational on the address ports; writes
        // commit on the clock edge with a registered `done`.
        let size = |n: &str| WidthSpec::Param(Id::new(n));
        lib.define_mem(
            "std_mem_d1",
            &["WIDTH", "SIZE", "IDX_SIZE"],
            vec![("addr0", size("IDX_SIZE"))],
        );
        lib.define_mem(
            "std_mem_d2",
            &["WIDTH", "D0_SIZE", "D1_SIZE", "D0_IDX_SIZE", "D1_IDX_SIZE"],
            vec![
                ("addr0", size("D0_IDX_SIZE")),
                ("addr1", size("D1_IDX_SIZE")),
            ],
        );
        lib.define_mem(
            "std_mem_d3",
            &[
                "WIDTH",
                "D0_SIZE",
                "D1_SIZE",
                "D2_SIZE",
                "D0_IDX_SIZE",
                "D1_IDX_SIZE",
                "D2_IDX_SIZE",
            ],
            vec![
                ("addr0", size("D0_IDX_SIZE")),
                ("addr1", size("D1_IDX_SIZE")),
                ("addr2", size("D2_IDX_SIZE")),
            ],
        );
        lib
    }

    fn define(
        &mut self,
        sig: Sig,
        ports: Vec<(&str, WidthSpec, Direction)>,
        attributes: Attributes,
        is_comb: bool,
    ) {
        let def = PrimitiveDef {
            name: Id::new(sig.0),
            params: sig.1.iter().map(Id::new).collect(),
            ports: ports
                .into_iter()
                .map(|(n, w, d)| PrimitivePort {
                    name: Id::new(n),
                    width: w,
                    direction: d,
                })
                .collect(),
            attributes,
            is_comb,
        };
        self.prims.insert(def.name, def);
    }

    fn define_mem(
        &mut self,
        name: &'static str,
        params: &'static [&'static str],
        addrs: Vec<(&str, WidthSpec)>,
    ) {
        use Direction::{Input, Output};
        let w = WidthSpec::Param(Id::new("WIDTH"));
        let one = WidthSpec::Const(1);
        let mut ports: Vec<(&str, WidthSpec, Direction)> = addrs
            .into_iter()
            .map(|(n, spec)| (n, spec, Input))
            .collect();
        ports.push(("write_data", w, Input));
        ports.push(("write_en", one, Input));
        ports.push(("read_data", w, Output));
        ports.push(("done", one, Output));
        self.define(
            Sig(name, params),
            ports,
            Attributes::new().with(attr::static_(), 1),
            false,
        );
    }

    /// Register an additional primitive (used for `extern` declarations).
    pub fn add(&mut self, def: PrimitiveDef) -> Option<PrimitiveDef> {
        self.prims.insert(def.name, def)
    }

    /// Look up a primitive by name.
    pub fn get(&self, name: Id) -> Option<&PrimitiveDef> {
        self.prims.get(&name)
    }

    /// Look up a primitive, erroring when absent.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] when no primitive named `name` exists.
    pub fn expect(&self, name: Id) -> CalyxResult<&PrimitiveDef> {
        self.get(name)
            .ok_or_else(|| Error::undefined(format!("primitive `{name}`")))
    }

    /// Iterate over all definitions (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &PrimitiveDef> {
        self.prims.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_reg_resolves_widths() {
        let lib = Library::std();
        let reg = lib.expect(Id::new("std_reg")).unwrap();
        let ports = reg.resolve(&[32]).unwrap();
        let by_name = |n: &str| ports.iter().find(|p| p.name.as_str() == n).unwrap();
        assert_eq!(by_name("in").width, 32);
        assert_eq!(by_name("write_en").width, 1);
        assert_eq!(by_name("done").width, 1);
        assert_eq!(by_name("in").direction, Direction::Input);
        assert_eq!(by_name("out").direction, Direction::Output);
    }

    #[test]
    fn wrong_param_count_is_an_error() {
        let lib = Library::std();
        let add = lib.expect(Id::new("std_add")).unwrap();
        assert!(add.resolve(&[]).is_err());
        assert!(add.resolve(&[32, 4]).is_err());
    }

    #[test]
    fn zero_width_rejected() {
        let lib = Library::std();
        let add = lib.expect(Id::new("std_add")).unwrap();
        assert!(add.resolve(&[0]).is_err());
        assert!(add.resolve(&[65]).is_err());
    }

    #[test]
    fn memory_ports() {
        let lib = Library::std();
        let mem = lib.expect(Id::new("std_mem_d2")).unwrap();
        let ports = mem.resolve(&[32, 4, 8, 2, 3]).unwrap();
        let by_name = |n: &str| ports.iter().find(|p| p.name.as_str() == n).unwrap();
        assert_eq!(by_name("addr0").width, 2);
        assert_eq!(by_name("addr1").width, 3);
        assert_eq!(by_name("read_data").width, 32);
    }

    #[test]
    fn latency_and_share_attributes() {
        let lib = Library::std();
        assert_eq!(
            lib.expect(Id::new("std_reg")).unwrap().static_latency(),
            Some(1)
        );
        assert_eq!(
            lib.expect(Id::new("std_mult_pipe"))
                .unwrap()
                .static_latency(),
            Some(4)
        );
        assert!(lib.expect(Id::new("std_add")).unwrap().is_shareable());
        assert!(!lib.expect(Id::new("std_reg")).unwrap().is_shareable());
        assert!(lib
            .expect(Id::new("std_sqrt"))
            .unwrap()
            .static_latency()
            .is_none());
    }

    #[test]
    fn combinational_marking() {
        let lib = Library::std();
        assert!(lib.expect(Id::new("std_add")).unwrap().is_comb);
        assert!(!lib.expect(Id::new("std_reg")).unwrap().is_comb);
        assert!(!lib.expect(Id::new("std_mem_d1")).unwrap().is_comb);
    }
}
