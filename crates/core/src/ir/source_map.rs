//! Source locations for parsed programs.
//!
//! The IR itself is position-free: passes synthesize cells, groups, and
//! assignments wholesale, and attaching spans to every node would tax the
//! (heavily cloned and compared) core types for information only
//! diagnostics consume. Instead the parser records a [`SourceMap`] *side
//! table* keyed by the stable names diagnostics talk about — components,
//! cells, groups, signature ports — plus assignment indices, and the
//! [`Context`](super::Context) carries it along. Generated programs (the
//! builder API, frontends other than the native parser) simply leave the
//! map empty; every lookup is an `Option`, so consumers degrade to
//! span-free messages.
//!
//! The map also records **constant truncation events**: `4'd20` masks to
//! `4` at lex time (hardware semantics), so the only place the over-wide
//! literal is observable is the lexer — the
//! [`width-truncation`](crate::lint) lint replays these events.

use super::Id;
use std::collections::BTreeMap;

/// A 1-based source position (line, column) — the same coordinates
/// [`Error::Parse`](crate::errors::Error) reports and
/// [`caret_snippet`](crate::errors::caret_snippet) renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Loc {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// A sized literal whose value did not fit its declared width and was
/// truncated at parse time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncation {
    /// Position of the literal.
    pub loc: Loc,
    /// Declared width in bits.
    pub width: u32,
    /// The value as written.
    pub val: u64,
    /// The value actually kept (`val` masked to `width` bits).
    pub kept: u64,
}

/// Name-keyed source locations recorded by the parser.
///
/// Keys are `(component, name)` pairs (assignments add the index within
/// their group or the continuous section), so the table stays valid as
/// long as the named entities exist — passes that synthesize or rename
/// entities simply produce names with no entry.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    cells: BTreeMap<(Id, Id), Loc>,
    groups: BTreeMap<(Id, Id), Loc>,
    ports: BTreeMap<(Id, Id), Loc>,
    /// `(component, group, index)`; `None` is the continuous section.
    assignments: BTreeMap<(Id, Option<Id>, usize), Loc>,
    truncations: Vec<Truncation>,
}

impl SourceMap {
    /// True when nothing was recorded (e.g. a generated program).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
            && self.groups.is_empty()
            && self.ports.is_empty()
            && self.assignments.is_empty()
            && self.truncations.is_empty()
    }

    /// Record where cell `cell` of component `comp` is declared.
    pub fn record_cell(&mut self, comp: Id, cell: Id, loc: Loc) {
        self.cells.insert((comp, cell), loc);
    }

    /// Where cell `cell` of component `comp` is declared, if known.
    pub fn cell(&self, comp: Id, cell: Id) -> Option<Loc> {
        self.cells.get(&(comp, cell)).copied()
    }

    /// Record where group `group` of component `comp` is declared.
    pub fn record_group(&mut self, comp: Id, group: Id, loc: Loc) {
        self.groups.insert((comp, group), loc);
    }

    /// Where group `group` of component `comp` is declared, if known.
    pub fn group(&self, comp: Id, group: Id) -> Option<Loc> {
        self.groups.get(&(comp, group)).copied()
    }

    /// Record where signature port `port` of component `comp` is declared.
    pub fn record_port(&mut self, comp: Id, port: Id, loc: Loc) {
        self.ports.insert((comp, port), loc);
    }

    /// Where signature port `port` of component `comp` is declared.
    pub fn port(&self, comp: Id, port: Id) -> Option<Loc> {
        self.ports.get(&(comp, port)).copied()
    }

    /// Record where assignment `index` of `group` (or of the continuous
    /// section, for `None`) in component `comp` starts.
    pub fn record_assignment(&mut self, comp: Id, group: Option<Id>, index: usize, loc: Loc) {
        self.assignments.insert((comp, group, index), loc);
    }

    /// Where assignment `index` of `group` (`None` = continuous section)
    /// in component `comp` starts, if known.
    pub fn assignment(&self, comp: Id, group: Option<Id>, index: usize) -> Option<Loc> {
        self.assignments.get(&(comp, group, index)).copied()
    }

    /// Record a constant-truncation event.
    pub fn record_truncation(&mut self, t: Truncation) {
        self.truncations.push(t);
    }

    /// Every truncated literal, in source order.
    pub fn truncations(&self) -> &[Truncation] {
        &self.truncations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_mirror_records() {
        let mut sm = SourceMap::default();
        assert!(sm.is_empty());
        let (main, r, g) = (Id::new("main"), Id::new("r"), Id::new("g"));
        sm.record_cell(main, r, Loc { line: 2, col: 11 });
        sm.record_group(main, g, Loc { line: 4, col: 7 });
        sm.record_assignment(main, Some(g), 0, Loc { line: 5, col: 9 });
        sm.record_assignment(main, None, 0, Loc { line: 9, col: 3 });
        assert_eq!(sm.cell(main, r), Some(Loc { line: 2, col: 11 }));
        assert_eq!(sm.cell(main, g), None);
        assert_eq!(sm.group(main, g), Some(Loc { line: 4, col: 7 }));
        assert_eq!(
            sm.assignment(main, Some(g), 0),
            Some(Loc { line: 5, col: 9 })
        );
        assert_eq!(sm.assignment(main, None, 0), Some(Loc { line: 9, col: 3 }));
        assert_eq!(sm.assignment(main, Some(g), 1), None);
        assert!(!sm.is_empty());
    }

    #[test]
    fn truncations_keep_source_order() {
        let mut sm = SourceMap::default();
        for line in [3, 1] {
            sm.record_truncation(Truncation {
                loc: Loc { line, col: 1 },
                width: 4,
                val: 20,
                kept: 4,
            });
        }
        let lines: Vec<usize> = sm.truncations().iter().map(|t| t.loc.line).collect();
        assert_eq!(lines, vec![3, 1], "insertion order, not sorted");
    }
}
