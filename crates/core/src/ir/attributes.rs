//! Key–value attributes (paper §3.5).
//!
//! Attributes let frontends and passes attach information to components,
//! cells, groups, ports, and control statements without extending the IL.
//! The paper's examples: `"latency"`/`"static"` for cycle counts consumed by
//! the latency-sensitive compiler, and `"share"` marking components that the
//! resource-sharing pass may duplicate across groups.

use super::Id;
use std::collections::BTreeMap;

/// Names of attributes with meaning to the compiler itself.
pub mod attr {
    use super::Id;

    /// Latency in cycles; consumed by
    /// [`StaticTiming`](crate::passes::StaticTiming) and produced by
    /// [`InferStaticTiming`](crate::passes::InferStaticTiming).
    pub fn static_() -> Id {
        Id::new("static")
    }

    /// Marks a cell type safe for
    /// [`ResourceSharing`](crate::passes::ResourceSharing).
    pub fn share() -> Id {
        Id::new("share")
    }

    /// Marks a memory whose contents are externally visible; such cells are
    /// never shared and survive dead-cell removal.
    pub fn external() -> Id {
        Id::new("external")
    }

    /// Marks the implicit `go`/`done` interface ports on components.
    pub fn interface() -> Id {
        Id::new("interface")
    }

    /// Marks compiler-generated FSM state registers so area reporting can
    /// distinguish control from data state.
    pub fn fsm() -> Id {
        Id::new("fsm")
    }

    /// Marks compiler-generated groups (compilation groups).
    pub fn generated() -> Id {
        Id::new("generated")
    }
}

/// An ordered collection of `name = value` attributes.
///
/// ```
/// use calyx_core::ir::{attr, Attributes};
/// let mut attrs = Attributes::default();
/// attrs.insert(attr::static_(), 3);
/// assert_eq!(attrs.get(attr::static_()), Some(3));
/// assert!(attrs.has(attr::static_()));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Attributes(BTreeMap<Id, u64>);

impl Attributes {
    /// An empty attribute set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `key` to `value`, returning the previous value if present.
    pub fn insert(&mut self, key: Id, value: u64) -> Option<u64> {
        self.0.insert(key, value)
    }

    /// The value bound to `key`, if any.
    pub fn get(&self, key: Id) -> Option<u64> {
        self.0.get(&key).copied()
    }

    /// True when `key` is bound (to any value).
    pub fn has(&self, key: Id) -> bool {
        self.0.contains_key(&key)
    }

    /// Remove `key`, returning its value if it was bound.
    pub fn remove(&mut self, key: Id) -> Option<u64> {
        self.0.remove(&key)
    }

    /// True when no attributes are set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, u64)> + '_ {
        self.0.iter().map(|(k, v)| (*k, *v))
    }

    /// Builder-style insertion for construction sites.
    pub fn with(mut self, key: Id, value: u64) -> Self {
        self.insert(key, value);
        self
    }
}

impl FromIterator<(Id, u64)> for Attributes {
    fn from_iter<T: IntoIterator<Item = (Id, u64)>>(iter: T) -> Self {
        Attributes(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut a = Attributes::new();
        assert_eq!(a.insert(attr::static_(), 2), None);
        assert_eq!(a.insert(attr::static_(), 5), Some(2));
        assert_eq!(a.get(attr::static_()), Some(5));
        assert_eq!(a.remove(attr::static_()), Some(5));
        assert!(a.is_empty());
    }

    #[test]
    fn iterates_in_name_order() {
        let a: Attributes = [(Id::new("z"), 1), (Id::new("a"), 2)].into_iter().collect();
        let keys: Vec<_> = a.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }

    #[test]
    fn with_chains() {
        let a = Attributes::new()
            .with(attr::share(), 1)
            .with(attr::static_(), 4);
        assert!(a.has(attr::share()));
        assert_eq!(a.get(attr::static_()), Some(4));
    }
}
