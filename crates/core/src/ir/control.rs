//! The control sub-language (paper §3.4).
//!
//! Control statements schedule group executions. Unlike groups they have no
//! direct hardware analog; the
//! [`CompileControl`](crate::passes::CompileControl) pass realizes them with
//! finite-state machines.

use super::{Attributes, Id, PortRef};

/// A control program.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Control {
    /// No-op. The control program of a fully lowered component.
    #[default]
    Empty,
    /// Pass control to a group; finishes when the group raises `done`.
    Enable {
        /// The enabled group.
        group: Id,
        /// Statement attributes (e.g. inferred `"static"` latency).
        attributes: Attributes,
    },
    /// Run statements in order.
    Seq {
        /// The sub-programs, executed left to right.
        stmts: Vec<Control>,
        /// Statement attributes.
        attributes: Attributes,
    },
    /// Run statements in parallel; finishes when all have finished once.
    Par {
        /// The sub-programs, executed concurrently.
        stmts: Vec<Control>,
        /// Statement attributes.
        attributes: Attributes,
    },
    /// Run `cond`, then branch on the 1-bit value of `port`.
    If {
        /// The 1-bit condition port.
        port: PortRef,
        /// Group that computes the value on `port` (the `with` group).
        cond: Option<Id>,
        /// Executed when `port` is 1.
        tbranch: Box<Control>,
        /// Executed when `port` is 0.
        fbranch: Box<Control>,
        /// Statement attributes.
        attributes: Attributes,
    },
    /// Repeatedly run `cond`; while `port` reads 1, run the body.
    While {
        /// The 1-bit condition port.
        port: PortRef,
        /// Group that computes the value on `port` (the `with` group).
        cond: Option<Id>,
        /// The loop body.
        body: Box<Control>,
        /// Statement attributes.
        attributes: Attributes,
    },
}

impl Control {
    /// An enable of `group` with no attributes.
    pub fn enable(group: impl Into<Id>) -> Self {
        Control::Enable {
            group: group.into(),
            attributes: Attributes::new(),
        }
    }

    /// A `seq` over `stmts`.
    pub fn seq(stmts: Vec<Control>) -> Self {
        Control::Seq {
            stmts,
            attributes: Attributes::new(),
        }
    }

    /// A `par` over `stmts`.
    pub fn par(stmts: Vec<Control>) -> Self {
        Control::Par {
            stmts,
            attributes: Attributes::new(),
        }
    }

    /// An `if port with cond { t } else { f }`.
    pub fn if_(port: PortRef, cond: Option<Id>, tbranch: Control, fbranch: Control) -> Self {
        Control::If {
            port,
            cond,
            tbranch: Box::new(tbranch),
            fbranch: Box::new(fbranch),
            attributes: Attributes::new(),
        }
    }

    /// A `while port with cond { body }`.
    pub fn while_(port: PortRef, cond: Option<Id>, body: Control) -> Self {
        Control::While {
            port,
            cond,
            body: Box::new(body),
            attributes: Attributes::new(),
        }
    }

    /// True for [`Control::Empty`].
    pub fn is_empty(&self) -> bool {
        matches!(self, Control::Empty)
    }

    /// This statement's attributes (`Empty` has none and returns `None`).
    pub fn attributes(&self) -> Option<&Attributes> {
        match self {
            Control::Empty => None,
            Control::Enable { attributes, .. }
            | Control::Seq { attributes, .. }
            | Control::Par { attributes, .. }
            | Control::If { attributes, .. }
            | Control::While { attributes, .. } => Some(attributes),
        }
    }

    /// Mutable access to this statement's attributes.
    pub fn attributes_mut(&mut self) -> Option<&mut Attributes> {
        match self {
            Control::Empty => None,
            Control::Enable { attributes, .. }
            | Control::Seq { attributes, .. }
            | Control::Par { attributes, .. }
            | Control::If { attributes, .. }
            | Control::While { attributes, .. } => Some(attributes),
        }
    }

    /// The statement's `"static"` latency attribute, if annotated.
    pub fn static_latency(&self) -> Option<u64> {
        self.attributes()
            .and_then(|a| a.get(super::attr::static_()))
    }

    /// Visit every enabled group name (including `with` condition groups).
    pub fn for_each_group(&self, f: &mut impl FnMut(Id)) {
        match self {
            Control::Empty => {}
            Control::Enable { group, .. } => f(*group),
            Control::Seq { stmts, .. } | Control::Par { stmts, .. } => {
                for s in stmts {
                    s.for_each_group(f);
                }
            }
            Control::If {
                cond,
                tbranch,
                fbranch,
                ..
            } => {
                if let Some(c) = cond {
                    f(*c);
                }
                tbranch.for_each_group(f);
                fbranch.for_each_group(f);
            }
            Control::While { cond, body, .. } => {
                if let Some(c) = cond {
                    f(*c);
                }
                body.for_each_group(f);
            }
        }
    }

    /// The set of groups referenced anywhere in the program.
    pub fn used_groups(&self) -> std::collections::BTreeSet<Id> {
        let mut set = std::collections::BTreeSet::new();
        self.for_each_group(&mut |g| {
            set.insert(g);
        });
        set
    }

    /// Number of control statements in the program, counting every node
    /// (`seq`/`par`/`if`/`while` operators and group enables) but not
    /// `Empty`. This is the metric reported in the paper's §7.4.
    pub fn statement_count(&self) -> usize {
        match self {
            Control::Empty => 0,
            Control::Enable { .. } => 1,
            Control::Seq { stmts, .. } | Control::Par { stmts, .. } => {
                1 + stmts.iter().map(Control::statement_count).sum::<usize>()
            }
            Control::If {
                tbranch, fbranch, ..
            } => 1 + tbranch.statement_count() + fbranch.statement_count(),
            Control::While { body, .. } => 1 + body.statement_count(),
        }
    }

    /// Rename groups through `map` (used by sharing passes when merging).
    pub fn rename_groups(&mut self, map: &std::collections::HashMap<Id, Id>) {
        match self {
            Control::Empty => {}
            Control::Enable { group, .. } => {
                if let Some(n) = map.get(group) {
                    *group = *n;
                }
            }
            Control::Seq { stmts, .. } | Control::Par { stmts, .. } => {
                for s in stmts {
                    s.rename_groups(map);
                }
            }
            Control::If {
                cond,
                tbranch,
                fbranch,
                ..
            } => {
                if let Some(c) = cond {
                    if let Some(n) = map.get(c) {
                        *c = *n;
                    }
                }
                tbranch.rename_groups(map);
                fbranch.rename_groups(map);
            }
            Control::While { cond, body, .. } => {
                if let Some(c) = cond {
                    if let Some(n) = map.get(c) {
                        *c = *n;
                    }
                }
                body.rename_groups(map);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Control {
        // seq { a; par { b; c }; if p with g { d } else {} while p with g { e } }
        let p = PortRef::cell("cmp", "out");
        Control::seq(vec![
            Control::enable("a"),
            Control::par(vec![Control::enable("b"), Control::enable("c")]),
            Control::if_(p, Some(Id::new("g")), Control::enable("d"), Control::Empty),
            Control::while_(p, Some(Id::new("g")), Control::enable("e")),
        ])
    }

    #[test]
    fn used_groups_includes_cond_groups() {
        let groups: Vec<_> = sample()
            .used_groups()
            .into_iter()
            .map(|g| g.as_str())
            .collect();
        assert_eq!(groups, vec!["a", "b", "c", "d", "e", "g"]);
    }

    #[test]
    fn statement_count_counts_operators_and_enables() {
        // seq + a + par + b + c + if + d + while + e = 9
        assert_eq!(sample().statement_count(), 9);
        assert_eq!(Control::Empty.statement_count(), 0);
    }

    #[test]
    fn rename_groups_renames_enables_and_conds() {
        let mut c = sample();
        let map = [(Id::new("a"), Id::new("a2")), (Id::new("g"), Id::new("g2"))]
            .into_iter()
            .collect();
        c.rename_groups(&map);
        let groups = c.used_groups();
        assert!(groups.contains(&Id::new("a2")));
        assert!(groups.contains(&Id::new("g2")));
        assert!(!groups.contains(&Id::new("a")));
    }

    #[test]
    fn static_latency_reads_attribute() {
        let mut c = Control::enable("a");
        assert_eq!(c.static_latency(), None);
        c.attributes_mut()
            .unwrap()
            .insert(crate::ir::attr::static_(), 7);
        assert_eq!(c.static_latency(), Some(7));
    }
}
