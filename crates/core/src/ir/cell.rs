//! Cells, ports, and guarded assignments (paper §3.2).

use super::{Attributes, Guard, Id};
use crate::utils::Named;

/// Direction of a port from the perspective of its owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Data flows into the owner.
    Input,
    /// Data flows out of the owner.
    Output,
}

impl Direction {
    /// The opposite direction; instantiating a component flips its
    /// signature's directions from the instantiator's perspective.
    pub fn reverse(self) -> Self {
        match self {
            Direction::Input => Direction::Output,
            Direction::Output => Direction::Input,
        }
    }
}

/// A named, sized port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDef {
    /// Port name, unique within its owner.
    pub name: Id,
    /// Bit width. Calyx ports are untyped but sized (paper §3.1).
    pub width: u32,
    /// Direction from the owner's perspective.
    pub direction: Direction,
    /// Port-level attributes (e.g. `interface` on `go`/`done`).
    pub attributes: Attributes,
}

impl PortDef {
    /// Construct a port definition with no attributes.
    pub fn new(name: impl Into<Id>, width: u32, direction: Direction) -> Self {
        PortDef {
            name: name.into(),
            width,
            direction,
            attributes: Attributes::new(),
        }
    }
}

/// What a [`PortRef`] is anchored on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PortParent {
    /// A port on a cell: `adder.left`.
    Cell(Id),
    /// A *hole* on a group: `incr[go]` or `incr[done]` (paper §3.3).
    Group(Id),
    /// A port on the enclosing component's own signature.
    This,
}

/// A reference to a port.
///
/// References are by-name rather than by-pointer: passes rewrite programs by
/// substituting names (see [`Rewriter`](super::Rewriter)), and equality/
/// hashing of references is structural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortRef {
    /// The entity owning the port.
    pub parent: PortParent,
    /// The port's name on that entity.
    pub port: Id,
}

impl PortRef {
    /// Reference to `cell.port`.
    pub fn cell(cell: impl Into<Id>, port: impl Into<Id>) -> Self {
        PortRef {
            parent: PortParent::Cell(cell.into()),
            port: port.into(),
        }
    }

    /// Reference to a hole `group[port]` where `port` is `go` or `done`.
    pub fn hole(group: impl Into<Id>, port: impl Into<Id>) -> Self {
        PortRef {
            parent: PortParent::Group(group.into()),
            port: port.into(),
        }
    }

    /// Reference to a port on the enclosing component.
    pub fn this(port: impl Into<Id>) -> Self {
        PortRef {
            parent: PortParent::This,
            port: port.into(),
        }
    }

    /// True when this reference points at a group hole.
    pub fn is_hole(&self) -> bool {
        matches!(self.parent, PortParent::Group(_))
    }

    /// The cell this port belongs to, if its parent is a cell.
    pub fn cell_parent(&self) -> Option<Id> {
        match self.parent {
            PortParent::Cell(c) => Some(c),
            _ => None,
        }
    }
}

impl std::fmt::Display for PortRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.parent {
            PortParent::Cell(c) => write!(f, "{}.{}", c, self.port),
            PortParent::Group(g) => write!(f, "{}[{}]", g, self.port),
            PortParent::This => write!(f, "{}", self.port),
        }
    }
}

/// How a cell is implemented.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellType {
    /// An instance of a library primitive, e.g. `std_reg(32)`.
    Primitive {
        /// Primitive name in the [`Library`](super::Library).
        name: Id,
        /// Parameter bindings in declaration order (e.g. `WIDTH`).
        params: Vec<u64>,
    },
    /// An instance of another component in the same [`Context`](super::Context).
    Component {
        /// Name of the instantiated component.
        name: Id,
    },
}

/// A hardware instance inside a component (paper §3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Instance name, unique within the component.
    pub name: Id,
    /// What this cell instantiates.
    pub prototype: CellType,
    /// Resolved ports, from the instantiator's perspective.
    pub ports: Vec<PortDef>,
    /// Cell-level attributes (e.g. `external` on top-level memories).
    pub attributes: Attributes,
}

impl Cell {
    /// The definition of port `name`, if the cell has one.
    pub fn port(&self, name: Id) -> Option<&PortDef> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Width of port `name`, if the cell has one.
    pub fn port_width(&self, name: Id) -> Option<u32> {
        self.port(name).map(|p| p.width)
    }

    /// True when this cell instantiates primitive `prim`.
    pub fn is_primitive(&self, prim: &str) -> bool {
        matches!(&self.prototype, CellType::Primitive { name, .. } if name.as_str() == prim)
    }

    /// The primitive's parameters, if this is a primitive instance.
    pub fn primitive_params(&self) -> Option<&[u64]> {
        match &self.prototype {
            CellType::Primitive { params, .. } => Some(params),
            CellType::Component { .. } => None,
        }
    }

    /// True for `std_reg` instances — the cells tracked by register sharing.
    pub fn is_register(&self) -> bool {
        self.is_primitive("std_reg")
    }

    /// True for memory primitives of any dimensionality.
    pub fn is_memory(&self) -> bool {
        matches!(&self.prototype, CellType::Primitive { name, .. }
            if name.as_str().starts_with("std_mem_d"))
    }
}

impl Named for Cell {
    fn name(&self) -> Id {
        self.name
    }
}

/// The right-hand side of an assignment: a port or a sized literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Atom {
    /// Read the named port.
    Port(PortRef),
    /// A constant, printed as `width'dval` (e.g. `32'd1`).
    Const {
        /// The constant's value, already truncated to `width` bits.
        val: u64,
        /// The constant's bit width.
        width: u32,
    },
}

impl Atom {
    /// A sized constant. Values wider than `width` are truncated, matching
    /// hardware semantics.
    pub fn constant(val: u64, width: u32) -> Self {
        let masked = if width >= 64 {
            val
        } else {
            val & ((1u64 << width) - 1)
        };
        Atom::Const { val: masked, width }
    }

    /// The port read by this atom, if it is not a constant.
    pub fn port(&self) -> Option<&PortRef> {
        match self {
            Atom::Port(p) => Some(p),
            Atom::Const { .. } => None,
        }
    }
}

impl From<PortRef> for Atom {
    fn from(p: PortRef) -> Self {
        Atom::Port(p)
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Atom::Port(p) => write!(f, "{p}"),
            Atom::Const { val, width } => write!(f, "{width}'d{val}"),
        }
    }
}

/// A guarded, non-blocking connection: `dst = guard ? src` (paper §3.2).
///
/// When the guard is [`Guard::True`] the assignment is unconditional and
/// prints without the `guard ?` prefix. Calyx requires a unique active
/// driver per port per cycle; the simulator enforces this dynamically and
/// [`validate`](super::validate) catches syntactic duplicates.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The driven port.
    pub dst: PortRef,
    /// The driving port or constant.
    pub src: Atom,
    /// Activation condition.
    pub guard: Guard,
}

impl Assignment {
    /// An unconditional assignment.
    pub fn new(dst: PortRef, src: impl Into<Atom>) -> Self {
        Assignment {
            dst,
            src: src.into(),
            guard: Guard::True,
        }
    }

    /// A guarded assignment.
    pub fn guarded(dst: PortRef, src: impl Into<Atom>, guard: Guard) -> Self {
        Assignment {
            dst,
            src: src.into(),
            guard,
        }
    }

    /// All ports read by this assignment: the source (if a port) plus every
    /// port in the guard.
    ///
    /// Allocates a fresh `Vec` on every call; inside analysis loops that
    /// visit every assignment, prefer the non-collecting
    /// [`reads_iter`](Assignment::reads_iter).
    pub fn reads(&self) -> Vec<PortRef> {
        self.reads_iter().collect()
    }

    /// Iterate over the ports read by this assignment without allocating a
    /// vector: the source port (if any) followed by the guard's ports in
    /// [`Guard::ports_into`](super::Guard::ports_into) order.
    ///
    /// For unguarded assignments (guard [`Guard::True`](super::Guard::True))
    /// this performs no heap allocation at all.
    pub fn reads_iter(&self) -> impl Iterator<Item = PortRef> + '_ {
        self.src
            .port()
            .copied()
            .into_iter()
            .chain(self.guard.ports_iter())
    }
}

/// A named collection of assignments implementing one action (paper §3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// Group name, unique within the component.
    pub name: Id,
    /// The encapsulated assignments.
    pub assignments: Vec<Assignment>,
    /// Group attributes, notably `"static"` latency.
    pub attributes: Attributes,
}

impl Group {
    /// An empty group named `name`.
    pub fn new(name: impl Into<Id>) -> Self {
        Group {
            name: name.into(),
            assignments: Vec::new(),
            attributes: Attributes::new(),
        }
    }

    /// The group's `"static"` latency attribute, if annotated.
    pub fn static_latency(&self) -> Option<u64> {
        self.attributes.get(super::attr::static_())
    }

    /// Reference to this group's `go` hole.
    pub fn go_hole(&self) -> PortRef {
        PortRef::hole(self.name, "go")
    }

    /// Reference to this group's `done` hole.
    pub fn done_hole(&self) -> PortRef {
        PortRef::hole(self.name, "done")
    }

    /// Assignments that write this group's `done` hole.
    pub fn done_writes(&self) -> impl Iterator<Item = &Assignment> {
        let done = self.done_hole();
        self.assignments.iter().filter(move |a| a.dst == done)
    }

    /// Names of all cells referenced (read or written) by the group.
    pub fn used_cells(&self) -> std::collections::BTreeSet<Id> {
        let mut cells = std::collections::BTreeSet::new();
        for asgn in &self.assignments {
            if let Some(c) = asgn.dst.cell_parent() {
                cells.insert(c);
            }
            for p in asgn.reads_iter() {
                if let Some(c) = p.cell_parent() {
                    cells.insert(c);
                }
            }
        }
        cells
    }
}

impl Named for Group {
    fn name(&self) -> Id {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_constants_truncate() {
        assert_eq!(
            Atom::constant(0x1ff, 8),
            Atom::Const {
                val: 0xff,
                width: 8
            }
        );
        assert_eq!(Atom::constant(5, 32), Atom::Const { val: 5, width: 32 });
        assert_eq!(
            Atom::constant(u64::MAX, 64),
            Atom::Const {
                val: u64::MAX,
                width: 64
            }
        );
    }

    #[test]
    fn port_ref_display() {
        assert_eq!(PortRef::cell("a", "out").to_string(), "a.out");
        assert_eq!(PortRef::hole("incr", "done").to_string(), "incr[done]");
        assert_eq!(PortRef::this("go").to_string(), "go");
    }

    #[test]
    fn assignment_reads_include_guard_ports() {
        let asgn = Assignment::guarded(
            PortRef::cell("r", "in"),
            PortRef::cell("a", "out"),
            Guard::port(PortRef::cell("cmp", "out")),
        );
        let reads = asgn.reads();
        assert!(reads.contains(&PortRef::cell("a", "out")));
        assert!(reads.contains(&PortRef::cell("cmp", "out")));
    }

    #[test]
    fn reads_iter_matches_reads() {
        let asgns = [
            Assignment::new(PortRef::cell("r", "in"), Atom::constant(1, 8)),
            Assignment::new(PortRef::cell("r", "in"), PortRef::cell("a", "out")),
            Assignment::guarded(
                PortRef::cell("r", "in"),
                PortRef::cell("a", "out"),
                Guard::port(PortRef::cell("cmp", "out"))
                    .and(Guard::port(PortRef::cell("b", "out"))),
            ),
        ];
        for asgn in &asgns {
            let iterated: Vec<_> = asgn.reads_iter().collect();
            assert_eq!(iterated, asgn.reads());
        }
    }

    #[test]
    fn group_used_cells() {
        let mut g = Group::new("g");
        g.assignments.push(Assignment::new(
            PortRef::cell("r", "in"),
            PortRef::cell("add", "out"),
        ));
        g.assignments
            .push(Assignment::new(g.done_hole(), PortRef::cell("r", "done")));
        let cells: Vec<_> = g.used_cells().into_iter().map(|c| c.as_str()).collect();
        assert_eq!(cells, vec!["add", "r"]);
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Input.reverse(), Direction::Output);
        assert_eq!(Direction::Output.reverse(), Direction::Input);
    }
}
