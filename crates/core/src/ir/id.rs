//! Interned identifiers.
//!
//! Compilers compare and hash names constantly; interning makes [`Id`] a
//! `Copy` handle with O(1) equality while `as_str` recovers the text. The
//! interner lives for the whole process (strings are leaked), which is the
//! right trade-off for a compiler: the set of distinct names is small and
//! bounded by the input programs.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

/// An interned identifier: a cheap, copyable handle to a name.
///
/// Two `Id`s constructed from equal strings are equal:
///
/// ```
/// use calyx_core::ir::Id;
/// let a = Id::new("adder");
/// let b = Id::new("adder");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "adder");
/// ```
///
/// `Ord` compares the underlying strings so that sorted output (e.g. in the
/// printer and in deterministic analyses) is alphabetical rather than
/// creation-ordered.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Id(u32);

impl Id {
    /// The raw intern index. Only meaningful within one process: use it for
    /// hashing/sorting where determinism across runs is not observable
    /// (e.g. grouping map entries that are only ever looked up by key),
    /// never for ordered output.
    pub(crate) fn raw(self) -> u32 {
        self.0
    }

    /// Intern `name` and return its handle.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        let mut interner = interner().lock();
        if let Some(&idx) = interner.map.get(name) {
            return Id(idx);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let idx = interner.strings.len() as u32;
        interner.strings.push(leaked);
        interner.map.insert(leaked, idx);
        Id(idx)
    }

    /// The interned text.
    pub fn as_str(self) -> &'static str {
        interner().lock().strings[self.0 as usize]
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({:?})", self.as_str())
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialOrd for Id {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Id {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl From<&str> for Id {
    fn from(s: &str) -> Self {
        Id::new(s)
    }
}

impl From<String> for Id {
    fn from(s: String) -> Self {
        Id::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_strings_intern_to_equal_ids() {
        assert_eq!(Id::new("x"), Id::new("x"));
        assert_ne!(Id::new("x"), Id::new("y"));
    }

    #[test]
    fn round_trips_text() {
        let id = Id::new("a_long_component_name");
        assert_eq!(id.as_str(), "a_long_component_name");
        assert_eq!(id.to_string(), "a_long_component_name");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut ids = [Id::new("zeta"), Id::new("alpha"), Id::new("mid")];
        ids.sort();
        let names: Vec<_> = ids.iter().map(|i| i.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn usable_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|i| std::thread::spawn(move || Id::new(format!("shared{}", i % 2))))
            .collect();
        let ids: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(ids[0], ids[2]);
    }
}
