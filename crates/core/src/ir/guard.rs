//! Guard expressions (paper §3.2).
//!
//! Guards condition assignments: `add.left = cmp.out ? a_reg.out`. They are
//! boolean trees over 1-bit ports plus integer comparisons between ports and
//! constants — the comparison forms are exactly what the FSM compilation
//! passes emit (`fsm.out == 0`, `fsm.out < 3`; paper Fig. 2c and §4.4).

use super::cell::{Atom, PortRef};

/// Comparison operators usable inside guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompOp {
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Geq,
    /// `<=`
    Leq,
}

impl CompOp {
    /// Evaluate the comparison on unsigned values.
    pub fn eval(self, l: u64, r: u64) -> bool {
        match self {
            CompOp::Eq => l == r,
            CompOp::Neq => l != r,
            CompOp::Gt => l > r,
            CompOp::Lt => l < r,
            CompOp::Geq => l >= r,
            CompOp::Leq => l <= r,
        }
    }

    /// The textual operator.
    pub fn as_str(self) -> &'static str {
        match self {
            CompOp::Eq => "==",
            CompOp::Neq => "!=",
            CompOp::Gt => ">",
            CompOp::Lt => "<",
            CompOp::Geq => ">=",
            CompOp::Leq => "<=",
        }
    }
}

/// A boolean guard expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Guard {
    /// Always active; unconditional assignments carry this guard.
    True,
    /// The value of a 1-bit port.
    Port(PortRef),
    /// Logical negation.
    Not(Box<Guard>),
    /// Logical conjunction.
    And(Box<Guard>, Box<Guard>),
    /// Logical disjunction.
    Or(Box<Guard>, Box<Guard>),
    /// Integer comparison between two atoms of equal width.
    Comp(CompOp, Atom, Atom),
}

impl Guard {
    /// Guard reading a 1-bit port.
    pub fn port(p: PortRef) -> Self {
        Guard::Port(p)
    }

    /// `port == val` against a sized constant.
    pub fn port_eq(p: PortRef, val: u64, width: u32) -> Self {
        Guard::Comp(CompOp::Eq, Atom::Port(p), Atom::constant(val, width))
    }

    /// `port < val` against a sized constant.
    pub fn port_lt(p: PortRef, val: u64, width: u32) -> Self {
        Guard::Comp(CompOp::Lt, Atom::Port(p), Atom::constant(val, width))
    }

    /// `port >= val` against a sized constant.
    pub fn port_geq(p: PortRef, val: u64, width: u32) -> Self {
        Guard::Comp(CompOp::Geq, Atom::Port(p), Atom::constant(val, width))
    }

    /// Conjunction with [`Guard::True`] identities folded away.
    pub fn and(self, other: Guard) -> Guard {
        match (self, other) {
            (Guard::True, g) | (g, Guard::True) => g,
            (a, b) => Guard::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction with `True` short-circuiting.
    pub fn or(self, other: Guard) -> Guard {
        match (self, other) {
            (Guard::True, _) | (_, Guard::True) => Guard::True,
            (a, b) => Guard::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Negation with double negations folded away.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Guard {
        match self {
            Guard::Not(inner) => *inner,
            g => Guard::Not(Box::new(g)),
        }
    }

    /// True when the guard is the constant [`Guard::True`].
    pub fn is_true(&self) -> bool {
        matches!(self, Guard::True)
    }

    /// Collect every port read by the guard into `out`.
    pub fn ports_into(&self, out: &mut Vec<PortRef>) {
        match self {
            Guard::True => {}
            Guard::Port(p) => out.push(*p),
            Guard::Not(g) => g.ports_into(out),
            Guard::And(a, b) | Guard::Or(a, b) => {
                a.ports_into(out);
                b.ports_into(out);
            }
            Guard::Comp(_, l, r) => {
                if let Atom::Port(p) = l {
                    out.push(*p);
                }
                if let Atom::Port(p) = r {
                    out.push(*p);
                }
            }
        }
    }

    /// Every port read by the guard.
    pub fn ports(&self) -> Vec<PortRef> {
        let mut v = Vec::new();
        self.ports_into(&mut v);
        v
    }

    /// Iterate over every port read by the guard without collecting them.
    ///
    /// The iterator keeps an explicit worklist instead of materializing a
    /// `Vec<PortRef>`; for the common [`Guard::True`] case it performs no
    /// allocation at all, which matters in the analysis loops that scan
    /// every assignment of a component (see
    /// [`Assignment::reads_iter`](super::Assignment::reads_iter)).
    pub fn ports_iter(&self) -> GuardPorts<'_> {
        let mut it = GuardPorts {
            stack: Vec::new(),
            pending: None,
        };
        if !self.is_true() {
            it.stack.push(self);
        }
        it
    }

    /// Rewrite every port reference through `f`.
    pub fn map_ports(&mut self, f: &mut impl FnMut(PortRef) -> PortRef) {
        match self {
            Guard::True => {}
            Guard::Port(p) => *p = f(*p),
            Guard::Not(g) => g.map_ports(f),
            Guard::And(a, b) | Guard::Or(a, b) => {
                a.map_ports(f);
                b.map_ports(f);
            }
            Guard::Comp(_, l, r) => {
                for atom in [l, r] {
                    if let Atom::Port(p) = atom {
                        *p = f(*p);
                    }
                }
            }
        }
    }

    /// Replace every read of port `hole` with an entire guard expression.
    ///
    /// This is the core operation of
    /// [`RemoveGroups`](crate::passes::RemoveGroups): interface signals (go/
    /// done holes) read inside guards are substituted by the disjunction of
    /// their writers.
    pub fn substitute(&mut self, hole: PortRef, replacement: &Guard) {
        match self {
            Guard::True => {}
            Guard::Port(p) if *p == hole => *self = replacement.clone(),
            Guard::Port(_) => {}
            Guard::Not(g) => g.substitute(hole, replacement),
            Guard::And(a, b) | Guard::Or(a, b) => {
                a.substitute(hole, replacement);
                b.substitute(hole, replacement);
            }
            // Holes are 1-bit signals and only appear as bare ports, never
            // inside comparisons (enforced by validation after GoInsertion).
            Guard::Comp(..) => {}
        }
    }

    /// Number of nodes in the guard tree (used by area estimation and
    /// compilation statistics).
    pub fn size(&self) -> usize {
        match self {
            Guard::True => 0,
            Guard::Port(_) => 1,
            Guard::Not(g) => 1 + g.size(),
            Guard::And(a, b) | Guard::Or(a, b) => 1 + a.size() + b.size(),
            Guard::Comp(..) => 1,
        }
    }
}

/// Lazy depth-first iterator over the ports of a [`Guard`], created by
/// [`Guard::ports_iter`]. Yields ports in the same order as
/// [`Guard::ports_into`].
pub struct GuardPorts<'a> {
    stack: Vec<&'a Guard>,
    /// Second port of a comparison whose first port was just yielded.
    pending: Option<PortRef>,
}

impl Iterator for GuardPorts<'_> {
    type Item = PortRef;

    fn next(&mut self) -> Option<PortRef> {
        if let Some(p) = self.pending.take() {
            return Some(p);
        }
        while let Some(g) = self.stack.pop() {
            match g {
                Guard::True => {}
                Guard::Port(p) => return Some(*p),
                Guard::Not(inner) => self.stack.push(inner),
                // Left child visited first: push right below left.
                Guard::And(a, b) | Guard::Or(a, b) => {
                    self.stack.push(b);
                    self.stack.push(a);
                }
                Guard::Comp(_, l, r) => match (l.port(), r.port()) {
                    (Some(l), Some(r)) => {
                        self.pending = Some(*r);
                        return Some(*l);
                    }
                    (Some(p), None) | (None, Some(p)) => return Some(*p),
                    (None, None) => {}
                },
            }
        }
        None
    }
}

impl From<PortRef> for Guard {
    fn from(p: PortRef) -> Self {
        Guard::Port(p)
    }
}

impl std::fmt::Display for Guard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Precedence: ! > comparison > & > |. Parenthesize children with
        // looser binding (matching the parser's grammar, so `!(x == 1)`
        // keeps its parentheses while `x == 1 & y` does not need any).
        fn fmt_prec(g: &Guard, prec: u8, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let my_prec = match g {
                Guard::Or(..) => 1,
                Guard::And(..) => 2,
                Guard::Comp(..) => 3,
                _ => 4,
            };
            let need_parens = my_prec < prec;
            if need_parens {
                write!(f, "(")?;
            }
            match g {
                Guard::True => write!(f, "1'd1")?,
                Guard::Port(p) => write!(f, "{p}")?,
                Guard::Not(inner) => {
                    write!(f, "!")?;
                    fmt_prec(inner, 4, f)?;
                }
                Guard::And(a, b) => {
                    fmt_prec(a, 2, f)?;
                    write!(f, " & ")?;
                    fmt_prec(b, 2, f)?;
                }
                Guard::Or(a, b) => {
                    fmt_prec(a, 1, f)?;
                    write!(f, " | ")?;
                    fmt_prec(b, 1, f)?;
                }
                Guard::Comp(op, l, r) => write!(f, "{l} {} {r}", op.as_str())?,
            }
            if need_parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        fmt_prec(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> PortRef {
        PortRef::cell(name, "out")
    }

    #[test]
    fn comp_op_eval() {
        assert!(CompOp::Eq.eval(3, 3));
        assert!(CompOp::Neq.eval(3, 4));
        assert!(CompOp::Lt.eval(3, 4));
        assert!(CompOp::Geq.eval(4, 4));
        assert!(!CompOp::Gt.eval(4, 4));
        assert!(CompOp::Leq.eval(4, 4));
    }

    #[test]
    fn and_folds_true() {
        let g = Guard::True.and(Guard::port(p("a")));
        assert_eq!(g, Guard::port(p("a")));
        let g = Guard::port(p("a")).and(Guard::True);
        assert_eq!(g, Guard::port(p("a")));
    }

    #[test]
    fn or_short_circuits_true() {
        assert!(Guard::True.or(Guard::port(p("a"))).is_true());
    }

    #[test]
    fn not_folds_double_negation() {
        let g = Guard::port(p("a")).not().not();
        assert_eq!(g, Guard::port(p("a")));
    }

    #[test]
    fn collects_ports_from_comparisons() {
        let g = Guard::port_eq(p("fsm"), 2, 4).and(Guard::port(p("done")));
        let mut ports = g.ports();
        ports.sort();
        assert_eq!(ports, vec![p("done"), p("fsm")]);
    }

    #[test]
    fn substitution_replaces_hole_reads() {
        let hole = PortRef::hole("one", "go");
        let mut g = Guard::Port(hole).and(Guard::port(p("x")));
        g.substitute(hole, &Guard::port_eq(p("fsm"), 0, 2));
        assert_eq!(g, Guard::port_eq(p("fsm"), 0, 2).and(Guard::port(p("x"))));
    }

    #[test]
    fn display_respects_precedence() {
        let g = Guard::port(p("a")).or(Guard::port(p("b")).and(Guard::port(p("c"))));
        assert_eq!(g.to_string(), "a.out | b.out & c.out");
        let g2 = Guard::port(p("a"))
            .or(Guard::port(p("b")))
            .and(Guard::port(p("c")));
        assert_eq!(g2.to_string(), "(a.out | b.out) & c.out");
        let g3 = Guard::port(p("a")).and(Guard::port(p("b"))).not();
        assert_eq!(g3.to_string(), "!(a.out & b.out)");
    }

    #[test]
    fn ports_iter_matches_ports_into() {
        let guards = [
            Guard::True,
            Guard::port(p("a")),
            Guard::port(p("a")).not(),
            Guard::port(p("a")).and(Guard::port(p("b")).or(Guard::port(p("c")))),
            Guard::port_eq(p("fsm"), 2, 4).and(Guard::port(p("done"))),
            Guard::Comp(CompOp::Lt, Atom::Port(p("x")), Atom::Port(p("y"))),
            Guard::Comp(CompOp::Eq, Atom::constant(1, 2), Atom::constant(1, 2)),
        ];
        for g in guards {
            let collected: Vec<_> = g.ports_iter().collect();
            assert_eq!(collected, g.ports(), "order/content mismatch for {g}");
        }
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Guard::True.size(), 0);
        let g = Guard::port(p("a")).and(Guard::port_eq(p("b"), 1, 2));
        assert_eq!(g.size(), 3);
    }
}
