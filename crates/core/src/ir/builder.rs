//! A convenience API for constructing components.
//!
//! Frontends (and the compiler's own FSM-generating passes) build programs
//! through [`Builder`], which resolves primitive signatures, generates fresh
//! names, and width-checks assignments at construction time so that errors
//! surface where they are made rather than at validation or simulation time.

use super::cell::Group;
use super::{attr, Assignment, Atom, CellType, Component, Context, Control, Guard, Id, PortRef};

/// Things that can name a port: a [`PortRef`], or `(cell, port)` pairs.
pub trait IntoPortRef {
    /// Convert into a concrete port reference.
    fn into_port_ref(self) -> PortRef;
}

impl IntoPortRef for PortRef {
    fn into_port_ref(self) -> PortRef {
        self
    }
}

impl IntoPortRef for (Id, &str) {
    fn into_port_ref(self) -> PortRef {
        PortRef::cell(self.0, self.1)
    }
}

impl IntoPortRef for (&str, &str) {
    fn into_port_ref(self) -> PortRef {
        PortRef::cell(self.0, self.1)
    }
}

/// A builder of assignments and cells for one component.
///
/// The builder borrows the [`Context`] immutably (for the primitive library
/// and already-registered component signatures) and the under-construction
/// [`Component`] mutably.
///
/// # Panics
///
/// Construction methods panic on misuse — unknown primitives, undefined
/// ports, or width mismatches — with messages naming the offending
/// reference. Frontend bugs should fail loudly at the construction site.
pub struct Builder<'a> {
    comp: &'a mut Component,
    ctx: &'a Context,
}

impl<'a> Builder<'a> {
    /// Start building into `comp`.
    pub fn new(comp: &'a mut Component, ctx: &'a Context) -> Self {
        Builder { comp, ctx }
    }

    /// The component being built.
    pub fn component(&mut self) -> &mut Component {
        self.comp
    }

    /// Instantiate a primitive cell named `prefix` (or `prefix0`, `prefix1`,
    /// … when taken) and return its name.
    #[track_caller]
    pub fn add_primitive(&mut self, prefix: &str, prim: &str, params: &[u64]) -> Id {
        let name = self.comp.fresh_cell_name(prefix);
        let cell = self
            .ctx
            .make_cell(
                name,
                CellType::Primitive {
                    name: Id::new(prim),
                    params: params.to_vec(),
                },
            )
            .unwrap_or_else(|e| panic!("add_primitive(`{prefix}`, `{prim}`): {e}"));
        self.comp.cells.insert(cell);
        name
    }

    /// Instantiate another component as a cell.
    #[track_caller]
    pub fn add_component_cell(&mut self, prefix: &str, component: &str) -> Id {
        let name = self.comp.fresh_cell_name(prefix);
        let cell = self
            .ctx
            .make_cell(
                name,
                CellType::Component {
                    name: Id::new(component),
                },
            )
            .unwrap_or_else(|e| panic!("add_component_cell(`{prefix}`, `{component}`): {e}"));
        self.comp.cells.insert(cell);
        name
    }

    /// Add an attribute to an existing cell.
    #[track_caller]
    pub fn set_cell_attribute(&mut self, cell: Id, key: Id, value: u64) {
        self.comp
            .cells
            .get_mut(cell)
            .unwrap_or_else(|| panic!("set_cell_attribute: no cell `{cell}`"))
            .attributes
            .insert(key, value);
    }

    /// Create an empty group named `prefix` (made fresh when taken).
    pub fn add_group(&mut self, prefix: &str) -> Id {
        let name = self.comp.fresh_group_name(prefix);
        self.comp.groups.insert(Group::new(name));
        name
    }

    /// Create a group annotated with a `"static"` latency.
    pub fn add_static_group(&mut self, prefix: &str, latency: u64) -> Id {
        let name = self.add_group(prefix);
        self.comp
            .groups
            .get_mut(name)
            .expect("group was just inserted")
            .attributes
            .insert(attr::static_(), latency);
        name
    }

    #[track_caller]
    fn check_widths(&self, dst: &PortRef, src: &Atom) {
        let dst_width = self
            .comp
            .port_width(dst)
            .unwrap_or_else(|e| panic!("assignment destination: {e}"));
        let src_width = match src {
            Atom::Port(p) => self
                .comp
                .port_width(p)
                .unwrap_or_else(|e| panic!("assignment source: {e}")),
            Atom::Const { width, .. } => *width,
        };
        assert!(
            dst_width == src_width,
            "width mismatch: `{dst}` is {dst_width} bits but `{src}` is {src_width} bits"
        );
    }

    #[track_caller]
    fn push(&mut self, group: Option<Id>, asgn: Assignment) {
        self.check_widths(&asgn.dst, &asgn.src);
        match group {
            Some(g) => self
                .comp
                .groups
                .get_mut(g)
                .unwrap_or_else(|| panic!("no group `{g}`"))
                .assignments
                .push(asgn),
            None => self.comp.continuous.push(asgn),
        }
    }

    /// Add `dst = src` to `group`.
    #[track_caller]
    pub fn asgn(&mut self, group: Id, dst: impl IntoPortRef, src: impl IntoPortRef) {
        let asgn = Assignment::new(dst.into_port_ref(), src.into_port_ref());
        self.push(Some(group), asgn);
    }

    /// Add `dst = width'dval` to `group`.
    #[track_caller]
    pub fn asgn_const(&mut self, group: Id, dst: impl IntoPortRef, val: u64, width: u32) {
        let asgn = Assignment::new(dst.into_port_ref(), Atom::constant(val, width));
        self.push(Some(group), asgn);
    }

    /// Add `dst = guard ? src` to `group`.
    #[track_caller]
    pub fn asgn_guarded(
        &mut self,
        group: Id,
        dst: impl IntoPortRef,
        src: impl IntoPortRef,
        guard: Guard,
    ) {
        let asgn = Assignment::guarded(dst.into_port_ref(), src.into_port_ref(), guard);
        self.push(Some(group), asgn);
    }

    /// Add `dst = guard ? width'dval` to `group`.
    #[track_caller]
    pub fn asgn_const_guarded(
        &mut self,
        group: Id,
        dst: impl IntoPortRef,
        val: u64,
        width: u32,
        guard: Guard,
    ) {
        let asgn = Assignment::guarded(dst.into_port_ref(), Atom::constant(val, width), guard);
        self.push(Some(group), asgn);
    }

    /// Set the group's done condition: `group[done] = src`.
    #[track_caller]
    pub fn group_done(&mut self, group: Id, src: impl IntoPortRef) {
        let asgn = Assignment::new(PortRef::hole(group, "done"), src.into_port_ref());
        self.push(Some(group), asgn);
    }

    /// Set a constant done condition: `group[done] = 1'd1` (combinational
    /// groups, e.g. `if`/`while` condition groups).
    #[track_caller]
    pub fn group_done_const(&mut self, group: Id, val: u64) {
        let asgn = Assignment::new(PortRef::hole(group, "done"), Atom::constant(val, 1));
        self.push(Some(group), asgn);
    }

    /// Set a guarded done condition: `group[done] = guard ? src`.
    #[track_caller]
    pub fn group_done_guarded(&mut self, group: Id, src: impl IntoPortRef, guard: Guard) {
        let asgn = Assignment::guarded(PortRef::hole(group, "done"), src.into_port_ref(), guard);
        self.push(Some(group), asgn);
    }

    /// Add a continuous assignment `dst = src`.
    #[track_caller]
    pub fn cont(&mut self, dst: impl IntoPortRef, src: impl IntoPortRef) {
        let asgn = Assignment::new(dst.into_port_ref(), src.into_port_ref());
        self.push(None, asgn);
    }

    /// Add a guarded continuous assignment.
    #[track_caller]
    pub fn cont_guarded(&mut self, dst: impl IntoPortRef, src: impl IntoPortRef, guard: Guard) {
        let asgn = Assignment::guarded(dst.into_port_ref(), src.into_port_ref(), guard);
        self.push(None, asgn);
    }

    /// Replace the component's control program.
    pub fn set_control(&mut self, control: Control) {
        self.comp.control = control;
    }

    /// Set the control program to a single group enable.
    pub fn set_control_enable(&mut self, group: Id) {
        self.comp.control = Control::enable(group);
    }

    /// Attach an attribute to an existing group.
    #[track_caller]
    pub fn set_group_attribute(&mut self, group: Id, key: Id, value: u64) {
        self.comp
            .groups
            .get_mut(group)
            .unwrap_or_else(|| panic!("no group `{group}`"))
            .attributes
            .insert(key, value);
    }
}

/// Extra constructors used by tests and examples; mirror common guard forms.
impl Builder<'_> {
    /// Guard reading `cell.port`.
    pub fn g(&self, cell: Id, port: &str) -> Guard {
        Guard::port(PortRef::cell(cell, port))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Context, Component) {
        let ctx = Context::new();
        let comp = ctx.new_component("main");
        (ctx, comp)
    }

    #[test]
    fn builds_the_paper_figure_2_program() {
        let (ctx, mut comp) = setup();
        {
            let mut b = Builder::new(&mut comp, &ctx);
            let x = b.add_primitive("x", "std_reg", &[32]);
            let one = b.add_group("one");
            b.asgn_const(one, (x, "in"), 1, 32);
            b.asgn_const(one, (x, "write_en"), 1, 1);
            b.group_done(one, (x, "done"));
            let two = b.add_group("two");
            b.asgn_const(two, (x, "in"), 2, 32);
            b.asgn_const(two, (x, "write_en"), 1, 1);
            b.group_done(two, (x, "done"));
            b.set_control(Control::seq(vec![
                Control::enable(one),
                Control::enable(two),
            ]));
        }
        assert_eq!(comp.cells.len(), 1);
        assert_eq!(comp.groups.len(), 2);
        assert_eq!(comp.control.statement_count(), 3);
        let one = comp.groups.get(Id::new("one")).unwrap();
        assert_eq!(one.assignments.len(), 3);
        assert_eq!(one.done_writes().count(), 1);
    }

    #[test]
    fn fresh_names_on_collision() {
        let (ctx, mut comp) = setup();
        let mut b = Builder::new(&mut comp, &ctx);
        let a = b.add_primitive("r", "std_reg", &[8]);
        let b2 = b.add_primitive("r", "std_reg", &[8]);
        assert_eq!(a.as_str(), "r");
        assert_eq!(b2.as_str(), "r0");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let (ctx, mut comp) = setup();
        let mut b = Builder::new(&mut comp, &ctx);
        let r = b.add_primitive("r", "std_reg", &[8]);
        let g = b.add_group("g");
        b.asgn_const(g, (r, "in"), 1, 16);
    }

    #[test]
    #[should_panic(expected = "add_primitive")]
    fn unknown_primitive_panics() {
        let (ctx, mut comp) = setup();
        let mut b = Builder::new(&mut comp, &ctx);
        b.add_primitive("r", "std_bogus", &[8]);
    }

    #[test]
    fn static_group_annotation() {
        let (ctx, mut comp) = setup();
        {
            let mut b = Builder::new(&mut comp, &ctx);
            let g = b.add_static_group("g", 3);
            assert_eq!(g.as_str(), "g");
        }
        assert_eq!(
            comp.groups.get(Id::new("g")).unwrap().static_latency(),
            Some(3)
        );
    }

    #[test]
    fn continuous_assignments_are_width_checked() {
        let (ctx, mut comp) = setup();
        let mut b = Builder::new(&mut comp, &ctx);
        let w = b.add_primitive("w", "std_wire", &[1]);
        b.cont(PortRef::this("done"), (w, "out"));
        assert_eq!(comp.continuous.len(), 1);
    }
}
