//! Pretty printer for the textual Calyx format.
//!
//! The printed form round-trips through [`parse_context`](super::parse_context)
//! (property-tested in the parser module). Implicit interface ports
//! (`go`/`done` with the `interface` attribute) are omitted from signatures
//! since [`Component::new`] re-adds them.

use super::cell::Group;
use super::{
    attr, Assignment, Attributes, Cell, CellType, Component, Context, Control, Direction, PortDef,
};
use std::fmt::Write;

/// Renders IR structures as Calyx source text.
#[derive(Debug, Clone, Copy, Default)]
pub struct Printer;

impl Printer {
    /// Print an entire program.
    pub fn print_context(ctx: &Context) -> String {
        let mut out = String::new();
        for comp in ctx.components.iter() {
            out.push_str(&Self::print_component(comp));
            out.push('\n');
        }
        out
    }

    /// Print one component.
    pub fn print_component(comp: &Component) -> String {
        let mut s = String::new();
        let _ = write!(s, "component {}", comp.name);
        let _ = write!(s, "{}", fmt_attributes_angle(&comp.attributes));
        let inputs: Vec<&PortDef> = comp
            .signature
            .iter()
            .filter(|p| p.direction == Direction::Input && !p.attributes.has(attr::interface()))
            .collect();
        let outputs: Vec<&PortDef> = comp
            .signature
            .iter()
            .filter(|p| p.direction == Direction::Output && !p.attributes.has(attr::interface()))
            .collect();
        let fmt_ports = |ports: &[&PortDef]| {
            ports
                .iter()
                .map(|p| format!("{}: {}", p.name, p.width))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let _ = writeln!(
            s,
            "({}) -> ({}) {{",
            fmt_ports(&inputs),
            fmt_ports(&outputs)
        );

        let _ = writeln!(s, "  cells {{");
        for cell in comp.cells.iter() {
            let _ = writeln!(s, "    {}", Self::print_cell(cell));
        }
        let _ = writeln!(s, "  }}");

        let _ = writeln!(s, "  wires {{");
        for group in comp.groups.iter() {
            for line in Self::print_group(group).lines() {
                let _ = writeln!(s, "    {line}");
            }
        }
        for asgn in &comp.continuous {
            let _ = writeln!(s, "    {}", Self::print_assignment(asgn));
        }
        let _ = writeln!(s, "  }}");

        let _ = writeln!(s, "  control {{");
        if !comp.control.is_empty() {
            let mut body = String::new();
            Self::write_control(&comp.control, 2, &mut body);
            s.push_str(&body);
        }
        let _ = writeln!(s, "  }}");
        let _ = writeln!(s, "}}");
        s
    }

    /// Print a cell declaration, e.g. `@external m = std_mem_d1(32, 4, 2);`.
    pub fn print_cell(cell: &Cell) -> String {
        let attrs = fmt_attributes_at(&cell.attributes);
        match &cell.prototype {
            CellType::Primitive { name, params } => {
                let params = params
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("{attrs}{} = {}({params});", cell.name, name)
            }
            CellType::Component { name } => format!("{attrs}{} = {}();", cell.name, name),
        }
    }

    /// Print a group definition.
    pub fn print_group(group: &Group) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "group {}{} {{",
            group.name,
            fmt_attributes_angle(&group.attributes)
        );
        for asgn in &group.assignments {
            let _ = writeln!(s, "  {}", Self::print_assignment(asgn));
        }
        let _ = writeln!(s, "}}");
        s
    }

    /// Print a single assignment.
    pub fn print_assignment(asgn: &Assignment) -> String {
        if asgn.guard.is_true() {
            format!("{} = {};", asgn.dst, asgn.src)
        } else {
            format!("{} = {} ? {};", asgn.dst, asgn.guard, asgn.src)
        }
    }

    /// Print a control program (for debugging and tests).
    pub fn print_control(control: &Control) -> String {
        let mut s = String::new();
        Self::write_control(control, 0, &mut s);
        s
    }

    fn write_control(control: &Control, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match control {
            Control::Empty => {}
            Control::Enable { group, attributes } => {
                let _ = writeln!(out, "{pad}{}{group};", fmt_attributes_at(attributes));
            }
            Control::Seq { stmts, attributes } => {
                let _ = writeln!(out, "{pad}{}seq {{", fmt_attributes_at(attributes));
                for stmt in stmts {
                    Self::write_control(stmt, indent + 1, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            Control::Par { stmts, attributes } => {
                let _ = writeln!(out, "{pad}{}par {{", fmt_attributes_at(attributes));
                for stmt in stmts {
                    Self::write_control(stmt, indent + 1, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            Control::If {
                port,
                cond,
                tbranch,
                fbranch,
                attributes,
            } => {
                let with = match cond {
                    Some(c) => format!(" with {c}"),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "{pad}{}if {port}{with} {{",
                    fmt_attributes_at(attributes)
                );
                Self::write_control(tbranch, indent + 1, out);
                if fbranch.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    Self::write_control(fbranch, indent + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Control::While {
                port,
                cond,
                body,
                attributes,
            } => {
                let with = match cond {
                    Some(c) => format!(" with {c}"),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "{pad}{}while {port}{with} {{",
                    fmt_attributes_at(attributes)
                );
                Self::write_control(body, indent + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

/// Format attributes in angle-bracket style: `<"static"=1, "share"=1>`.
fn fmt_attributes_angle(attrs: &Attributes) -> String {
    if attrs.is_empty() {
        return String::new();
    }
    let body = attrs
        .iter()
        .map(|(k, v)| format!("\"{k}\"={v}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("<{body}>")
}

/// Format attributes in at-sign style: `@external @static(2) `.
fn fmt_attributes_at(attrs: &Attributes) -> String {
    let mut s = String::new();
    for (k, v) in attrs.iter() {
        if v == 1 && k != attr::static_() {
            let _ = write!(s, "@{k} ");
        } else {
            let _ = write!(s, "@{k}({v}) ");
        }
    }
    s
}

/// `Display` implementations delegate to the printer for convenience.
impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&Printer::print_component(self))
    }
}

impl std::fmt::Display for Control {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&Printer::print_control(self))
    }
}

/// Allow printing groups standalone (used in error messages).
impl std::fmt::Display for Group {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&Printer::print_group(self))
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Atom, Builder, Guard, Id, PortRef};
    use super::*;

    #[test]
    fn prints_assignments() {
        let asgn = Assignment::new(PortRef::cell("r", "in"), Atom::constant(1, 32));
        assert_eq!(Printer::print_assignment(&asgn), "r.in = 32'd1;");
        let guarded = Assignment::guarded(
            PortRef::cell("x", "in"),
            PortRef::cell("a", "out"),
            Guard::port(PortRef::cell("cmp", "out")),
        );
        assert_eq!(
            Printer::print_assignment(&guarded),
            "x.in = cmp.out ? a.out;"
        );
    }

    #[test]
    fn prints_component_sections() {
        let ctx = Context::new();
        let mut comp = ctx.new_component("main");
        {
            let mut b = Builder::new(&mut comp, &ctx);
            let r = b.add_primitive("r", "std_reg", &[32]);
            let g = b.add_static_group("g", 1);
            b.asgn_const(g, (r, "in"), 7, 32);
            b.asgn_const(g, (r, "write_en"), 1, 1);
            b.group_done(g, (r, "done"));
            b.set_control_enable(g);
        }
        let text = Printer::print_component(&comp);
        assert!(text.contains("component main() -> ()"));
        assert!(text.contains("r = std_reg(32);"));
        assert!(text.contains("group g<\"static\"=1> {"));
        assert!(text.contains("r.in = 32'd7;"));
        assert!(text.contains("g[done] = r.done;"));
        assert!(text.contains("control {"));
        assert!(text.contains("g;"));
    }

    #[test]
    fn prints_nested_control() {
        let p = PortRef::cell("lt", "out");
        let control = Control::seq(vec![
            Control::enable("a"),
            Control::par(vec![Control::enable("b"), Control::enable("c")]),
            Control::while_(p, Some(Id::new("cond")), Control::enable("body")),
            Control::if_(p, None, Control::enable("t"), Control::Empty),
        ]);
        let text = Printer::print_control(&control);
        assert!(text.contains("seq {"));
        assert!(text.contains("par {"));
        assert!(text.contains("while lt.out with cond {"));
        assert!(text.contains("if lt.out {"));
        assert!(!text.contains("else"));
    }

    #[test]
    fn cell_attributes_print_at_style() {
        let ctx = Context::new();
        let mut comp = ctx.new_component("main");
        {
            let mut b = Builder::new(&mut comp, &ctx);
            let m = b.add_primitive("m", "std_mem_d1", &[32, 4, 2]);
            b.set_cell_attribute(m, attr::external(), 1);
        }
        let text = Printer::print_component(&comp);
        assert!(text.contains("@external m = std_mem_d1(32, 4, 2);"));
    }
}
