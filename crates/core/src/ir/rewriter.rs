//! Name-based rewriting of IR fragments.
//!
//! The sharing optimizations (paper §5.1–5.2) work by *renaming*: once the
//! coloring decides that group `incr_r1` should use adder `a0` instead of
//! `a1`, the rewrite is a local substitution inside the group — the
//! encapsulation property of groups guarantees nothing outside the group
//! needs to change.

use super::cell::Group;
use super::{Assignment, Atom, Control, Id, PortParent, PortRef};
use std::collections::HashMap;

/// A substitution over cell names and (optionally) exact port references.
#[derive(Debug, Clone, Default)]
pub struct Rewriter {
    /// Cell-level renames: every `old.port` becomes `new.port`.
    pub cell_map: HashMap<Id, Id>,
    /// Exact port-reference renames, applied before `cell_map`.
    pub port_map: HashMap<PortRef, PortRef>,
}

impl Rewriter {
    /// A rewriter renaming cells according to `cell_map`.
    pub fn from_cells(cell_map: HashMap<Id, Id>) -> Self {
        Rewriter {
            cell_map,
            port_map: HashMap::new(),
        }
    }

    /// Rewrite a single port reference.
    pub fn port(&self, p: PortRef) -> PortRef {
        if let Some(new) = self.port_map.get(&p) {
            return *new;
        }
        match p.parent {
            PortParent::Cell(c) => match self.cell_map.get(&c) {
                Some(new) => PortRef::cell(*new, p.port),
                None => p,
            },
            _ => p,
        }
    }

    /// Rewrite an assignment in place.
    pub fn assignment(&self, asgn: &mut Assignment) {
        asgn.dst = self.port(asgn.dst);
        if let Atom::Port(p) = &mut asgn.src {
            *p = self.port(*p);
        }
        asgn.guard.map_ports(&mut |p| self.port(p));
    }

    /// Rewrite every assignment in a group.
    pub fn group(&self, group: &mut Group) {
        for asgn in &mut group.assignments {
            self.assignment(asgn);
        }
    }

    /// Rewrite the port references inside a control program (`if`/`while`
    /// condition ports).
    pub fn control(&self, control: &mut Control) {
        match control {
            Control::Empty | Control::Enable { .. } => {}
            Control::Seq { stmts, .. } | Control::Par { stmts, .. } => {
                for s in stmts {
                    self.control(s);
                }
            }
            Control::If {
                port,
                tbranch,
                fbranch,
                ..
            } => {
                *port = self.port(*port);
                self.control(tbranch);
                self.control(fbranch);
            }
            Control::While { port, body, .. } => {
                *port = self.port(*port);
                self.control(body);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Guard;

    #[test]
    fn renames_cells_everywhere_in_assignment() {
        let rw = Rewriter::from_cells([(Id::new("a1"), Id::new("a0"))].into_iter().collect());
        let mut asgn = Assignment::guarded(
            PortRef::cell("a1", "left"),
            PortRef::cell("a1", "out"),
            Guard::port(PortRef::cell("a1", "done")).and(Guard::port(PortRef::cell("b", "out"))),
        );
        rw.assignment(&mut asgn);
        assert_eq!(asgn.dst, PortRef::cell("a0", "left"));
        assert_eq!(asgn.src, Atom::Port(PortRef::cell("a0", "out")));
        let ports = asgn.guard.ports();
        assert!(ports.contains(&PortRef::cell("a0", "done")));
        assert!(ports.contains(&PortRef::cell("b", "out")));
    }

    #[test]
    fn exact_port_map_wins() {
        let mut rw = Rewriter::from_cells([(Id::new("a"), Id::new("b"))].into_iter().collect());
        rw.port_map
            .insert(PortRef::cell("a", "out"), PortRef::cell("c", "out"));
        assert_eq!(
            rw.port(PortRef::cell("a", "out")),
            PortRef::cell("c", "out")
        );
        assert_eq!(rw.port(PortRef::cell("a", "in")), PortRef::cell("b", "in"));
    }

    #[test]
    fn holes_and_this_ports_untouched_by_cell_map() {
        let rw = Rewriter::from_cells([(Id::new("g"), Id::new("h"))].into_iter().collect());
        assert_eq!(rw.port(PortRef::hole("g", "go")), PortRef::hole("g", "go"));
        assert_eq!(rw.port(PortRef::this("done")), PortRef::this("done"));
    }

    #[test]
    fn rewrites_control_condition_ports() {
        let rw = Rewriter::from_cells([(Id::new("lt1"), Id::new("lt0"))].into_iter().collect());
        let mut c = Control::while_(
            PortRef::cell("lt1", "out"),
            Some(Id::new("cond")),
            Control::enable("body"),
        );
        rw.control(&mut c);
        match c {
            Control::While { port, .. } => assert_eq!(port, PortRef::cell("lt0", "out")),
            _ => unreachable!(),
        }
    }
}
