//! Components and the top-level compilation context (paper §3.1).

use super::cell::Group;
use super::{
    attr, Assignment, Attributes, Cell, CellType, Control, Direction, Id, Library, PortDef,
    PortParent, PortRef,
};
use crate::errors::{CalyxResult, Error};
use crate::utils::{Named, OrderedMap};

/// A Calyx component: cells, wires, and a control program.
///
/// Every component implicitly carries 1-bit `go` (input) and `done` (output)
/// interface ports; they define the calling convention (paper §4.1) that
/// lowering uses to wire a component's control FSM to its instantiators.
#[derive(Debug, Clone)]
pub struct Component {
    /// Component name, unique within the context.
    pub name: Id,
    /// Input/output ports, including the implicit `go`/`done` pair.
    pub signature: Vec<PortDef>,
    /// Subcomponent instances.
    pub cells: OrderedMap<Cell>,
    /// Named groups of assignments.
    pub groups: OrderedMap<Group>,
    /// Assignments that are always active (the top-level `wires` content).
    pub continuous: Vec<Assignment>,
    /// The execution schedule.
    pub control: Control,
    /// Component attributes (e.g. inferred `"static"` latency).
    pub attributes: Attributes,
    /// Per-prefix probe hints for [`Component::fresh_cell_name`] /
    /// [`Component::fresh_group_name`]: the last suffix returned for a
    /// prefix, so repeated fresh-name requests do not restart the
    /// `{prefix}{i}` collision scan from 0 (which made heavy FSM-generating
    /// passes quadratic in the number of generated names).
    fresh_hints: FreshHints,
}

/// Suffix hints for fresh cell/group names; cells and groups are separate
/// namespaces, so each keeps its own map.
#[derive(Debug, Clone, Default)]
struct FreshHints {
    cells: std::collections::HashMap<String, u64>,
    groups: std::collections::HashMap<String, u64>,
}

impl Component {
    /// Create a component with the given explicit ports.
    ///
    /// `go` and `done` interface ports are appended automatically unless the
    /// caller already declared them.
    pub fn new(name: impl Into<Id>, ports: Vec<PortDef>) -> Self {
        let mut signature = ports;
        let go = Id::new("go");
        let done = Id::new("done");
        if !signature.iter().any(|p| p.name == go) {
            let mut p = PortDef::new(go, 1, Direction::Input);
            p.attributes.insert(attr::interface(), 1);
            signature.push(p);
        }
        if !signature.iter().any(|p| p.name == done) {
            let mut p = PortDef::new(done, 1, Direction::Output);
            p.attributes.insert(attr::interface(), 1);
            signature.push(p);
        }
        Component {
            name: name.into(),
            signature,
            cells: OrderedMap::new(),
            groups: OrderedMap::new(),
            continuous: Vec::new(),
            control: Control::Empty,
            attributes: Attributes::new(),
            fresh_hints: FreshHints::default(),
        }
    }

    /// The signature port named `port`, if any.
    pub fn signature_port(&self, port: Id) -> Option<&PortDef> {
        self.signature.iter().find(|p| p.name == port)
    }

    /// Resolve the width of any port reference within this component.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] if the referenced cell, group, or port
    /// does not exist.
    pub fn port_width(&self, port: &PortRef) -> CalyxResult<u32> {
        match port.parent {
            PortParent::This => self
                .signature_port(port.port)
                .map(|p| p.width)
                .ok_or_else(|| {
                    Error::undefined(format!("port `{}` on component `{}`", port.port, self.name))
                }),
            PortParent::Cell(cell) => {
                let cell = self
                    .cells
                    .get(cell)
                    .ok_or_else(|| Error::undefined(format!("cell `{cell}` in `{}`", self.name)))?;
                cell.port_width(port.port).ok_or_else(|| {
                    Error::undefined(format!("port `{}` on cell `{}`", port.port, cell.name))
                })
            }
            PortParent::Group(group) => {
                if !self.groups.contains(group) {
                    return Err(Error::undefined(format!(
                        "group `{group}` in `{}`",
                        self.name
                    )));
                }
                let p = port.port.as_str();
                if p == "go" || p == "done" {
                    Ok(1)
                } else {
                    Err(Error::undefined(format!(
                        "hole `{group}[{p}]`: only `go` and `done` holes exist"
                    )))
                }
            }
        }
    }

    /// The component's `"static"` latency attribute, if annotated/inferred.
    pub fn static_latency(&self) -> Option<u64> {
        self.attributes.get(attr::static_())
    }

    /// A cell name based on `prefix` that is not yet taken.
    ///
    /// Probing starts from the last suffix handed out for this prefix
    /// (rather than restarting at 0, which made generating *n* names with
    /// one prefix quadratic). The returned name is not registered: repeated
    /// calls without inserting a cell return the same name.
    pub fn fresh_cell_name(&mut self, prefix: &str) -> Id {
        let direct = Id::new(prefix);
        if !self.cells.contains(direct) {
            return direct;
        }
        let start = self
            .fresh_hints
            .cells
            .get(prefix)
            .copied()
            .unwrap_or_default();
        let mut i = start;
        loop {
            let candidate = Id::new(format!("{prefix}{i}"));
            if !self.cells.contains(candidate) {
                self.fresh_hints.cells.insert(prefix.to_string(), i);
                return candidate;
            }
            i += 1;
        }
    }

    /// A group name based on `prefix` that is not yet taken. Same probing
    /// and hint behavior as [`Component::fresh_cell_name`]; cells and
    /// groups are independent namespaces.
    pub fn fresh_group_name(&mut self, prefix: &str) -> Id {
        let direct = Id::new(prefix);
        if !self.groups.contains(direct) {
            return direct;
        }
        let start = self
            .fresh_hints
            .groups
            .get(prefix)
            .copied()
            .unwrap_or_default();
        let mut i = start;
        loop {
            let candidate = Id::new(format!("{prefix}{i}"));
            if !self.groups.contains(candidate) {
                self.fresh_hints.groups.insert(prefix.to_string(), i);
                return candidate;
            }
            i += 1;
        }
    }

    /// Iterate over every assignment in the component: all groups'
    /// assignments followed by the continuous assignments.
    pub fn all_assignments(&self) -> impl Iterator<Item = &Assignment> {
        self.groups
            .iter()
            .flat_map(|g| g.assignments.iter())
            .chain(self.continuous.iter())
    }
}

impl Named for Component {
    fn name(&self) -> Id {
        self.name
    }
}

/// A complete Calyx program: components plus the primitive library.
#[derive(Debug, Clone)]
pub struct Context {
    /// The program's components in definition order.
    pub components: OrderedMap<Component>,
    /// Known primitives (standard library plus `extern` declarations).
    pub lib: Library,
    /// The entry-point component (defaults to `main`).
    pub entrypoint: Id,
    /// Source locations recorded by the parser (empty for generated
    /// programs); consumed by diagnostics, ignored by compilation.
    pub sources: super::SourceMap,
}

impl Default for Context {
    fn default() -> Self {
        Self::new()
    }
}

impl Context {
    /// An empty program with the standard primitive library.
    pub fn new() -> Self {
        Context {
            components: OrderedMap::new(),
            lib: Library::std(),
            entrypoint: Id::new("main"),
            sources: super::SourceMap::default(),
        }
    }

    /// Create (but do not register) a component with only the implicit
    /// interface ports. Register it with [`Context::add_component`].
    pub fn new_component(&self, name: impl Into<Id>) -> Component {
        Component::new(name, Vec::new())
    }

    /// Register a component.
    ///
    /// Replaces any previous component with the same name (mirroring
    /// [`OrderedMap::insert`] semantics) and returns it.
    pub fn add_component(&mut self, comp: Component) -> Option<Component> {
        self.components.insert(comp)
    }

    /// Look up a component by name.
    pub fn component(&self, name: impl Into<Id>) -> Option<&Component> {
        self.components.get(name.into())
    }

    /// Look up a component mutably by name.
    pub fn component_mut(&mut self, name: impl Into<Id>) -> Option<&mut Component> {
        self.components.get_mut(name.into())
    }

    /// The entry-point component.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] when the entrypoint has not been added.
    pub fn entry(&self) -> CalyxResult<&Component> {
        self.components
            .get(self.entrypoint)
            .ok_or_else(|| Error::undefined(format!("entrypoint component `{}`", self.entrypoint)))
    }

    /// Resolve the port list for a cell of the given type.
    ///
    /// Like primitive ports, the directions are from the *instantiated*
    /// entity's own perspective: a component's `go` input stays `Input`,
    /// meaning the instantiating component drives it (the validator treats
    /// cell `Input` ports as writable).
    ///
    /// # Errors
    ///
    /// Returns an error when the primitive/component does not exist or
    /// parameters fail to resolve.
    pub fn resolve_cell_ports(&self, prototype: &CellType) -> CalyxResult<Vec<PortDef>> {
        match prototype {
            CellType::Primitive { name, params } => self.lib.expect(*name)?.resolve(params),
            CellType::Component { name } => {
                let comp = self
                    .components
                    .get(*name)
                    .ok_or_else(|| Error::undefined(format!("component `{name}`")))?;
                Ok(comp.signature.clone())
            }
        }
    }

    /// Construct a fully resolved [`Cell`].
    ///
    /// # Errors
    ///
    /// Propagates resolution failures from [`Context::resolve_cell_ports`].
    pub fn make_cell(&self, name: impl Into<Id>, prototype: CellType) -> CalyxResult<Cell> {
        let ports = self.resolve_cell_ports(&prototype)?;
        Ok(Cell {
            name: name.into(),
            prototype,
            ports,
            attributes: Attributes::new(),
        })
    }

    /// Components in dependency order: every component appears after the
    /// components it instantiates. The paper's bottom-up passes (latency
    /// inference across components) rely on this order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Malformed`] if instantiation is cyclic.
    pub fn topological_order(&self) -> CalyxResult<Vec<Id>> {
        let mut order = Vec::new();
        let mut state: std::collections::HashMap<Id, u8> = std::collections::HashMap::new();
        fn visit(
            ctx: &Context,
            name: Id,
            state: &mut std::collections::HashMap<Id, u8>,
            order: &mut Vec<Id>,
        ) -> CalyxResult<()> {
            match state.get(&name) {
                Some(2) => return Ok(()),
                Some(1) => {
                    return Err(Error::malformed(format!(
                        "cyclic component instantiation through `{name}`"
                    )))
                }
                _ => {}
            }
            state.insert(name, 1);
            if let Some(comp) = ctx.components.get(name) {
                for cell in comp.cells.iter() {
                    if let CellType::Component { name: child } = cell.prototype {
                        visit(ctx, child, state, order)?;
                    }
                }
            }
            state.insert(name, 2);
            order.push(name);
            Ok(())
        }
        for name in self.components.names().collect::<Vec<_>>() {
            visit(self, name, &mut state, &mut order)?;
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_interface_ports() {
        let comp = Component::new("main", vec![PortDef::new("x", 8, Direction::Input)]);
        assert_eq!(comp.signature.len(), 3);
        let go = comp.signature_port(Id::new("go")).unwrap();
        assert_eq!(go.width, 1);
        assert_eq!(go.direction, Direction::Input);
        assert!(go.attributes.has(attr::interface()));
        let done = comp.signature_port(Id::new("done")).unwrap();
        assert_eq!(done.direction, Direction::Output);
    }

    #[test]
    fn explicit_go_not_duplicated() {
        let comp = Component::new("main", vec![PortDef::new("go", 1, Direction::Input)]);
        assert_eq!(
            comp.signature
                .iter()
                .filter(|p| p.name.as_str() == "go")
                .count(),
            1
        );
    }

    #[test]
    fn port_width_resolution() {
        let ctx = Context::new();
        let mut comp = ctx.new_component("main");
        let cell = ctx
            .make_cell(
                "r",
                CellType::Primitive {
                    name: Id::new("std_reg"),
                    params: vec![16],
                },
            )
            .unwrap();
        comp.cells.insert(cell);
        comp.groups.insert(Group::new("g"));
        assert_eq!(comp.port_width(&PortRef::cell("r", "in")).unwrap(), 16);
        assert_eq!(comp.port_width(&PortRef::hole("g", "done")).unwrap(), 1);
        assert_eq!(comp.port_width(&PortRef::this("go")).unwrap(), 1);
        assert!(comp.port_width(&PortRef::cell("nope", "in")).is_err());
        assert!(comp.port_width(&PortRef::hole("g", "bogus")).is_err());
    }

    #[test]
    fn component_cells_keep_inner_perspective() {
        let mut ctx = Context::new();
        let inner = ctx.new_component("inner");
        ctx.add_component(inner);
        let ports = ctx
            .resolve_cell_ports(&CellType::Component {
                name: Id::new("inner"),
            })
            .unwrap();
        let go = ports.iter().find(|p| p.name.as_str() == "go").unwrap();
        // `go` is an input of `inner`; the instantiator drives it, which the
        // validator models as cell ports with direction `Input` being
        // writable.
        assert_eq!(go.direction, Direction::Input);
        let done = ports.iter().find(|p| p.name.as_str() == "done").unwrap();
        assert_eq!(done.direction, Direction::Output);
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let ctx = Context::new();
        let mut comp = ctx.new_component("main");
        let r = ctx
            .make_cell(
                "fsm",
                CellType::Primitive {
                    name: Id::new("std_reg"),
                    params: vec![1],
                },
            )
            .unwrap();
        comp.cells.insert(r);
        assert_eq!(comp.fresh_cell_name("fsm").as_str(), "fsm0");
        assert_eq!(comp.fresh_cell_name("other").as_str(), "other");
        // Without inserting the returned name, the probe is repeatable.
        assert_eq!(comp.fresh_cell_name("fsm").as_str(), "fsm0");
    }

    /// Generating many names with one prefix must not rescan `{prefix}0..`
    /// per call: with the per-prefix hint the whole sequence is linear.
    #[test]
    fn fresh_names_scale_linearly_and_stay_unique() {
        let ctx = Context::new();
        let mut comp = ctx.new_component("main");
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..3000 {
            let cell = ctx
                .make_cell(
                    comp.fresh_cell_name("fsm"),
                    CellType::Primitive {
                        name: Id::new("std_reg"),
                        params: vec![1],
                    },
                )
                .unwrap();
            assert!(seen.insert(cell.name), "duplicate fresh name {}", cell.name);
            comp.cells.insert(cell);
            // Interleave a second prefix to check hints are per-prefix.
            if i % 7 == 0 {
                let g = comp.fresh_group_name("seq");
                assert!(!comp.groups.contains(g));
                comp.groups.insert(Group::new(g));
            }
        }
        // 1 direct `fsm` + 2999 numbered suffixes, ending at fsm2998.
        assert_eq!(comp.cells.len(), 3000);
        assert!(comp.cells.contains(Id::new("fsm2998")));
        // A hand-inserted name in the middle of the sequence is skipped.
        let mut comp2 = ctx.new_component("two");
        for name in ["g", "g0", "g2"] {
            comp2.groups.insert(Group::new(name));
        }
        assert_eq!(comp2.fresh_group_name("g").as_str(), "g1");
        comp2.groups.insert(Group::new("g1"));
        assert_eq!(comp2.fresh_group_name("g").as_str(), "g3");
    }

    #[test]
    fn topological_order_children_first() {
        let mut ctx = Context::new();
        let pe = ctx.new_component("pe");
        ctx.add_component(pe);
        let mut main = ctx.new_component("main");
        let cell = ctx
            .make_cell(
                "pe0",
                CellType::Component {
                    name: Id::new("pe"),
                },
            )
            .unwrap();
        main.cells.insert(cell);
        ctx.add_component(main);
        let order = ctx.topological_order().unwrap();
        let pos = |n: &str| order.iter().position(|i| i.as_str() == n).unwrap();
        assert!(pos("pe") < pos("main"));
    }
}
