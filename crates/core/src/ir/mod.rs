//! The Calyx intermediate language.
//!
//! A Calyx [`Context`] holds a set of [`Component`]s plus the standard
//! primitive [`Library`]. Each component instantiates [`Cell`]s, connects
//! their ports with guarded [`Assignment`]s — either directly (*continuous*
//! assignments) or encapsulated in named [`Group`]s — and schedules groups
//! with a [`Control`] program.
//!
//! Frontends construct programs through [`Builder`] or by parsing the
//! textual format with [`parse_context`]; the printer renders programs back
//! to the same format.

mod attributes;
mod builder;
mod cell;
mod component;
mod control;
mod guard;
mod id;
mod parser;
mod primitives;
mod printer;
mod rewriter;
mod source_map;
pub mod validate;

pub use attributes::{attr, Attributes};
pub use builder::Builder;
pub use cell::{Assignment, Atom, Cell, CellType, Direction, Group, PortDef, PortParent, PortRef};
pub use component::{Component, Context};
pub use control::Control;
pub use guard::{CompOp, Guard, GuardPorts};
pub use id::Id;
pub use parser::{parse_context, parse_guard};
pub use primitives::{Library, PrimitiveDef, PrimitivePort, WidthSpec};
pub use printer::Printer;
pub use rewriter::Rewriter;
pub use source_map::{Loc, SourceMap, Truncation};
