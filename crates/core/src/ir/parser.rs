//! Parser for the textual Calyx format.
//!
//! The grammar follows the paper's concrete syntax (§3) plus the `extern`
//! form for black-box RTL (§6.2):
//!
//! ```text
//! file      ::= (import | extern | component)*
//! import    ::= "import" STRING ";"
//! extern    ::= "extern" STRING "{" prim_decl* "}"
//! prim_decl ::= "component" IDENT "(" ports ")" "->" "(" ports ")" ";"
//! component ::= "component" IDENT attrs? "(" ports ")" "->" "(" ports ")"
//!               "{" cells wires control "}"
//! cells     ::= "cells" "{" (at_attrs IDENT "=" IDENT "(" nums ")" ";")* "}"
//! wires     ::= "wires" "{" (group | assign)* "}"
//! group     ::= "group" IDENT attrs? "{" assign* "}"
//! assign    ::= portref "=" (guard "?")? atom ";"
//! control   ::= "control" "{" stmt? "}"
//! stmt      ::= at_attrs (IDENT ";" | seq | par | if | while)
//! ```
//!
//! Components may reference each other in any order; parsing is two-phase
//! (signatures first, then bodies).

use super::cell::Group;
use super::{
    Assignment, Atom, Attributes, CellType, CompOp, Component, Context, Control, Direction, Guard,
    Id, Loc, PortDef, PrimitiveDef, PrimitivePort, SourceMap, Truncation, WidthSpec,
};
use crate::errors::{CalyxResult, Error};

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(u64),
    Sized { width: u32, val: u64 },
    Str(String),
    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Lt,
    Gt,
    Leq,
    Geq,
    EqEq,
    Neq,
    Eq,
    Semi,
    Colon,
    Comma,
    Dot,
    Question,
    Bang,
    Amp,
    Pipe,
    At,
    Arrow,
    Eof,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

/// Tokenize `src`, additionally reporting every sized literal whose value
/// was truncated to its declared width — masking happens here, so the
/// lexer is the only place the over-wide value is still observable.
fn lex(src: &str) -> CalyxResult<(Vec<Spanned>, Vec<Truncation>)> {
    let mut toks = Vec::new();
    let mut truncations = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            toks.push(Spanned {
                tok: $tok,
                line,
                col,
            });
            i += $len;
            col += $len;
        }};
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            '[' => push!(Tok::LBracket, 1),
            ']' => push!(Tok::RBracket, 1),
            ';' => push!(Tok::Semi, 1),
            ':' => push!(Tok::Colon, 1),
            ',' => push!(Tok::Comma, 1),
            '.' => push!(Tok::Dot, 1),
            '?' => push!(Tok::Question, 1),
            '&' if bytes.get(i + 1) == Some(&b'&') => push!(Tok::Amp, 2),
            '&' => push!(Tok::Amp, 1),
            '|' if bytes.get(i + 1) == Some(&b'|') => push!(Tok::Pipe, 2),
            '|' => push!(Tok::Pipe, 1),
            '@' => push!(Tok::At, 1),
            '-' if bytes.get(i + 1) == Some(&b'>') => push!(Tok::Arrow, 2),
            '=' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::EqEq, 2),
            '=' => push!(Tok::Eq, 1),
            '!' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::Neq, 2),
            '!' => push!(Tok::Bang, 1),
            '<' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::Leq, 2),
            '<' => push!(Tok::Lt, 1),
            '>' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::Geq, 2),
            '>' => push!(Tok::Gt, 1),
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(Error::Parse {
                        msg: "unterminated string literal".into(),
                        line,
                        col,
                    });
                }
                let s = src[start..j].to_string();
                let len = j + 1 - i;
                push!(Tok::Str(s), len);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let first: u64 = src[start..j].parse().map_err(|_| Error::Parse {
                    msg: format!("number `{}` out of range", &src[start..j]),
                    line,
                    col,
                })?;
                // Sized literal: `32'd5`.
                if bytes.get(j) == Some(&b'\'') && bytes.get(j + 1) == Some(&b'd') {
                    let vstart = j + 2;
                    let mut k = vstart;
                    while k < bytes.len() && bytes[k].is_ascii_digit() {
                        k += 1;
                    }
                    if k == vstart {
                        return Err(Error::Parse {
                            msg: "expected digits after 'd".into(),
                            line,
                            col,
                        });
                    }
                    let val: u64 = src[vstart..k].parse().map_err(|_| Error::Parse {
                        msg: format!("constant `{}` out of range", &src[vstart..k]),
                        line,
                        col,
                    })?;
                    let width = first as u32;
                    let kept = if width >= 64 {
                        val
                    } else {
                        val & ((1u64 << width) - 1)
                    };
                    if kept != val {
                        truncations.push(Truncation {
                            loc: Loc { line, col },
                            width,
                            val,
                            kept,
                        });
                    }
                    let len = k - i;
                    push!(
                        Tok::Sized {
                            width: first as u32,
                            val
                        },
                        len
                    );
                } else {
                    let len = j - i;
                    push!(Tok::Num(first), len);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let s = src[start..j].to_string();
                let len = j - i;
                push!(Tok::Ident(s), len);
            }
            other => {
                return Err(Error::Parse {
                    msg: format!("unexpected character `{other}`"),
                    line,
                    col,
                })
            }
        }
    }
    toks.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok((toks, truncations))
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

/// A guard-or-atom expression; disambiguated by the trailing `?`.
enum GExpr {
    Atom(Atom),
    Guard(Guard),
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    /// The position of the *current* (not yet consumed) token — captured
    /// before consuming a name to record where that name is declared.
    fn loc(&self) -> Loc {
        let sp = &self.toks[self.pos];
        Loc {
            line: sp.line,
            col: sp.col,
        }
    }

    fn err(&self, msg: impl std::fmt::Display) -> Error {
        let sp = &self.toks[self.pos];
        Error::Parse {
            msg: msg.to_string(),
            line: sp.line,
            col: sp.col,
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> CalyxResult<()> {
        if *self.peek() == tok {
            self.next();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.next();
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> CalyxResult<Id> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.next();
                Ok(Id::new(s))
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn keyword(&mut self, kw: &str) -> CalyxResult<()> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.next();
                Ok(())
            }
            other => Err(self.err(format!("expected keyword `{kw}`, found {other:?}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn num(&mut self, what: &str) -> CalyxResult<u64> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.next();
                Ok(n)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    /// `<"key"=num, ...>` — optional.
    fn angle_attributes(&mut self) -> CalyxResult<Attributes> {
        let mut attrs = Attributes::new();
        if !self.eat(Tok::Lt) {
            return Ok(attrs);
        }
        loop {
            let key = match self.next() {
                Tok::Str(s) => Id::new(s),
                other => {
                    return Err(self.err(format!("expected attribute string, found {other:?}")))
                }
            };
            self.expect(Tok::Eq, "`=`")?;
            let val = self.num("attribute value")?;
            attrs.insert(key, val);
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::Gt, "`>`")?;
        Ok(attrs)
    }

    /// `@key` or `@key(num)` — zero or more.
    fn at_attributes(&mut self) -> CalyxResult<Attributes> {
        let mut attrs = Attributes::new();
        while self.eat(Tok::At) {
            let key = self.ident("attribute name")?;
            let val = if self.eat(Tok::LParen) {
                let v = self.num("attribute value")?;
                self.expect(Tok::RParen, "`)`")?;
                v
            } else {
                1
            };
            attrs.insert(key, val);
        }
        Ok(attrs)
    }

    /// `name: width, ...` until the closing paren, with each port's
    /// declaration position (dropped by `extern` signatures, recorded in
    /// the source map for component signatures).
    fn port_list(&mut self, direction: Direction) -> CalyxResult<Vec<(PortDef, Loc)>> {
        let mut ports = Vec::new();
        self.expect(Tok::LParen, "`(`")?;
        if self.eat(Tok::RParen) {
            return Ok(ports);
        }
        loop {
            let attrs = self.at_attributes()?;
            let loc = self.loc();
            let name = self.ident("port name")?;
            self.expect(Tok::Colon, "`:`")?;
            let width = self.num("port width")? as u32;
            let mut def = PortDef::new(name, width, direction);
            def.attributes = attrs;
            ports.push((def, loc));
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        Ok(ports)
    }

    /// Port reference: `cell.port`, `group[hole]`, or a bare `this` port.
    fn port_ref(&mut self) -> CalyxResult<super::PortRef> {
        let first = self.ident("port reference")?;
        if self.eat(Tok::Dot) {
            let port = self.ident("port name")?;
            Ok(super::PortRef::cell(first, port))
        } else if self.eat(Tok::LBracket) {
            let hole = self.ident("hole name")?;
            self.expect(Tok::RBracket, "`]`")?;
            Ok(super::PortRef::hole(first, hole))
        } else {
            Ok(super::PortRef::this(first))
        }
    }

    fn atom(&mut self) -> CalyxResult<Atom> {
        match self.peek().clone() {
            Tok::Sized { width, val } => {
                self.next();
                Ok(Atom::constant(val, width))
            }
            Tok::Ident(_) => Ok(Atom::Port(self.port_ref()?)),
            other => Err(self.err(format!("expected port or constant, found {other:?}"))),
        }
    }

    // Guard grammar: or > and > comparison/unary.
    fn gexpr(&mut self) -> CalyxResult<GExpr> {
        self.g_or()
    }

    fn g_or(&mut self) -> CalyxResult<GExpr> {
        let mut lhs = self.g_and()?;
        while *self.peek() == Tok::Pipe {
            self.next();
            let rhs = self.g_and()?;
            lhs = GExpr::Guard(to_guard(lhs)?.or(to_guard(rhs)?));
        }
        Ok(lhs)
    }

    fn g_and(&mut self) -> CalyxResult<GExpr> {
        let mut lhs = self.g_cmp()?;
        while *self.peek() == Tok::Amp {
            self.next();
            let rhs = self.g_cmp()?;
            lhs = GExpr::Guard(to_guard(lhs)?.and(to_guard(rhs)?));
        }
        Ok(lhs)
    }

    fn g_cmp(&mut self) -> CalyxResult<GExpr> {
        let lhs = self.g_unary()?;
        let op = match self.peek() {
            Tok::EqEq => Some(CompOp::Eq),
            Tok::Neq => Some(CompOp::Neq),
            Tok::Lt => Some(CompOp::Lt),
            Tok::Gt => Some(CompOp::Gt),
            Tok::Leq => Some(CompOp::Leq),
            Tok::Geq => Some(CompOp::Geq),
            _ => None,
        };
        match op {
            None => Ok(lhs),
            Some(op) => {
                self.next();
                let rhs = self.g_unary()?;
                let l = to_atom(lhs).map_err(|m| self.err(m))?;
                let r = to_atom(rhs).map_err(|m| self.err(m))?;
                Ok(GExpr::Guard(Guard::Comp(op, l, r)))
            }
        }
    }

    fn g_unary(&mut self) -> CalyxResult<GExpr> {
        if self.eat(Tok::Bang) {
            let inner = self.g_unary()?;
            return Ok(GExpr::Guard(to_guard(inner)?.not()));
        }
        if self.eat(Tok::LParen) {
            let inner = self.gexpr()?;
            self.expect(Tok::RParen, "`)`")?;
            return Ok(inner);
        }
        Ok(GExpr::Atom(self.atom()?))
    }

    /// `dst = (guard ?)? src ;`
    fn assignment(&mut self) -> CalyxResult<Assignment> {
        let dst = self.port_ref()?;
        self.expect(Tok::Eq, "`=`")?;
        let first = self.gexpr()?;
        let asgn = if self.eat(Tok::Question) {
            let guard = to_guard(first)?;
            let src = self.atom()?;
            Assignment::guarded(dst, src, guard)
        } else {
            let src = to_atom(first).map_err(|m| self.err(m))?;
            Assignment::new(dst, src)
        };
        self.expect(Tok::Semi, "`;`")?;
        Ok(asgn)
    }

    fn control_stmt(&mut self) -> CalyxResult<Control> {
        let attrs = self.at_attributes()?;
        let mut stmt = if self.at_keyword("seq") {
            self.next();
            Control::seq(self.stmt_block()?)
        } else if self.at_keyword("par") {
            self.next();
            Control::par(self.stmt_block()?)
        } else if self.at_keyword("if") {
            self.next();
            let port = self.port_ref()?;
            let cond = if self.at_keyword("with") {
                self.next();
                Some(self.ident("condition group")?)
            } else {
                None
            };
            let tbranch = block_to_control(self.stmt_block()?);
            let fbranch = if self.at_keyword("else") {
                self.next();
                block_to_control(self.stmt_block()?)
            } else {
                Control::Empty
            };
            Control::if_(port, cond, tbranch, fbranch)
        } else if self.at_keyword("while") {
            self.next();
            let port = self.port_ref()?;
            let cond = if self.at_keyword("with") {
                self.next();
                Some(self.ident("condition group")?)
            } else {
                None
            };
            let body = block_to_control(self.stmt_block()?);
            Control::while_(port, cond, body)
        } else {
            let group = self.ident("group name")?;
            self.expect(Tok::Semi, "`;`")?;
            Control::enable(group)
        };
        if let Some(a) = stmt.attributes_mut() {
            for (k, v) in attrs.iter() {
                a.insert(k, v);
            }
        }
        Ok(stmt)
    }

    fn stmt_block(&mut self) -> CalyxResult<Vec<Control>> {
        self.expect(Tok::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while !self.eat(Tok::RBrace) {
            stmts.push(self.control_stmt()?);
        }
        Ok(stmts)
    }
}

fn to_guard(e: GExpr) -> CalyxResult<Guard> {
    match e {
        GExpr::Guard(g) => Ok(g),
        GExpr::Atom(Atom::Port(p)) => Ok(Guard::Port(p)),
        GExpr::Atom(Atom::Const { val: 1, width: 1 }) => Ok(Guard::True),
        GExpr::Atom(a) => Err(Error::malformed(format!(
            "constant `{a}` cannot be used as a guard"
        ))),
    }
}

fn to_atom(e: GExpr) -> Result<Atom, String> {
    match e {
        GExpr::Atom(a) => Ok(a),
        GExpr::Guard(_) => Err("expected a port or constant, found a guard expression".into()),
    }
}

fn block_to_control(mut stmts: Vec<Control>) -> Control {
    match stmts.len() {
        0 => Control::Empty,
        1 => stmts.pop().expect("len checked"),
        _ => Control::seq(stmts),
    }
}

// ---------------------------------------------------------------------------
// Two-phase file parsing
// ---------------------------------------------------------------------------

struct RawCell {
    attrs: Attributes,
    name: Id,
    proto: Id,
    params: Vec<u64>,
}

struct RawComponent {
    name: Id,
    attrs: Attributes,
    inputs: Vec<PortDef>,
    outputs: Vec<PortDef>,
    cells: Vec<RawCell>,
    groups: Vec<Group>,
    continuous: Vec<Assignment>,
    control: Control,
}

fn parse_component(p: &mut Parser, sources: &mut SourceMap) -> CalyxResult<RawComponent> {
    p.keyword("component")?;
    let name = p.ident("component name")?;
    let attrs = p.angle_attributes()?;
    let inputs = p.port_list(Direction::Input)?;
    p.expect(Tok::Arrow, "`->`")?;
    let outputs = p.port_list(Direction::Output)?;
    for (def, loc) in inputs.iter().chain(outputs.iter()) {
        sources.record_port(name, def.name, *loc);
    }
    let inputs: Vec<PortDef> = inputs.into_iter().map(|(d, _)| d).collect();
    let outputs: Vec<PortDef> = outputs.into_iter().map(|(d, _)| d).collect();
    p.expect(Tok::LBrace, "`{`")?;

    // cells { ... }
    p.keyword("cells")?;
    p.expect(Tok::LBrace, "`{`")?;
    let mut cells = Vec::new();
    while !p.eat(Tok::RBrace) {
        let cattrs = p.at_attributes()?;
        let cloc = p.loc();
        let cname = p.ident("cell name")?;
        p.expect(Tok::Eq, "`=`")?;
        let proto = p.ident("primitive or component name")?;
        p.expect(Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if !p.eat(Tok::RParen) {
            loop {
                params.push(p.num("parameter")?);
                if !p.eat(Tok::Comma) {
                    break;
                }
            }
            p.expect(Tok::RParen, "`)`")?;
        }
        p.expect(Tok::Semi, "`;`")?;
        sources.record_cell(name, cname, cloc);
        cells.push(RawCell {
            attrs: cattrs,
            name: cname,
            proto,
            params,
        });
    }

    // wires { ... }
    p.keyword("wires")?;
    p.expect(Tok::LBrace, "`{`")?;
    let mut groups = Vec::new();
    let mut continuous = Vec::new();
    while !p.eat(Tok::RBrace) {
        if p.at_keyword("group") {
            p.next();
            let gloc = p.loc();
            let gname = p.ident("group name")?;
            let gattrs = p.angle_attributes()?;
            p.expect(Tok::LBrace, "`{`")?;
            sources.record_group(name, gname, gloc);
            let mut group = Group::new(gname);
            group.attributes = gattrs;
            while !p.eat(Tok::RBrace) {
                let aloc = p.loc();
                sources.record_assignment(name, Some(gname), group.assignments.len(), aloc);
                group.assignments.push(p.assignment()?);
            }
            groups.push(group);
        } else {
            let aloc = p.loc();
            sources.record_assignment(name, None, continuous.len(), aloc);
            continuous.push(p.assignment()?);
        }
    }

    // control { ... }
    p.keyword("control")?;
    p.expect(Tok::LBrace, "`{`")?;
    let control = if p.eat(Tok::RBrace) {
        Control::Empty
    } else {
        let stmt = p.control_stmt()?;
        p.expect(Tok::RBrace, "`}`")?;
        stmt
    };

    p.expect(Tok::RBrace, "`}` (end of component)")?;
    Ok(RawComponent {
        name,
        attrs,
        inputs,
        outputs,
        cells,
        groups,
        continuous,
        control,
    })
}

/// Parse `extern "file.sv" { component name(ins) -> (outs); ... }` into
/// primitive definitions with fixed widths.
fn parse_extern(p: &mut Parser) -> CalyxResult<Vec<PrimitiveDef>> {
    p.keyword("extern")?;
    match p.next() {
        Tok::Str(_) => {}
        other => {
            return Err(p.err(format!(
                "expected file string after `extern`, found {other:?}"
            )))
        }
    }
    p.expect(Tok::LBrace, "`{`")?;
    let mut defs = Vec::new();
    while !p.eat(Tok::RBrace) {
        p.keyword("component")?;
        let name = p.ident("extern component name")?;
        let attrs = p.angle_attributes()?;
        let inputs = p.port_list(Direction::Input)?;
        p.expect(Tok::Arrow, "`->`")?;
        let outputs = p.port_list(Direction::Output)?;
        p.expect(Tok::Semi, "`;`")?;
        let ports = inputs
            .iter()
            .chain(outputs.iter())
            .map(|(pd, _)| PrimitivePort {
                name: pd.name,
                width: WidthSpec::Const(pd.width),
                direction: pd.direction,
            })
            .collect();
        defs.push(PrimitiveDef {
            name,
            params: Vec::new(),
            ports,
            attributes: attrs,
            is_comb: false,
        });
    }
    Ok(defs)
}

/// Parse a complete program into a [`Context`] with the standard library.
///
/// # Errors
///
/// Returns [`Error::Parse`] with position information on syntax errors, and
/// resolution errors (undefined primitives/components, bad parameters) as
/// [`Error::Undefined`]/[`Error::BuildError`].
pub fn parse_context(src: &str) -> CalyxResult<Context> {
    let (toks, truncations) = lex(src)?;
    let mut sources = SourceMap::default();
    for t in truncations {
        sources.record_truncation(t);
    }
    let mut p = Parser { toks, pos: 0 };
    let mut raws = Vec::new();
    let mut ctx = Context::new();
    loop {
        match p.peek() {
            Tok::Eof => break,
            Tok::Ident(s) if s == "import" => {
                p.next();
                match p.next() {
                    Tok::Str(_) => {}
                    other => {
                        return Err(p.err(format!("expected import path string, found {other:?}")))
                    }
                }
                p.expect(Tok::Semi, "`;`")?;
            }
            Tok::Ident(s) if s == "extern" => {
                for def in parse_extern(&mut p)? {
                    ctx.lib.add(def);
                }
            }
            Tok::Ident(s) if s == "component" => raws.push(parse_component(&mut p, &mut sources)?),
            other => return Err(p.err(format!("expected top-level item, found {other:?}"))),
        }
    }

    // Phase 1: register signatures so components can instantiate each other
    // regardless of definition order.
    for raw in &raws {
        let mut ports = raw.inputs.clone();
        ports.extend(raw.outputs.iter().cloned());
        let mut comp = Component::new(raw.name, ports);
        comp.attributes = raw.attrs.clone();
        ctx.add_component(comp);
    }

    // Phase 2: fill in bodies.
    for raw in raws {
        let mut comp = ctx
            .components
            .get(raw.name)
            .cloned()
            .expect("registered in phase 1");
        for rc in raw.cells {
            let proto = if ctx.components.contains(rc.proto) {
                CellType::Component { name: rc.proto }
            } else {
                CellType::Primitive {
                    name: rc.proto,
                    params: rc.params,
                }
            };
            let mut cell = ctx.make_cell(rc.name, proto)?;
            cell.attributes = rc.attrs;
            if comp.cells.insert(cell).is_some() {
                return Err(Error::malformed(format!(
                    "duplicate cell `{}` in component `{}`",
                    rc.name, raw.name
                )));
            }
        }
        for g in raw.groups {
            let gname = g.name;
            if comp.groups.insert(g).is_some() {
                return Err(Error::malformed(format!(
                    "duplicate group `{gname}` in component `{}`",
                    raw.name
                )));
            }
        }
        comp.continuous = raw.continuous;
        comp.control = raw.control;
        ctx.add_component(comp);
    }
    ctx.sources = sources;
    Ok(ctx)
}

/// Parse a guard expression standalone (used by tests and the REPL-style
/// examples).
///
/// # Errors
///
/// Returns [`Error::Parse`] on malformed guards.
pub fn parse_guard(src: &str) -> CalyxResult<Guard> {
    let (toks, _) = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.gexpr()?;
    if *p.peek() != Tok::Eof {
        return Err(p.err("trailing tokens after guard"));
    }
    to_guard(e)
}

#[cfg(test)]
mod tests {
    use super::super::Printer;
    use super::*;

    const FIG2: &str = r#"
        // Figure 2a from the paper.
        component main() -> () {
          cells {
            x = std_reg(32);
          }
          wires {
            group one {
              x.in = 32'd1;
              x.write_en = 1'd1;
              one[done] = x.done;
            }
            group two {
              x.in = 32'd2;
              x.write_en = 1'd1;
              two[done] = x.done;
            }
          }
          control {
            seq { one; two; }
          }
        }
    "#;

    #[test]
    fn parses_figure_2() {
        let ctx = parse_context(FIG2).unwrap();
        let main = ctx.component("main").unwrap();
        assert_eq!(main.cells.len(), 1);
        assert_eq!(main.groups.len(), 2);
        assert_eq!(main.control.statement_count(), 3);
        let one = main.groups.get(Id::new("one")).unwrap();
        assert_eq!(one.assignments.len(), 3);
        assert_eq!(one.assignments[0].src, Atom::constant(1, 32));
    }

    #[test]
    fn round_trips_through_printer() {
        let ctx = parse_context(FIG2).unwrap();
        let printed = Printer::print_context(&ctx);
        let reparsed = parse_context(&printed).unwrap();
        assert_eq!(
            Printer::print_context(&reparsed),
            printed,
            "print→parse→print must be stable"
        );
    }

    #[test]
    fn parses_guards_with_precedence() {
        let g = parse_guard("a.out & !b.out | fsm.out == 2'd3").unwrap();
        // (a.out & !b.out) | (fsm.out == 2'd3)
        match g {
            Guard::Or(lhs, rhs) => {
                assert!(matches!(*lhs, Guard::And(..)));
                assert!(matches!(*rhs, Guard::Comp(CompOp::Eq, ..)));
            }
            other => panic!("unexpected guard {other:?}"),
        }
    }

    #[test]
    fn parses_guarded_assignments() {
        let src = r#"
            component main(x: 32) -> (y: 32) {
              cells { a = std_add(32); }
              wires {
                a.left = x;
                a.right = a.out < 32'd10 ? x;
                y = a.out;
              }
              control {}
            }
        "#;
        let ctx = parse_context(src).unwrap();
        let main = ctx.component("main").unwrap();
        assert_eq!(main.continuous.len(), 3);
        assert!(matches!(
            main.continuous[1].guard,
            Guard::Comp(CompOp::Lt, ..)
        ));
    }

    #[test]
    fn parses_if_while_control() {
        let src = r#"
            component main() -> () {
              cells { lt = std_lt(4); r = std_reg(4); }
              wires {
                group cond { cond[done] = 1'd1; }
                group body {
                  r.in = 4'd1; r.write_en = 1'd1; body[done] = r.done;
                }
              }
              control {
                seq {
                  while lt.out with cond { body; }
                  if lt.out with cond { body; } else { body; }
                }
              }
            }
        "#;
        let ctx = parse_context(src).unwrap();
        let main = ctx.component("main").unwrap();
        match &main.control {
            Control::Seq { stmts, .. } => {
                assert!(matches!(stmts[0], Control::While { .. }));
                assert!(matches!(stmts[1], Control::If { .. }));
            }
            other => panic!("unexpected control {other:?}"),
        }
    }

    #[test]
    fn components_reference_each_other_in_any_order() {
        let src = r#"
            component main() -> () {
              cells { p = pe(); }
              wires {}
              control {}
            }
            component pe(a: 8) -> (b: 8) {
              cells {}
              wires { b = a; }
              control {}
            }
        "#;
        let ctx = parse_context(src).unwrap();
        let main = ctx.component("main").unwrap();
        let p = main.cells.get(Id::new("p")).unwrap();
        assert!(matches!(p.prototype, CellType::Component { .. }));
        // Instantiated `pe` exposes reversed-direction ports plus interface.
        assert_eq!(p.port_width(Id::new("a")), Some(8));
        assert_eq!(p.port_width(Id::new("go")), Some(1));
    }

    #[test]
    fn extern_defines_primitives() {
        let src = r#"
            extern "sqrt.sv" {
              component sqrt(in: 32, go: 1) -> (out: 32, done: 1);
            }
            component main() -> () {
              cells { s = sqrt(); }
              wires {}
              control {}
            }
        "#;
        let ctx = parse_context(src).unwrap();
        let main = ctx.component("main").unwrap();
        let s = main.cells.get(Id::new("s")).unwrap();
        assert!(s.is_primitive("sqrt"));
        assert_eq!(s.port_width(Id::new("out")), Some(32));
    }

    #[test]
    fn control_attributes_survive() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(1); }
              wires {
                group g { r.in = 1'd1; r.write_en = 1'd1; g[done] = r.done; }
              }
              control { @static(4) seq { g; } }
            }
        "#;
        let ctx = parse_context(src).unwrap();
        let main = ctx.component("main").unwrap();
        assert_eq!(main.control.static_latency(), Some(4));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_context("component main() -> () { cells ! }").unwrap_err();
        match err {
            Error::Parse { line, col, .. } => {
                assert_eq!(line, 1);
                assert!(col > 20);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn source_map_records_declaration_sites() {
        let src = "component main(x: 8) -> () {\n\
                   \x20 cells { r = std_reg(4); }\n\
                   \x20 wires {\n\
                   \x20   group g { r.in = 4'd20; r.write_en = 1'd1; g[done] = r.done; }\n\
                   \x20 }\n\
                   \x20 control { g; }\n\
                   }\n";
        let ctx = parse_context(src).unwrap();
        let (main, r, g) = (Id::new("main"), Id::new("r"), Id::new("g"));
        let sm = &ctx.sources;
        assert_eq!(
            sm.port(main, Id::new("x")),
            Some(super::Loc { line: 1, col: 16 })
        );
        assert_eq!(sm.cell(main, r), Some(super::Loc { line: 2, col: 11 }));
        assert_eq!(sm.group(main, g), Some(super::Loc { line: 4, col: 11 }));
        // First assignment of `g` starts at its destination port.
        assert_eq!(
            sm.assignment(main, Some(g), 0),
            Some(super::Loc { line: 4, col: 15 })
        );
        // `4'd20` does not fit 4 bits: recorded as a truncation, value masked.
        let t = sm.truncations();
        assert_eq!(t.len(), 1);
        assert_eq!((t[0].width, t[0].val, t[0].kept), (4, 20, 4));
        assert_eq!(t[0].loc, super::Loc { line: 4, col: 22 });
        let main_comp = ctx.component("main").unwrap();
        let grp = main_comp.groups.get(g).unwrap();
        assert_eq!(grp.assignments[0].src, Atom::constant(4, 4));
    }

    #[test]
    fn generated_programs_have_empty_source_maps() {
        assert!(Context::new().sources.is_empty());
    }

    #[test]
    fn duplicate_cells_rejected() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(1); r = std_reg(2); }
              wires {}
              control {}
            }
        "#;
        assert!(matches!(parse_context(src), Err(Error::Malformed(_))));
    }

    #[test]
    fn imports_are_ignored() {
        let src = r#"
            import "primitives/core.futil";
            component main() -> () { cells {} wires {} control {} }
        "#;
        assert!(parse_context(src).is_ok());
    }
}
