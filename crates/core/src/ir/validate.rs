//! Structural well-formedness checks.
//!
//! These functions implement the invariants the paper's IL requires (§3.2–
//! §3.3): ports exist and widths match, destinations are actually writable,
//! syntactically-duplicate unconditional drivers are rejected, and control
//! programs reference real groups. The [`WellFormed`](crate::passes::WellFormed)
//! pass wraps them; frontends can also call them directly.

use super::{
    Assignment, Atom, Component, Context, Control, Direction, Group, Guard, PortParent, PortRef,
};
use crate::errors::{CalyxResult, Error};

/// Validate a whole program: every component, plus entry-point existence.
///
/// # Errors
///
/// Returns [`Error::Malformed`] (or [`Error::Undefined`] from width
/// resolution) describing the first violation found. To report *every*
/// violation at once, use [`collect_context`] (which this wraps).
pub fn validate_context(ctx: &Context) -> CalyxResult<()> {
    let mut errors = Vec::new();
    collect_context(ctx, &mut errors);
    match errors.into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Collect *every* structural violation in the program into `sink`, in
/// the same traversal order [`validate_context`] uses to find its first
/// error: entry-point existence, then each component's groups,
/// continuous assignments, and control program. The collecting form is
/// what the `well-formed` lint runs, so one `futil check` reports all
/// problems instead of stopping at the first.
pub fn collect_context(ctx: &Context, sink: &mut Vec<Error>) {
    if let Err(e) = ctx.entry() {
        sink.push(e);
    }
    for comp in ctx.components.iter() {
        let start = sink.len();
        collect_component(comp, sink);
        for e in &mut sink[start..] {
            *e = locate(&format!("in component `{}`", comp.name), e);
        }
    }
}

/// Re-wrap `e` with a location prefix. An already-[`Malformed`] error is
/// unwrapped first so its Display prefix (`malformed program:`) does not
/// stack up once per nesting level.
///
/// [`Malformed`]: Error::Malformed
fn locate(prefix: &str, e: &Error) -> Error {
    match e {
        Error::Malformed(msg) => Error::malformed(format!("{prefix}: {msg}")),
        other => Error::malformed(format!("{prefix}: {other}")),
    }
}

/// Validate one component.
///
/// # Errors
///
/// Returns an error when an assignment references undefined ports, widths
/// mismatch, a destination is not writable, a port has two unconditional
/// drivers in the same scope, a group never writes its `done` hole, or the
/// control program references undefined groups.
pub fn validate_component(comp: &Component) -> CalyxResult<()> {
    let mut errors = Vec::new();
    collect_component(comp, &mut errors);
    match errors.into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Per-component version of [`collect_context`] (without the component-name
/// wrapping, which the context-level walk applies).
pub fn collect_component(comp: &Component, sink: &mut Vec<Error>) {
    for group in comp.groups.iter() {
        collect_group(comp, group, sink);
        check_unique_drivers(comp, &group.assignments, group.name.as_str(), sink);
    }
    for asgn in &comp.continuous {
        if let Err(e) = validate_assignment(comp, asgn) {
            sink.push(e);
        }
    }
    check_unique_drivers(comp, &comp.continuous, "continuous assignments", sink);
    collect_control(comp, &comp.control, sink);
}

fn collect_group(comp: &Component, group: &Group, sink: &mut Vec<Error>) {
    for asgn in &group.assignments {
        if let Err(e) = validate_assignment(comp, asgn) {
            sink.push(locate(&format!("in group `{}`", group.name), &e));
        }
    }
    // Every group in a live control program must signal completion.
    if comp.control.used_groups().contains(&group.name) && group.done_writes().count() == 0 {
        sink.push(Error::malformed(format!(
            "group `{}` is enabled by the control program but never writes `{}[done]`",
            group.name, group.name
        )));
    }
}

/// Check that the lowering pipeline has run: no component may retain
/// groups or control statements. This is the structural precondition
/// shared by every consumer of control-free Calyx (SystemVerilog
/// emission, area estimation, RTL simulation — the paper's §4.2 contract
/// between the compiler and its backends).
///
/// # Errors
///
/// Returns [`Error::Malformed`] naming the first offending component.
pub fn require_lowered(ctx: &Context) -> CalyxResult<()> {
    for comp in ctx.components.iter() {
        require_lowered_component(comp)?;
    }
    Ok(())
}

/// Per-component version of [`require_lowered`].
///
/// # Errors
///
/// Returns [`Error::Malformed`] when the component retains groups or
/// control.
pub fn require_lowered_component(comp: &Component) -> CalyxResult<()> {
    if !comp.groups.is_empty() || !comp.control.is_empty() {
        return Err(Error::malformed(format!(
            "component `{}` still has groups/control; run lowering first",
            comp.name
        )));
    }
    Ok(())
}

/// Check that the design rooted at the entrypoint is a single component
/// (no component-typed cells) — the reference interpreter's elaboration
/// precondition.
///
/// # Errors
///
/// Returns [`Error::Malformed`] naming the first component instance, or
/// [`Error::Undefined`] when the entrypoint is missing.
pub fn require_single_component(ctx: &Context) -> CalyxResult<()> {
    let entry = ctx.entry()?;
    for cell in entry.cells.iter() {
        if let super::CellType::Component { name } = &cell.prototype {
            return Err(Error::malformed(format!(
                "`{}` instantiates component `{name}`; the interpreter only \
                 supports single-component designs",
                cell.name
            )));
        }
    }
    Ok(())
}

/// Direction of `port` from the *component's* point of view: may this
/// reference be used as an assignment destination?
fn writable(comp: &Component, port: &PortRef) -> CalyxResult<bool> {
    Ok(match port.parent {
        // A cell's inputs are driven by the surrounding component.
        PortParent::Cell(cell) => {
            let cell = comp
                .cells
                .get(cell)
                .ok_or_else(|| Error::undefined(format!("cell `{cell}`")))?;
            let def = cell.port(port.port).ok_or_else(|| {
                Error::undefined(format!("port `{}` on `{}`", port.port, cell.name))
            })?;
            def.direction == Direction::Input
        }
        // The component's outputs are driven from the inside.
        PortParent::This => {
            let def = comp
                .signature_port(port.port)
                .ok_or_else(|| Error::undefined(format!("signature port `{}`", port.port)))?;
            def.direction == Direction::Output
        }
        // Holes are writable (their reads are resolved by RemoveGroups).
        PortParent::Group(_) => true,
    })
}

fn validate_assignment(comp: &Component, asgn: &Assignment) -> CalyxResult<()> {
    let dst_width = comp.port_width(&asgn.dst)?;
    if !writable(comp, &asgn.dst)? {
        return Err(Error::malformed(format!(
            "`{}` is not a writable port",
            asgn.dst
        )));
    }
    let src_width = match &asgn.src {
        Atom::Port(p) => {
            if writable(comp, p)? && !p.is_hole() {
                return Err(Error::malformed(format!(
                    "`{p}` is written-only and cannot be read"
                )));
            }
            comp.port_width(p)?
        }
        Atom::Const { width, .. } => *width,
    };
    if dst_width != src_width {
        return Err(Error::malformed(format!(
            "width mismatch in `{} = {}`: {dst_width} vs {src_width} bits",
            asgn.dst, asgn.src
        )));
    }
    validate_guard(comp, &asgn.guard)
}

fn validate_guard(comp: &Component, guard: &Guard) -> CalyxResult<()> {
    match guard {
        Guard::True => Ok(()),
        Guard::Port(p) => {
            let w = comp.port_width(p)?;
            if w != 1 {
                return Err(Error::malformed(format!(
                    "guard port `{p}` must be 1 bit, found {w}"
                )));
            }
            Ok(())
        }
        Guard::Not(g) => validate_guard(comp, g),
        Guard::And(a, b) | Guard::Or(a, b) => {
            validate_guard(comp, a)?;
            validate_guard(comp, b)
        }
        Guard::Comp(_, l, r) => {
            let lw = match l {
                Atom::Port(p) => comp.port_width(p)?,
                Atom::Const { width, .. } => *width,
            };
            let rw = match r {
                Atom::Port(p) => comp.port_width(p)?,
                Atom::Const { width, .. } => *width,
            };
            if lw != rw {
                return Err(Error::malformed(format!(
                    "comparison `{l} {r}` mixes widths {lw} and {rw}"
                )));
            }
            Ok(())
        }
    }
}

/// Report two unconditional (guard-`True`) drivers of the same port in the
/// same activation scope — a *static* violation of the unique-driver rule.
/// Dynamically conflicting guarded drivers are caught by the simulator.
fn check_unique_drivers(
    _comp: &Component,
    assignments: &[Assignment],
    scope: &str,
    sink: &mut Vec<Error>,
) {
    let mut unconditional = std::collections::HashSet::new();
    for asgn in assignments {
        if asgn.guard.is_true() && !unconditional.insert(asgn.dst) {
            sink.push(Error::malformed(format!(
                "port `{}` has multiple unconditional drivers in {scope}",
                asgn.dst
            )));
        }
    }
}

fn collect_control(comp: &Component, control: &Control, sink: &mut Vec<Error>) {
    match control {
        Control::Empty => {}
        Control::Enable { group, .. } => {
            if !comp.groups.contains(*group) {
                sink.push(Error::undefined(format!("group `{group}` in control")));
            }
        }
        Control::Seq { stmts, .. } | Control::Par { stmts, .. } => {
            for s in stmts {
                collect_control(comp, s, sink);
            }
        }
        Control::If {
            port,
            cond,
            tbranch,
            fbranch,
            ..
        } => {
            collect_cond(comp, port, cond, sink);
            collect_control(comp, tbranch, sink);
            collect_control(comp, fbranch, sink);
        }
        Control::While {
            port, cond, body, ..
        } => {
            collect_cond(comp, port, cond, sink);
            collect_control(comp, body, sink);
        }
    }
}

fn collect_cond(comp: &Component, port: &PortRef, cond: &Option<super::Id>, sink: &mut Vec<Error>) {
    match comp.port_width(port) {
        Ok(w) if w != 1 => sink.push(Error::malformed(format!(
            "condition port `{port}` must be 1 bit, found {w}"
        ))),
        Ok(_) => {}
        Err(e) => sink.push(e),
    }
    if let Some(c) = cond {
        if !comp.groups.contains(*c) {
            sink.push(Error::undefined(format!("condition group `{c}`")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{parse_context, Builder, Context};
    use super::*;

    fn well_formed(src: &str) -> CalyxResult<()> {
        validate_context(&parse_context(src).expect("parses"))
    }

    #[test]
    fn accepts_valid_program() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(8); }
              wires {
                group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; }
              }
              control { g; }
            }
        "#;
        well_formed(src).unwrap();
    }

    #[test]
    fn rejects_width_mismatch() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(8); }
              wires { group g { r.in = 4'd1; g[done] = r.done; } }
              control { g; }
            }
        "#;
        let err = well_formed(src).unwrap_err();
        assert!(err.to_string().contains("width mismatch"), "{err}");
    }

    #[test]
    fn rejects_reading_an_input_port() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(8); a = std_add(8); }
              wires { group g { r.in = a.left; g[done] = r.done; } }
              control { g; }
            }
        "#;
        let err = well_formed(src).unwrap_err();
        assert!(err.to_string().contains("cannot be read"), "{err}");
    }

    #[test]
    fn rejects_missing_done() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(8); }
              wires { group g { r.in = 8'd1; r.write_en = 1'd1; } }
              control { g; }
            }
        "#;
        let err = well_formed(src).unwrap_err();
        assert!(err.to_string().contains("never writes"), "{err}");
    }

    #[test]
    fn unused_group_without_done_is_fine() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(8); }
              wires { group g { r.in = 8'd1; } }
              control {}
            }
        "#;
        well_formed(src).unwrap();
    }

    #[test]
    fn rejects_double_unconditional_drivers() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(8); }
              wires {
                group g {
                  r.in = 8'd1;
                  r.in = 8'd2;
                  r.write_en = 1'd1;
                  g[done] = r.done;
                }
              }
              control { g; }
            }
        "#;
        let err = well_formed(src).unwrap_err();
        assert!(err.to_string().contains("multiple unconditional"), "{err}");
    }

    #[test]
    fn rejects_wide_guard_port() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(8); }
              wires {
                group g {
                  r.in = r.out ? 8'd1;
                  r.write_en = 1'd1;
                  g[done] = r.done;
                }
              }
              control { g; }
            }
        "#;
        let err = well_formed(src).unwrap_err();
        assert!(err.to_string().contains("must be 1 bit"), "{err}");
    }

    #[test]
    fn rejects_undefined_control_group() {
        let src = r#"
            component main() -> () {
              cells {}
              wires {}
              control { ghost; }
            }
        "#;
        assert!(well_formed(src).is_err());
    }

    #[test]
    fn rejects_missing_entrypoint() {
        let ctx = Context::new();
        assert!(validate_context(&ctx).is_err());
    }

    #[test]
    fn collect_reports_every_violation_in_validation_order() {
        let src = r#"
            component main() -> () {
              cells { r = std_reg(8); }
              wires {
                group g {
                  r.in = 4'd1;
                  r.write_en = 1'd1;
                }
              }
              control { seq { g; ghost; } }
            }
        "#;
        let ctx = parse_context(src).expect("parses");
        let mut errors = Vec::new();
        collect_context(&ctx, &mut errors);
        let msgs: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        assert_eq!(msgs.len(), 3, "{msgs:#?}");
        assert!(msgs[0].contains("width mismatch"), "{}", msgs[0]);
        assert!(msgs[1].contains("never writes `g[done]`"), "{}", msgs[1]);
        assert!(msgs[2].contains("group `ghost` in control"), "{}", msgs[2]);
        // Every collected error carries the component wrapper, and the
        // fail-fast entry point returns exactly the first one.
        assert!(msgs.iter().all(|m| m.contains("in component `main`")));
        assert_eq!(
            validate_context(&ctx).unwrap_err().to_string(),
            msgs[0],
            "validate_context must return the first collected error"
        );
    }

    #[test]
    fn accepts_builder_output() {
        let ctx = Context::new();
        let mut comp = ctx.new_component("main");
        {
            let mut b = Builder::new(&mut comp, &ctx);
            let r = b.add_primitive("r", "std_reg", &[4]);
            let g = b.add_group("g");
            b.asgn_const(g, (r, "in"), 3, 4);
            b.asgn_const(g, (r, "write_en"), 1, 1);
            b.group_done(g, (r, "done"));
            b.set_control_enable(g);
        }
        let mut ctx = ctx;
        ctx.add_component(comp);
        validate_context(&ctx).unwrap();
    }
}
