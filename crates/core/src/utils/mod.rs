//! Small utilities shared across the compiler.

mod math;
mod ordered_map;

pub use math::bits_needed;
pub use ordered_map::{Named, OrderedMap};
