//! Small utilities shared across the compiler.

mod math;
mod ordered_map;

pub use math::bits_needed;
pub use ordered_map::{Named, OrderedMap};

/// Lower-case ASCII words separated by single dashes — the naming
/// convention every registry in the compiler (passes, backends) enforces
/// for CLI-facing names.
pub fn is_kebab_case(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('-')
        && !name.ends_with('-')
        && !name.contains("--")
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}
