//! Bit-width arithmetic helpers.

/// Number of bits needed to represent values in `0..=max_value`.
///
/// This is the width the FSM compilers use for state registers: an FSM with
/// final state `n` needs `bits_needed(n)` bits. Always returns at least 1.
///
/// ```
/// use calyx_core::utils::bits_needed;
/// assert_eq!(bits_needed(0), 1);
/// assert_eq!(bits_needed(1), 1);
/// assert_eq!(bits_needed(2), 2);
/// assert_eq!(bits_needed(3), 2);
/// assert_eq!(bits_needed(4), 3);
/// assert_eq!(bits_needed(255), 8);
/// assert_eq!(bits_needed(256), 9);
/// ```
pub fn bits_needed(max_value: u64) -> u32 {
    (64 - max_value.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        assert_eq!(bits_needed(0), 1);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(7), 3);
        assert_eq!(bits_needed(8), 4);
    }

    #[test]
    fn large_values() {
        assert_eq!(bits_needed(u64::MAX), 64);
        assert_eq!(bits_needed(1 << 62), 63);
    }

    #[test]
    fn covers_range() {
        for max in [0u64, 1, 2, 3, 15, 16, 17, 1000] {
            let bits = bits_needed(max);
            if bits < 64 {
                assert!(
                    (1u64 << bits) > max,
                    "bits_needed({max}) = {bits} cannot represent {max}"
                );
            }
        }
    }
}
