//! An insertion-ordered map keyed by interned identifiers.

use crate::ir::Id;
use std::collections::HashMap;

/// Types that carry their own name.
///
/// [`OrderedMap`] uses this to key entries, so the name acts as a primary
/// key: renaming an entry requires removing and re-inserting it.
pub trait Named {
    /// The identifier this value is stored under.
    fn name(&self) -> Id;
}

/// A map that preserves insertion order and offers O(1) lookup by [`Id`].
///
/// Calyx programs are ordered documents: cells, groups, and components print
/// and elaborate in the order a frontend created them, which keeps compiler
/// output deterministic. A `HashMap` alone would make pass output depend on
/// hash order; a `Vec` alone would make lookups linear. This structure keeps
/// both properties.
#[derive(Debug, Clone)]
pub struct OrderedMap<V> {
    values: Vec<V>,
    index: HashMap<Id, usize>,
}

impl<V> Default for OrderedMap<V> {
    fn default() -> Self {
        OrderedMap {
            values: Vec::new(),
            index: HashMap::new(),
        }
    }
}

impl<V: Named> OrderedMap<V> {
    /// Create an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True when an entry named `key` exists.
    pub fn contains(&self, key: Id) -> bool {
        self.index.contains_key(&key)
    }

    /// Look up an entry by name.
    pub fn get(&self, key: Id) -> Option<&V> {
        self.index.get(&key).map(|&i| &self.values[i])
    }

    /// Look up an entry mutably by name.
    ///
    /// Mutating the entry's *name* through this reference would desynchronize
    /// the index; use [`OrderedMap::remove`] + [`OrderedMap::insert`] to
    /// rename.
    pub fn get_mut(&mut self, key: Id) -> Option<&mut V> {
        self.index.get(&key).map(|&i| &mut self.values[i])
    }

    /// Insert a value keyed by its [`Named::name`].
    ///
    /// Returns the previous value with the same name, if any (the new value
    /// keeps the *old* position in that case).
    pub fn insert(&mut self, value: V) -> Option<V> {
        let name = value.name();
        match self.index.get(&name) {
            Some(&i) => Some(std::mem::replace(&mut self.values[i], value)),
            None => {
                self.index.insert(name, self.values.len());
                self.values.push(value);
                None
            }
        }
    }

    /// Remove the entry named `key`, preserving the order of the rest.
    pub fn remove(&mut self, key: Id) -> Option<V> {
        let i = self.index.remove(&key)?;
        let v = self.values.remove(i);
        for idx in self.index.values_mut() {
            if *idx > i {
                *idx -= 1;
            }
        }
        Some(v)
    }

    /// Keep only entries satisfying the predicate, preserving order.
    pub fn retain(&mut self, mut keep: impl FnMut(&V) -> bool) {
        let mut removed = Vec::new();
        self.values.retain(|v| {
            let k = keep(v);
            if !k {
                removed.push(v.name());
            }
            k
        });
        if !removed.is_empty() {
            self.index.clear();
            for (i, v) in self.values.iter().enumerate() {
                self.index.insert(v.name(), i);
            }
        }
    }

    /// Iterate over values in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &V> {
        self.values.iter()
    }

    /// Iterate mutably over values in insertion order.
    ///
    /// See [`OrderedMap::get_mut`] for the caveat about renaming entries.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.values.iter_mut()
    }

    /// Names of all entries in insertion order.
    pub fn names(&self) -> impl Iterator<Item = Id> + '_ {
        self.values.iter().map(|v| v.name())
    }
}

impl<V: Named> FromIterator<V> for OrderedMap<V> {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        let mut map = OrderedMap::new();
        for v in iter {
            map.insert(v);
        }
        map
    }
}

impl<'a, V: Named> IntoIterator for &'a OrderedMap<V> {
    type Item = &'a V;
    type IntoIter = std::slice::Iter<'a, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Entry(Id, u32);
    impl Named for Entry {
        fn name(&self) -> Id {
            self.0
        }
    }

    fn entry(name: &str, v: u32) -> Entry {
        Entry(Id::new(name), v)
    }

    #[test]
    fn insert_and_get() {
        let mut m = OrderedMap::new();
        assert!(m.insert(entry("a", 1)).is_none());
        assert!(m.insert(entry("b", 2)).is_none());
        assert_eq!(m.get(Id::new("a")), Some(&entry("a", 1)));
        assert_eq!(m.get(Id::new("c")), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn insert_replaces_and_keeps_position() {
        let mut m = OrderedMap::new();
        m.insert(entry("a", 1));
        m.insert(entry("b", 2));
        assert_eq!(m.insert(entry("a", 3)), Some(entry("a", 1)));
        let order: Vec<_> = m.iter().map(|e| e.1).collect();
        assert_eq!(order, vec![3, 2]);
    }

    #[test]
    fn remove_preserves_order() {
        let mut m = OrderedMap::new();
        for (n, v) in [("a", 1), ("b", 2), ("c", 3)] {
            m.insert(entry(n, v));
        }
        assert_eq!(m.remove(Id::new("b")), Some(entry("b", 2)));
        let order: Vec<_> = m.iter().map(|e| e.1).collect();
        assert_eq!(order, vec![1, 3]);
        assert_eq!(m.get(Id::new("c")), Some(&entry("c", 3)));
    }

    #[test]
    fn retain_reindexes() {
        let mut m = OrderedMap::new();
        for (n, v) in [("a", 1), ("b", 2), ("c", 3), ("d", 4)] {
            m.insert(entry(n, v));
        }
        m.retain(|e| e.1 % 2 == 0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(Id::new("d")), Some(&entry("d", 4)));
        assert!(!m.contains(Id::new("a")));
    }

    #[test]
    fn iterates_in_insertion_order() {
        let mut m = OrderedMap::new();
        for (n, v) in [("z", 1), ("y", 2), ("x", 3)] {
            m.insert(entry(n, v));
        }
        let names: Vec<_> = m.names().map(|i| i.to_string()).collect();
        assert_eq!(names, vec!["z", "y", "x"]);
    }
}
