//! `dead-write` (C0205): register writes no later read can observe.
//!
//! Backed by the liveness instance of the dataflow engine: a group's
//! write to a register is dead when the register is not live-out at *any*
//! occurrence of the group in the schedule — every path onward either
//! overwrites the value or reaches the end without reading it (registers
//! observable outside the schedule are live at exit, so writes feeding
//! the outside world are never flagged).
//!
//! Dead writes of *literal constants* are exempt: `acc := 0` ahead of a
//! loop whose first iteration overwrites it is the defensive
//! initialization idiom frontends emit routinely (the Dahlia-compiled
//! PolyBench kernels are full of it). Only dead writes of computed
//! values — actual lost work — are reported.

use super::diagnostic::{Diagnostic, Severity};
use super::registry::Lint;
use super::sink::DiagnosticSink;
use crate::analysis::dataflow::solve_liveness;
use crate::analysis::pcfg::{Pcfg, PcfgNode};
use crate::analysis::{AnalysisCache, Liveness, ReadWriteSets};
use crate::ir::{Atom, Component, Context, Id, PortParent};
use std::collections::BTreeMap;

/// Flags register writes whose value is overwritten or never read.
#[derive(Default)]
pub struct DeadWrite;

impl Lint for DeadWrite {
    const NAME: &'static str = "dead-write";
    const CODE: &'static str = "C0205";
    const DESCRIPTION: &'static str =
        "register writes that are overwritten or never read afterwards";
    const SEVERITY: Severity = Severity::Warning;
    const EXPLANATION: &'static str = "\
A register write is dead when no execution can observe the value: on
every path from the write, the register is either overwritten before the
next read or the schedule ends without reading it. This lint solves the
backward liveness dataflow over the parallel control-flow graph and
reports groups writing a register that is live-out at none of the
group's occurrences in the schedule.

For example, in `seq { first; second; store; }` where both `first` and
`second` write `r` and only `store` reads it, the write in `first` is
dead: `second` always clobbers it.

Fix it by deleting the write (and the group, if that empties it) or by
reordering the schedule so the intended reader runs before the
overwrite. Registers observable outside the schedule — feeding
continuous assignments or control conditions — are live at exit and
never flagged.

Dead writes of literal constants are exempt: initializing `acc := 0`
ahead of a loop whose first iteration overwrites it is a defensive
idiom frontends emit routinely, and flagging it buries the signal. A
dead write of a *computed* value, by contrast, means real work was
spent producing a value no execution observes.";

    fn check(&self, ctx: &Context, cache: &mut AnalysisCache, sink: &mut DiagnosticSink) {
        for comp in ctx.components.iter() {
            let pcfg = cache.get::<Pcfg>(comp);
            let rw = cache.get::<ReadWriteSets>(comp);
            let live = cache.get::<Liveness>(comp);
            // (group, register) → dead at every occurrence so far?
            let mut dead: BTreeMap<(Id, Id), bool> = BTreeMap::new();
            visit(&pcfg, &live, &rw, &mut dead);
            for ((group, reg), all_dead) in dead {
                if all_dead && !is_const_init(comp, group, reg) {
                    report(ctx, comp, sink, group, reg);
                }
            }
        }
    }
}

/// Record, for every group occurrence in `pcfg` (recursively through
/// p-node children), whether each register the group may write is dead
/// at that occurrence.
fn visit(pcfg: &Pcfg, live: &Liveness, rw: &ReadWriteSets, dead: &mut BTreeMap<(Id, Id), bool>) {
    for (idx, node) in pcfg.nodes.iter().enumerate() {
        match node {
            PcfgNode::Nop => {}
            PcfgNode::Group(g) => {
                for &r in rw.may_writes(*g) {
                    let dead_here = !live.live_out[idx].contains(&r);
                    dead.entry((*g, r))
                        .and_modify(|d| *d = *d && dead_here)
                        .or_insert(dead_here);
                }
            }
            PcfgNode::Par(children) => {
                for child in children {
                    let child_live = solve_liveness(child, rw, &live.live_out[idx]);
                    visit(child, &child_live, rw, dead);
                }
            }
        }
    }
}

/// The defensive-initialization exemption: every in-group driver of
/// `reg.in` is a literal constant.
fn is_const_init(comp: &Component, group: Id, reg: Id) -> bool {
    let Some(g) = comp.groups.get(group) else {
        return false;
    };
    let mut any = false;
    for a in &g.assignments {
        if a.dst.parent == PortParent::Cell(reg) && a.dst.port.as_str() == "in" {
            any = true;
            if !matches!(a.src, Atom::Const { .. }) {
                return false;
            }
        }
    }
    any
}

fn report(ctx: &Context, comp: &Component, sink: &mut DiagnosticSink, group: Id, reg: Id) {
    let write_site = comp.groups.get(group).and_then(|g| {
        g.assignments
            .iter()
            .position(|a| a.dst.parent == PortParent::Cell(reg) && a.dst.port.as_str() == "in")
    });
    let loc = write_site
        .and_then(|idx| ctx.sources.assignment(comp.name, Some(group), idx))
        .or_else(|| ctx.sources.group(comp.name, group));
    sink.push(
        Diagnostic::new(
            DeadWrite::SEVERITY,
            DeadWrite::CODE,
            DeadWrite::NAME,
            format!("group `{group}` writes `{reg}` but nothing ever reads that value"),
        )
        .at(loc)
        .note(format!(
            "on every path from here `{reg}` is overwritten or the schedule ends without reading it"
        )),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn check(src: &str) -> DiagnosticSink {
        let ctx = parse_context(src).unwrap();
        let mut sink = DiagnosticSink::new();
        DeadWrite.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        sink
    }

    const CELLS: &str = "r = std_reg(8); t = std_reg(8); add = std_add(8);";
    const OVERWRITE: &str = r#"
        group first {
            add.left = 8'd1; add.right = 8'd2;
            r.in = add.out; r.write_en = 1'd1; first[done] = r.done;
        }
        group second { r.in = 8'd2; r.write_en = 1'd1; second[done] = r.done; }
        group store { t.in = r.out; t.write_en = 1'd1; store[done] = t.done; }
    "#;

    #[test]
    fn overwritten_before_any_read_warns() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ {CELLS} }}
                wires {{ {OVERWRITE} }}
                control {{ seq {{ first; second; store; }} }}
            }}"#
        ));
        // `first`'s write dies at `second`; `store`'s write of `t` dies at
        // the exit (nothing observes `t`).
        assert_eq!(sink.warnings(), 2, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()
                .iter()
                .any(|d| d.message.contains("`first` writes `r`")),
            "{:?}",
            sink.diagnostics()
        );
    }

    #[test]
    fn constant_initialization_is_exempt() {
        // `second`'s constant write of `r` dies at the exit, but writing a
        // literal is the defensive-init idiom — only computed values warn.
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ {CELLS} }}
                wires {{ {OVERWRITE} }}
                control {{ seq {{ first; store; second; }} }}
            }}"#
        ));
        assert!(
            !sink
                .diagnostics()
                .iter()
                .any(|d| d.message.contains("`second`")),
            "{:?}",
            sink.diagnostics()
        );
    }

    #[test]
    fn read_between_writes_is_clean() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ {CELLS} }}
                wires {{ {OVERWRITE} }}
                control {{ seq {{ first; store; second; store; }} }}
            }}"#
        ));
        assert!(
            !sink
                .diagnostics()
                .iter()
                .any(|d| d.message.contains("`first`")),
            "{:?}",
            sink.diagnostics()
        );
    }

    #[test]
    fn one_live_occurrence_saves_the_write() {
        // `first` occurs twice; the second occurrence's value is read.
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ {CELLS} }}
                wires {{ {OVERWRITE} }}
                control {{ seq {{ first; second; first; store; }} }}
            }}"#
        ));
        assert!(
            !sink
                .diagnostics()
                .iter()
                .any(|d| d.message.contains("`first`")),
            "{:?}",
            sink.diagnostics()
        );
    }

    #[test]
    fn par_sibling_reads_keep_the_write_live() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ {CELLS} }}
                wires {{ {OVERWRITE} }}
                control {{ seq {{ first; par {{ store; second; }} store; }} }}
            }}"#
        ));
        assert!(
            !sink
                .diagnostics()
                .iter()
                .any(|d| d.message.contains("`first`")),
            "a par sibling may read before the overwrite: {:?}",
            sink.diagnostics()
        );
    }

    #[test]
    fn boundary_registers_are_live_at_exit() {
        // `r` feeds a continuous assignment, so the outside world observes
        // its final value: the last write is not dead.
        let sink = check(
            r#"component main() -> (out: 8) {
                cells { r = std_reg(8); w = std_wire(8); }
                wires {
                  group set { r.in = 8'd1; r.write_en = 1'd1; set[done] = r.done; }
                  w.in = r.out;
                }
                control { set; }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }
}
