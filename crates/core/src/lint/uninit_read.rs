//! `uninit-read` (C0105): register reads only the power-on value reaches.
//!
//! Backed by the [`ReachingDefs`] dataflow analysis: every register gets a
//! synthetic *entry* definition (its undefined power-on value) and every
//! write gens a def site. A group that reads a register whose *only*
//! reaching definition is the entry def observes garbage on every path —
//! no write, conditional or not, can have happened first.
//!
//! This is deliberately a *must* lint. Reporting the may-variant ("some
//! path avoids every write") flags the bread-and-butter accumulator
//! idiom — a register first written inside the loop that reads it —
//! because path-insensitive dataflow cannot see that a loop body runs at
//! least once. An error-severity lint reports only what is certainly
//! wrong. Memories are exempt either way: reading memory contents the
//! schedule never wrote is how external input arrives.

use super::diagnostic::{Diagnostic, Severity};
use super::registry::Lint;
use super::sink::DiagnosticSink;
use crate::analysis::{AnalysisCache, ReachingDefs, ReadWriteSets};
use crate::ir::{Component, Context, Id, PortParent};

/// Flags register reads that always observe the undefined power-on value.
#[derive(Default)]
pub struct UninitRead;

impl Lint for UninitRead {
    const NAME: &'static str = "uninit-read";
    const CODE: &'static str = "C0105";
    const DESCRIPTION: &'static str =
        "register reads that always observe the undefined power-on value";
    const SEVERITY: Severity = Severity::Error;
    const EXPLANATION: &'static str = "\
A register's value before its first write is undefined: hardware powers
on with arbitrary bits. This lint runs a reaching-definitions dataflow
over the parallel control-flow graph, seeding every register with a
synthetic \"entry\" definition that writes kill or shadow. A group is
flagged when it reads a register whose only reaching definition is that
entry def — no write, on any path, can have executed first — so the
read observes garbage in every execution.

For example, `seq { read; init; }` flags the read in `read`: `init`
writes the register only after it was already read.

Fix it by writing the register before the first read, typically with an
unconditional init group at the start of the schedule.

The lint is deliberately conservative: a read is not flagged when any
write — even one behind a condition or inside the loop being
controlled — can reach it, so accumulator idioms stay clean. Memories
are exempt entirely: reading addresses the schedule never wrote is how
external input reaches a kernel.";

    fn check(&self, ctx: &Context, cache: &mut AnalysisCache, sink: &mut DiagnosticSink) {
        for comp in ctx.components.iter() {
            let defs = cache.get::<ReachingDefs>(comp);
            let rw = cache.get::<ReadWriteSets>(comp);
            for group in comp.groups.iter() {
                // Never-enabled groups have no reaching facts; they are
                // the `dead-group` lint's finding, not ours.
                if defs.reaching_in(group.name).is_none() {
                    continue;
                }
                for &r in rw.reads(group.name) {
                    if defs.entry_reaches(group.name, r)
                        && defs.group_defs_reaching(group.name, r).is_empty()
                    {
                        report(ctx, comp, sink, group.name, r);
                    }
                }
            }
        }
    }
}

fn report(ctx: &Context, comp: &Component, sink: &mut DiagnosticSink, group: Id, reg: Id) {
    let read_site = comp.groups.get(group).and_then(|g| {
        g.assignments.iter().position(|a| {
            a.reads_iter()
                .any(|p| p.parent == PortParent::Cell(reg) && p.port.as_str() == "out")
        })
    });
    let loc = read_site
        .and_then(|idx| ctx.sources.assignment(comp.name, Some(group), idx))
        .or_else(|| ctx.sources.group(comp.name, group));
    sink.push(
        Diagnostic::new(
            UninitRead::SEVERITY,
            UninitRead::CODE,
            UninitRead::NAME,
            format!("group `{group}` reads `{reg}` before any write can reach it"),
        )
        .at(loc)
        .note(format!(
            "`{reg}` powers on with an undefined value; every path reads it unwritten here"
        )),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn check(src: &str) -> DiagnosticSink {
        let ctx = parse_context(src).unwrap();
        let mut sink = DiagnosticSink::new();
        UninitRead.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        sink
    }

    const CELLS: &str = "c = std_reg(1); r = std_reg(8); t = std_reg(8);";
    const GROUPS: &str = r#"
        group init { r.in = 8'd1; r.write_en = 1'd1; init[done] = r.done; }
        group read { t.in = r.out; t.write_en = 1'd1; read[done] = t.done; }
    "#;

    #[test]
    fn read_before_any_write_errors() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ {CELLS} }}
                wires {{ {GROUPS} }}
                control {{ seq {{ read; init; }} }}
            }}"#
        ));
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        let d = &sink.diagnostics()[0];
        assert!(d.message.contains("`read` reads `r`"), "{}", d.message);
    }

    #[test]
    fn never_written_register_errors() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ {CELLS} }}
                wires {{
                  group read {{ t.in = r.out; t.write_en = 1'd1; read[done] = t.done; }}
                }}
                control {{ read; }}
            }}"#
        ));
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
    }

    #[test]
    fn unconditional_init_is_clean() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ {CELLS} }}
                wires {{ {GROUPS} }}
                control {{ seq {{ init; read; }} }}
            }}"#
        ));
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn conditional_init_is_accepted() {
        // The else path reads garbage, but one path is initialized — the
        // must-style lint stays quiet rather than flag real accumulator
        // and loop-init idioms it cannot distinguish from this.
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ {CELLS} }}
                wires {{ {GROUPS} }}
                control {{ seq {{ init; if c.out {{ init; }} read; }} }}
            }}"#
        ));
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn loop_accumulator_is_clean() {
        // `accum` reads and writes `acc`: its own def flows around the
        // back edge, so the read is not *definitely* uninitialized.
        let sink = check(
            r#"component main() -> () {
                cells { lt = std_lt(8); acc = std_reg(8); add = std_add(8); }
                wires {
                  group cond { lt.left = acc.out; lt.right = 8'd10; cond[done] = 1'd1; }
                  group accum {
                    add.left = acc.out; add.right = 8'd1;
                    acc.in = add.out; acc.write_en = 1'd1;
                    accum[done] = acc.done;
                  }
                }
                control { while lt.out with cond { accum; } }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn par_sibling_init_is_clean() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ {CELLS} }}
                wires {{ {GROUPS} }}
                control {{ seq {{ par {{ init; }} read; }} }}
            }}"#
        ));
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn memory_reads_are_exempt() {
        let sink = check(
            r#"component main() -> () {
                cells { m = std_mem_d1(8, 4, 2); t = std_reg(8); }
                wires {
                  group load {
                    m.addr0 = 2'd0;
                    t.in = m.read_data; t.write_en = 1'd1;
                    load[done] = t.done;
                  }
                }
                control { load; }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }
}
