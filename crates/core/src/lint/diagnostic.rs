//! The diagnostic value lints produce.

use crate::errors::caret_snippet;
use crate::ir::Loc;
use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` means the program's behavior is undefined or it cannot mean
/// what was written (races, cycles, structural violations); `Warning`
/// means the program is well-defined but carries dead weight or a likely
/// mistake. The ordering (`Warning < Error`) lets callers write
/// `severity >= Severity::Error` thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Hygiene problem; compilation may proceed.
    Warning,
    /// Semantic problem; the program should not be compiled as-is.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding: severity, a stable code (`C0101`), the producing lint's
/// name, a message, an optional source position, and structured notes.
///
/// Codes are stable across releases — tooling may match on them — while
/// messages are free to improve. Positions come from the parser's
/// [`SourceMap`](crate::ir::SourceMap) side table, so generated programs
/// simply produce position-free diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// Stable machine-readable code, e.g. `C0101`.
    pub code: &'static str,
    /// Kebab-case name of the lint that produced this (e.g. `par-race`).
    pub lint: &'static str,
    /// Human-readable explanation of the finding.
    pub message: String,
    /// Position of the offending construct, when the source map knows it.
    pub loc: Option<Loc>,
    /// Supporting details rendered as indented `note:` lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with no position and no notes; chain
    /// [`at`](Diagnostic::at) and [`note`](Diagnostic::note) to add them.
    pub fn new(
        severity: Severity,
        code: &'static str,
        lint: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity,
            code,
            lint,
            message: message.into(),
            loc: None,
            notes: Vec::new(),
        }
    }

    /// Attach a source position (no-op for `None`, so lookups from the
    /// source map can be passed straight through).
    pub fn at(mut self, loc: Option<Loc>) -> Self {
        self.loc = loc;
        self
    }

    /// Append a note line.
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Render the diagnostic as text against the source it was produced
    /// from, using the same caret machinery as parse errors:
    ///
    /// ```text
    /// error[C0101] prog.futil:6:11: groups `wa` and `wb` ...
    ///  6 |     group wa {
    ///    |           ^
    ///   note: `wb` is declared at line 7
    /// ```
    ///
    /// Diagnostics without a position render only the header and notes.
    pub fn render_text(&self, file: &str, src: &str) -> String {
        let anchor = match self.loc {
            Some(l) => format!("{file}:{}:{}", l.line, l.col),
            None => file.to_string(),
        };
        let mut out = format!(
            "{}[{}] {anchor}: {}",
            self.severity, self.code, self.message
        );
        if let Some(l) = self.loc {
            if let Some(snippet) = caret_snippet(src, l.line, l.col) {
                out.push('\n');
                out.push_str(&snippet);
            }
        }
        for note in &self.notes {
            out.push_str("\n  note: ");
            out.push_str(note);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_prints() {
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(Severity::Warning.to_string(), "warning");
    }

    #[test]
    fn renders_with_caret_and_notes() {
        let d = Diagnostic::new(Severity::Error, "C0101", "par-race", "bad things")
            .at(Some(Loc { line: 1, col: 3 }))
            .note("more context");
        assert_eq!(
            d.render_text("f.futil", "abcd\n"),
            "error[C0101] f.futil:1:3: bad things\n 1 | abcd\n   |   ^\n  note: more context"
        );
    }

    #[test]
    fn renders_header_only_without_position() {
        let d = Diagnostic::new(Severity::Warning, "C0201", "dead-cell", "unused");
        assert_eq!(
            d.render_text("f.futil", "x"),
            "warning[C0201] f.futil: unused"
        );
    }
}
