//! `width-truncation` (C0204): literals that did not fit their width.
//!
//! `4'd20` silently masks to `4` at parse time (hardware truncation
//! semantics, matching [`Atom::constant`](crate::ir::Atom::constant)). The
//! masked value is indistinguishable from an intentional `4'd4` in the IR,
//! so the lexer records each truncation in the source map and this lint
//! replays them.

use super::diagnostic::{Diagnostic, Severity};
use super::registry::Lint;
use super::sink::DiagnosticSink;
use crate::analysis::AnalysisCache;
use crate::ir::Context;

/// Replays the parser's constant-truncation events as warnings.
#[derive(Default)]
pub struct WidthTruncation;

impl Lint for WidthTruncation {
    const NAME: &'static str = "width-truncation";
    const CODE: &'static str = "C0204";
    const DESCRIPTION: &'static str = "constants whose value does not fit the declared width";
    const SEVERITY: Severity = Severity::Warning;
    const EXPLANATION: &'static str = "\
A constant literal whose value does not fit its declared width is
silently truncated to the low bits: `4'd16` is stored as 0, `2'd5` as
1. The program then computes with a number different from the one in
the source.

Fix it by widening the literal's declared width (and the port it feeds,
if needed) or correcting the value. If the truncation is intentional,
write the already-truncated value so the source says what the hardware
does.";

    fn check(&self, ctx: &Context, _cache: &mut AnalysisCache, sink: &mut DiagnosticSink) {
        for t in ctx.sources.truncations() {
            sink.push(
                Diagnostic::new(
                    Self::SEVERITY,
                    Self::CODE,
                    Self::NAME,
                    format!(
                        "constant `{w}'d{v}` does not fit in {w} bits; it truncates to `{k}`",
                        w = t.width,
                        v = t.val,
                        k = t.kept
                    ),
                )
                .at(Some(t.loc))
                .note(format!(
                    "widen the literal or write `{}'d{}`",
                    t.width, t.kept
                )),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    #[test]
    fn truncated_literal_warns_with_position() {
        let ctx = parse_context(
            r#"component main() -> () {
                cells { r = std_reg(4); }
                wires { group g { r.in = 4'd20; r.write_en = 1'd1; g[done] = r.done; } }
                control { g; }
            }"#,
        )
        .unwrap();
        let mut sink = DiagnosticSink::new();
        WidthTruncation.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        assert_eq!(sink.warnings(), 1, "{:?}", sink.diagnostics());
        let d = &sink.diagnostics()[0];
        assert!(d.message.contains("`4'd20`"), "{}", d.message);
        assert!(d.message.contains("truncates to `4`"), "{}", d.message);
        assert!(d.loc.is_some());
    }

    #[test]
    fn fitting_literals_do_not_warn() {
        let ctx = parse_context(
            r#"component main() -> () {
                cells { r = std_reg(4); }
                wires { group g { r.in = 4'd15; r.write_en = 1'd1; g[done] = r.done; } }
                control { g; }
            }"#,
        )
        .unwrap();
        let mut sink = DiagnosticSink::new();
        WidthTruncation.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }
}
