//! `dead-group` (C0202): groups the control program never enables.

use super::diagnostic::{Diagnostic, Severity};
use super::registry::Lint;
use super::sink::DiagnosticSink;
use crate::analysis::AnalysisCache;
use crate::ir::Context;

/// Flags groups that no control statement enables (directly or as a `with`
/// condition group). Mirrors what the `dead-group-removal` pass deletes.
#[derive(Default)]
pub struct DeadGroup;

impl Lint for DeadGroup {
    const NAME: &'static str = "dead-group";
    const CODE: &'static str = "C0202";
    const DESCRIPTION: &'static str = "groups the control program never enables";
    const SEVERITY: Severity = Severity::Warning;
    const EXPLANATION: &'static str = "\
A group the control program never enables — not by an `enable`
statement and not as a `with` condition group — never executes: its
assignments are dead code.

This usually means a schedule edit removed the last enable, or a group
was written and never hooked up.

Fix it by enabling the group where it belongs in the control program,
or deleting it. Groups that *are* enabled but behind a provably
constant condition are `unreachable-control`'s finding instead.";

    fn check(&self, ctx: &Context, _cache: &mut AnalysisCache, sink: &mut DiagnosticSink) {
        for comp in ctx.components.iter() {
            let used = comp.control.used_groups();
            for group in comp.groups.iter() {
                if used.contains(&group.name) {
                    continue;
                }
                sink.push(
                    Diagnostic::new(
                        Self::SEVERITY,
                        Self::CODE,
                        Self::NAME,
                        format!(
                            "group `{}` is never enabled by the control program",
                            group.name
                        ),
                    )
                    .at(ctx.sources.group(comp.name, group.name))
                    .note("the dead-group-removal pass will delete it during compilation"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn check(src: &str) -> DiagnosticSink {
        let ctx = parse_context(src).unwrap();
        let mut sink = DiagnosticSink::new();
        DeadGroup.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        sink
    }

    #[test]
    fn unenabled_group_warns() {
        let sink = check(
            r#"component main() -> () {
                cells { r = std_reg(8); }
                wires {
                  group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; }
                  group never { never[done] = 1'd1; }
                }
                control { g; }
            }"#,
        );
        assert_eq!(sink.warnings(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0].message.contains("`never`"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn with_condition_groups_count_as_enabled() {
        let sink = check(
            r#"component main() -> () {
                cells { lt = std_lt(8); r = std_reg(8); }
                wires {
                  group cond { lt.left = r.out; lt.right = 8'd9; cond[done] = 1'd1; }
                  group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; }
                }
                control { while lt.out with cond { g; } }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }
}
