//! The named lint registry — the check-side mirror of
//! [`PassRegistry`](crate::passes::PassRegistry).

use super::diagnostic::Severity;
use super::sink::DiagnosticSink;
use super::{
    CombCycle, ConstLoop, DeadCell, DeadGroup, DeadWrite, MultipleDrivers, ParRace, UninitRead,
    UnreachableControl, UnusedPort, WellFormedLint, WidthTruncation,
};
use crate::analysis::AnalysisCache;
use crate::errors::{CalyxResult, Error};
use crate::ir::Context;
use crate::utils::is_kebab_case;

/// A single check that reads a program and reports findings.
///
/// Lints are read-only: they take `&Context` and may pull cached analyses
/// ([`ReadWriteSets`](crate::analysis::ReadWriteSets),
/// [`ParConflicts`](crate::analysis::ParConflicts), …) through the
/// [`AnalysisCache`], but never mutate the IR. Findings go into the
/// [`DiagnosticSink`] — push everything you find; the driver decides what
/// is fatal.
pub trait Lint {
    /// Unique kebab-case lint name (the `--list-lints` name).
    const NAME: &'static str;
    /// Stable diagnostic code, `C` plus four digits (e.g. `C0101`).
    const CODE: &'static str;
    /// One-line description shown by `futil --list-lints`.
    const DESCRIPTION: &'static str;
    /// Severity of every diagnostic this lint produces.
    const SEVERITY: Severity;
    /// Long-form documentation shown by `futil check --explain <CODE>`:
    /// what the lint detects, an example, and how to fix it.
    const EXPLANATION: &'static str;

    /// Check `ctx`, pushing findings into `sink`.
    fn check(&self, ctx: &Context, cache: &mut AnalysisCache, sink: &mut DiagnosticSink);
}

/// A lint known to the registry.
#[derive(Debug)]
pub struct RegisteredLint {
    /// The lint's unique kebab-case name.
    pub name: &'static str,
    /// The lint's stable diagnostic code.
    pub code: &'static str,
    /// One-line description (from [`Lint::DESCRIPTION`]).
    pub description: &'static str,
    /// Severity of the lint's diagnostics.
    pub severity: Severity,
    /// Long-form documentation (from [`Lint::EXPLANATION`]).
    pub explanation: &'static str,
    /// Runs the lint over a program.
    pub run: fn(&Context, &mut AnalysisCache, &mut DiagnosticSink),
}

/// A registry of named lints.
///
/// [`LintRegistry::default`] knows every lint in this crate; tools can
/// [`register`](LintRegistry::register) their own on top — same
/// contract as the pass, backend, and frontend registries.
pub struct LintRegistry {
    lints: Vec<RegisteredLint>,
}

impl Default for LintRegistry {
    /// The standard registry: all lints in this crate, well-formedness
    /// first (structural violations make later findings noisy), then
    /// errors before warnings.
    fn default() -> Self {
        let mut reg = LintRegistry::empty();
        reg.register::<WellFormedLint>();
        reg.register::<ParRace>();
        reg.register::<CombCycle>();
        reg.register::<MultipleDrivers>();
        reg.register::<UnreachableControl>();
        reg.register::<UninitRead>();
        reg.register::<DeadCell>();
        reg.register::<DeadGroup>();
        reg.register::<UnusedPort>();
        reg.register::<WidthTruncation>();
        reg.register::<DeadWrite>();
        reg.register::<ConstLoop>();
        reg
    }
}

impl LintRegistry {
    /// The standard registry (same as [`LintRegistry::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with no lints, for tools that want full control.
    pub fn empty() -> Self {
        LintRegistry { lints: Vec::new() }
    }

    /// Register lint `L` under its own [`Lint::NAME`].
    ///
    /// # Panics
    ///
    /// Panics when the name or code is already taken, the name is not
    /// kebab-case, or the code is not `C` + four digits — these are
    /// compile-time constants, so a collision is a programming error.
    pub fn register<L: Lint + Default + 'static>(&mut self) {
        let name = L::NAME;
        let code = L::CODE;
        assert!(is_kebab_case(name), "lint name `{name}` is not kebab-case");
        assert!(
            code.len() == 5
                && code.starts_with('C')
                && code[1..].bytes().all(|b| b.is_ascii_digit()),
            "lint code `{code}` is not `C` followed by four digits"
        );
        assert!(
            self.find(name).is_none(),
            "lint name `{name}` registered twice"
        );
        assert!(
            !self.lints.iter().any(|l| l.code == code),
            "lint code `{code}` registered twice"
        );
        self.lints.push(RegisteredLint {
            name,
            code,
            description: L::DESCRIPTION,
            severity: L::SEVERITY,
            explanation: L::EXPLANATION,
            run: |ctx, cache, sink| L::default().check(ctx, cache, sink),
        });
    }

    /// All registered lints, in registration order.
    pub fn lints(&self) -> &[RegisteredLint] {
        &self.lints
    }

    fn find(&self, name: &str) -> Option<&RegisteredLint> {
        self.lints.iter().find(|l| l.name == name)
    }

    /// Look up a lint by name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] listing the valid choices.
    pub fn get(&self, name: &str) -> CalyxResult<&RegisteredLint> {
        self.find(name).ok_or_else(|| {
            Error::undefined(format!(
                "lint `{name}`; valid lints: {}",
                self.lints
                    .iter()
                    .map(|l| l.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// Run every registered lint over `ctx`, then sort the findings by
    /// source position. This is what `futil check` runs.
    pub fn check_all(&self, ctx: &Context, cache: &mut AnalysisCache) -> DiagnosticSink {
        let mut sink = DiagnosticSink::new();
        for lint in &self.lints {
            (lint.run)(ctx, cache, &mut sink);
        }
        sink.sort_by_location();
        sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn default_registry_has_all_twelve_lints() {
        let reg = LintRegistry::default();
        assert_eq!(reg.lints().len(), 12);
    }

    #[test]
    fn every_lint_has_a_substantial_explanation() {
        for lint in LintRegistry::default().lints() {
            assert!(
                lint.explanation.len() > 100,
                "`{}` needs a real --explain body, not a stub",
                lint.name
            );
        }
    }

    #[test]
    fn names_and_codes_are_unique_and_well_formed() {
        let reg = LintRegistry::default();
        let mut names = BTreeSet::new();
        let mut codes = BTreeSet::new();
        for lint in reg.lints() {
            assert!(is_kebab_case(lint.name), "`{}` not kebab-case", lint.name);
            assert!(names.insert(lint.name), "duplicate name `{}`", lint.name);
            assert!(codes.insert(lint.code), "duplicate code `{}`", lint.code);
            assert!(!lint.description.is_empty());
        }
    }

    #[test]
    fn error_lints_use_01xx_codes_and_warning_lints_02xx() {
        for lint in LintRegistry::default().lints() {
            let expected = match lint.severity {
                Severity::Error => "C01",
                Severity::Warning => "C02",
            };
            assert!(
                lint.code.starts_with(expected),
                "`{}` has severity {} but code `{}`",
                lint.name,
                lint.severity,
                lint.code
            );
        }
    }

    #[test]
    fn get_unknown_lint_lists_choices() {
        let reg = LintRegistry::default();
        let err = reg.get("par-rac").unwrap_err();
        match err {
            Error::Undefined(msg) => {
                assert!(msg.contains("par-rac"), "{msg}");
                assert!(msg.contains("par-race"), "{msg}");
                assert!(msg.contains("dead-cell"), "{msg}");
            }
            other => panic!("expected Undefined, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = LintRegistry::default();
        reg.register::<ParRace>();
    }

    /// The hand-written lint tables in `lint/mod.rs` and the README must
    /// quote the exact registry strings (the same ones `futil --list-lints`
    /// prints), or the copies drift apart.
    #[test]
    fn doc_tables_quote_registry_descriptions() {
        let mod_docs = include_str!("mod.rs");
        let readme = include_str!("../../../../README.md");
        for lint in LintRegistry::default().lints() {
            let row = format!(
                "| `{}` | `{}` | {} | {} |",
                lint.code, lint.name, lint.severity, lint.description
            );
            assert!(
                mod_docs.contains(&row),
                "lint/mod.rs table out of sync for `{}`: expected row `{row}`",
                lint.name
            );
            assert!(
                readme.contains(&row),
                "README lint table out of sync for `{}`: expected row `{row}`",
                lint.name
            );
        }
    }
}
