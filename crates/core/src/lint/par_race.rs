//! `par-race` (C0101): state written by groups that may run in parallel.
//!
//! The paper leaves simultaneous writes to one state element *undefined*:
//! `par` promises nothing about relative timing, so two arms touching the
//! same register or memory can interleave differently across backends (and
//! across optimization levels of the same backend). This is the flagship
//! check — the class of bug that motivated building `futil check`.

use super::diagnostic::{Diagnostic, Severity};
use super::registry::Lint;
use super::sink::DiagnosticSink;
use crate::analysis::{AnalysisCache, ParConflicts, ReadWriteSets};
use crate::ir::{Atom, Component, Context, Id};
use std::collections::{BTreeMap, BTreeSet};

/// Flags registers and memories touched by two groups a `par` may run
/// simultaneously: write/write races always, and write/read races (the
/// reader observes before-or-after nondeterministically).
#[derive(Default)]
pub struct ParRace;

impl Lint for ParRace {
    const NAME: &'static str = "par-race";
    const CODE: &'static str = "C0101";
    const DESCRIPTION: &'static str =
        "registers or memories touched by two groups that may run in parallel";
    const SEVERITY: Severity = Severity::Error;
    const EXPLANATION: &'static str = "\
Children of a `par` block execute concurrently with no ordering
guarantees. When two groups that may run in parallel touch the same
register or memory — and at least one of them writes it — the result
depends on scheduling: the value read, or even the final value stored,
differs between legal executions.

For example, `par { wa; wb; }` where both groups write register `r`
leaves `r` holding whichever write committed last.

Fix it by sequencing the conflicting groups (`seq`), splitting the
shared state into per-branch cells, or restricting each branch to
disjoint memory regions.";

    fn check(&self, ctx: &Context, cache: &mut AnalysisCache, sink: &mut DiagnosticSink) {
        for comp in ctx.components.iter() {
            check_component(ctx, comp, cache, sink);
        }
    }
}

/// Per-group memory accesses; [`ReadWriteSets`] only tracks `std_reg`, so
/// memories get their own (cheap) scan.
fn memory_accesses(comp: &Component) -> BTreeMap<Id, (BTreeSet<Id>, BTreeSet<Id>)> {
    let memories: BTreeSet<Id> = comp
        .cells
        .iter()
        .filter(|c| c.is_memory())
        .map(|c| c.name)
        .collect();
    let mut out = BTreeMap::new();
    for group in comp.groups.iter() {
        let mut reads = BTreeSet::new();
        let mut writes = BTreeSet::new();
        for asgn in &group.assignments {
            if let Some(c) = asgn.dst.cell_parent() {
                // `write_en = 0` disables the write and is not an access.
                let disabled = asgn.dst.port.as_str() == "write_en"
                    && matches!(asgn.src, Atom::Const { val: 0, .. });
                if memories.contains(&c) && asgn.dst.port.as_str() == "write_en" && !disabled {
                    writes.insert(c);
                }
            }
            for p in asgn.reads_iter() {
                if let Some(c) = p.cell_parent() {
                    if memories.contains(&c) && p.port.as_str() == "read_data" {
                        reads.insert(c);
                    }
                }
            }
        }
        out.insert(group.name, (reads, writes));
    }
    out
}

fn check_component(
    ctx: &Context,
    comp: &Component,
    cache: &mut AnalysisCache,
    sink: &mut DiagnosticSink,
) {
    let conflicts = cache.get::<ParConflicts>(comp);
    let rw = cache.get::<ReadWriteSets>(comp);
    let mems = memory_accesses(comp);
    let empty = (BTreeSet::new(), BTreeSet::new());
    let groups: Vec<Id> = conflicts.groups().collect();
    for (i, &a) in groups.iter().enumerate() {
        for &b in &groups[i + 1..] {
            if !conflicts.conflict(a, b) {
                continue;
            }
            let (_, a_mem_writes) = mems.get(&a).unwrap_or(&empty);
            let (_, b_mem_writes) = mems.get(&b).unwrap_or(&empty);
            // Write/write races, registers then memories.
            let ww: Vec<(Id, &str)> = rw
                .may_writes(a)
                .intersection(rw.may_writes(b))
                .map(|&r| (r, "register"))
                .chain(
                    a_mem_writes
                        .intersection(b_mem_writes)
                        .map(|&m| (m, "memory")),
                )
                .collect();
            for &(cell, kind) in &ww {
                report(ctx, comp, sink, a, b, format!(
                    "groups `{a}` and `{b}` may run in the same `par` and both write {kind} `{cell}`"
                ));
            }
            // Write/read races (either direction), skipping cells already
            // reported as write/write.
            let raced: BTreeSet<Id> = ww.iter().map(|&(c, _)| c).collect();
            let mut wr = |writer: Id, reader: Id| {
                let (reader_mem_reads, _) = mems.get(&reader).unwrap_or(&empty);
                let cells: Vec<(Id, &str)> = rw
                    .may_writes(writer)
                    .intersection(rw.reads(reader))
                    .map(|&r| (r, "register"))
                    .chain(
                        if writer == a {
                            a_mem_writes
                        } else {
                            b_mem_writes
                        }
                        .intersection(reader_mem_reads)
                        .map(|&m| (m, "memory")),
                    )
                    .filter(|(c, _)| !raced.contains(c))
                    .collect();
                for (cell, kind) in cells {
                    report(
                        ctx,
                        comp,
                        sink,
                        a,
                        b,
                        format!(
                        "groups `{writer}` and `{reader}` may run in the same `par`; `{writer}` \
                         writes {kind} `{cell}` while `{reader}` reads it"
                    ),
                    );
                }
            };
            wr(a, b);
            wr(b, a);
        }
    }
}

fn report(ctx: &Context, comp: &Component, sink: &mut DiagnosticSink, a: Id, b: Id, msg: String) {
    let mut d = Diagnostic::new(ParRace::SEVERITY, ParRace::CODE, ParRace::NAME, msg)
        .at(ctx.sources.group(comp.name, a))
        .note("simultaneous accesses to one state element have undefined order in Calyx");
    if let Some(loc) = ctx.sources.group(comp.name, b) {
        d = d.note(format!("`{b}` is declared at line {}", loc.line));
    }
    sink.push(d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn check(src: &str) -> DiagnosticSink {
        let ctx = parse_context(src).unwrap();
        let mut sink = DiagnosticSink::new();
        ParRace.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        sink
    }

    #[test]
    fn parallel_register_writes_race() {
        let sink = check(
            r#"component main() -> () {
                cells { r = std_reg(8); }
                wires {
                  group wa { r.in = 8'd1; r.write_en = 1'd1; wa[done] = r.done; }
                  group wb { r.in = 8'd2; r.write_en = 1'd1; wb[done] = r.done; }
                }
                control { par { wa; wb; } }
            }"#,
        );
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        let d = &sink.diagnostics()[0];
        assert!(
            d.message.contains("both write register `r`"),
            "{}",
            d.message
        );
        assert!(d.loc.is_some(), "race carries the group's source position");
        assert!(d.notes.iter().any(|n| n.contains("undefined")));
    }

    #[test]
    fn write_read_races_too() {
        let sink = check(
            r#"component main() -> () {
                cells { r = std_reg(8); s = std_reg(8); }
                wires {
                  group wr { r.in = 8'd1; r.write_en = 1'd1; wr[done] = r.done; }
                  group rd { s.in = r.out; s.write_en = 1'd1; rd[done] = s.done; }
                }
                control { par { wr; rd; } }
            }"#,
        );
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0]
                .message
                .contains("while `rd` reads it"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn memory_writes_race() {
        let sink = check(
            r#"component main() -> () {
                cells { m = std_mem_d1(8, 4, 2); }
                wires {
                  group wa { m.addr0 = 2'd0; m.write_data = 8'd1; m.write_en = 1'd1; wa[done] = m.done; }
                  group wb { m.addr0 = 2'd1; m.write_data = 8'd2; m.write_en = 1'd1; wb[done] = m.done; }
                }
                control { par { wa; wb; } }
            }"#,
        );
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0].message.contains("memory `m`"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn sequenced_groups_do_not_race() {
        let sink = check(
            r#"component main() -> () {
                cells { r = std_reg(8); }
                wires {
                  group wa { r.in = 8'd1; r.write_en = 1'd1; wa[done] = r.done; }
                  group wb { r.in = 8'd2; r.write_en = 1'd1; wb[done] = r.done; }
                }
                control { seq { wa; wb; } }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn parallel_reads_are_fine() {
        let sink = check(
            r#"component main() -> () {
                cells { r = std_reg(8); a = std_reg(8); b = std_reg(8); }
                wires {
                  group ra { a.in = r.out; a.write_en = 1'd1; ra[done] = a.done; }
                  group rb { b.in = r.out; b.write_en = 1'd1; rb[done] = b.done; }
                }
                control { par { ra; rb; } }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }
}
