//! `unreachable-control` (C0104): branches and loops whose condition is
//! provably constant.
//!
//! Conditions in Calyx are ports, usually a `std_wire` the condition group
//! drives. When the port evaluates to a constant from wiring alone —
//! through `std_wire` chains and combinational primitives with constant,
//! unconditional inputs (the structural mode of the dataflow constant
//! evaluator) — the branch decision is fixed at compile time: one `if`
//! arm can never run, and a `while` either never enters its body or never
//! leaves it. Conditions that are constant only because of the *register
//! values* flowing into them are the `const-loop` lint's territory.

use super::diagnostic::{Diagnostic, Severity};
use super::registry::Lint;
use super::sink::DiagnosticSink;
use crate::analysis::dataflow::{eval_port, Scope};
use crate::analysis::AnalysisCache;
use crate::ir::{Component, Context, Control, Id, PortRef};

/// Flags `if`/`while` statements with provably constant conditions.
#[derive(Default)]
pub struct UnreachableControl;

impl Lint for UnreachableControl {
    const NAME: &'static str = "unreachable-control";
    const CODE: &'static str = "C0104";
    const DESCRIPTION: &'static str =
        "if/while conditions that are provably constant (dead branches, infinite loops)";
    const SEVERITY: Severity = Severity::Error;
    const EXPLANATION: &'static str = "\
An `if` or `while` condition that evaluates to a constant from wiring
alone makes the branch decision at compile time: one `if` arm can never
execute, and a `while` either never enters its body (condition 0) or
never terminates (condition 1).

The condition port is evaluated structurally by the dataflow constant
evaluator: through `std_wire` chains and combinational primitives whose
inputs are unconditional constants, without assuming anything about
register values. `while cnd.out { step; }` with `cnd.in = 1'd0` is the
simplest instance; `cnd.in = n.out` where `n` inverts a constant
comparison is caught the same way.

Fix it by driving the condition from the comparison it was meant to
read, or by deleting the branch/loop if the constant is intentional.
Conditions held constant by *register* values are reported by
`const-loop` (C0206) instead.";

    fn check(&self, ctx: &Context, _cache: &mut AnalysisCache, sink: &mut DiagnosticSink) {
        for comp in ctx.components.iter() {
            visit(ctx, comp, &comp.control, sink);
        }
    }
}

/// The provable constant value of `port` from wiring alone: the dataflow
/// evaluator in structural mode, which follows `std_wire` chains and
/// combinational primitives but never assumes a register value.
fn const_value(comp: &Component, port: &PortRef) -> Option<u64> {
    eval_port(comp, Scope::All, None, *port)
}

fn report(
    ctx: &Context,
    comp: &Component,
    sink: &mut DiagnosticSink,
    cond: Option<Id>,
    port: &PortRef,
    msg: String,
) {
    let loc = cond
        .and_then(|g| ctx.sources.group(comp.name, g))
        .or_else(|| {
            port.cell_parent()
                .and_then(|c| ctx.sources.cell(comp.name, c))
        });
    sink.push(
        Diagnostic::new(
            UnreachableControl::SEVERITY,
            UnreachableControl::CODE,
            UnreachableControl::NAME,
            msg,
        )
        .at(loc)
        .note(format!(
            "`{port}` evaluates to a constant from wiring alone, before any group runs"
        )),
    );
}

fn visit(ctx: &Context, comp: &Component, control: &Control, sink: &mut DiagnosticSink) {
    match control {
        Control::Empty | Control::Enable { .. } => {}
        Control::Seq { stmts, .. } | Control::Par { stmts, .. } => {
            for s in stmts {
                visit(ctx, comp, s, sink);
            }
        }
        Control::If {
            port,
            cond,
            tbranch,
            fbranch,
            ..
        } => {
            if let Some(v) = const_value(comp, port) {
                if v == 0 && !tbranch.is_empty() {
                    report(
                        ctx,
                        comp,
                        sink,
                        *cond,
                        port,
                        format!(
                            "`if {port}` always takes the else branch: the condition is always 0"
                        ),
                    );
                } else if v != 0 && !fbranch.is_empty() {
                    report(
                        ctx,
                        comp,
                        sink,
                        *cond,
                        port,
                        format!(
                            "`if {port}` never takes the else branch: the condition is always 1"
                        ),
                    );
                }
            }
            visit(ctx, comp, tbranch, sink);
            visit(ctx, comp, fbranch, sink);
        }
        Control::While {
            port, cond, body, ..
        } => {
            if let Some(v) = const_value(comp, port) {
                if v == 0 && !body.is_empty() {
                    report(
                        ctx,
                        comp,
                        sink,
                        *cond,
                        port,
                        format!("`while {port}` body is unreachable: the condition is always 0"),
                    );
                } else if v != 0 {
                    report(
                        ctx,
                        comp,
                        sink,
                        *cond,
                        port,
                        format!("`while {port}` never terminates: the condition is always 1"),
                    );
                }
            }
            visit(ctx, comp, body, sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn check(src: &str) -> DiagnosticSink {
        let ctx = parse_context(src).unwrap();
        let mut sink = DiagnosticSink::new();
        UnreachableControl.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        sink
    }

    const BODY: &str = r#"group step { r.in = 8'd1; r.write_en = 1'd1; step[done] = r.done; }"#;

    #[test]
    fn while_always_zero_is_unreachable() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ cnd = std_wire(1); r = std_reg(8); }}
                wires {{ cnd.in = 1'd0; {BODY} }}
                control {{ while cnd.out {{ step; }} }}
            }}"#
        ));
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0].message.contains("unreachable"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn while_always_one_never_terminates() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ cnd = std_wire(1); r = std_reg(8); }}
                wires {{ cnd.in = 1'd1; {BODY} }}
                control {{ while cnd.out {{ step; }} }}
            }}"#
        ));
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0].message.contains("never terminates"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn if_constant_condition_has_a_dead_branch() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ cnd = std_wire(1); r = std_reg(8); }}
                wires {{
                  cnd.in = 1'd1;
                  {BODY}
                  group alt {{ r.in = 8'd2; r.write_en = 1'd1; alt[done] = r.done; }}
                }}
                control {{ if cnd.out {{ step; }} else {{ alt; }} }}
            }}"#
        ));
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0]
                .message
                .contains("never takes the else branch"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn sees_through_wire_chains_and_comb_logic() {
        // cnd.out = not(eq(w.out, 0)) with w.in = 1'd0 — constant 0
        // through a two-hop chain and two combinational primitives.
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{
                  w = std_wire(1); eq = std_eq(1); n = std_not(1);
                  cnd = std_wire(1); r = std_reg(8);
                }}
                wires {{
                  w.in = 1'd0;
                  eq.left = w.out; eq.right = 1'd0;
                  n.in = eq.out;
                  cnd.in = n.out;
                  {BODY}
                }}
                control {{ while cnd.out {{ step; }} }}
            }}"#
        ));
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0].message.contains("unreachable"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn genuinely_dynamic_conditions_are_fine() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ cnd = std_wire(1); lt = std_lt(8); r = std_reg(8); }}
                wires {{ cnd.in = lt.out; lt.left = r.out; lt.right = 8'd9; {BODY} }}
                control {{ while cnd.out {{ step; }} }}
            }}"#
        ));
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }
}
