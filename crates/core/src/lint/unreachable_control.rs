//! `unreachable-control` (C0104): branches and loops whose condition is
//! provably constant.
//!
//! Conditions in Calyx are ports, usually a `std_wire` the condition group
//! drives. When every driver of that wire is an unconditional constant the
//! branch decision is fixed at compile time: one `if` arm can never run,
//! and a `while` either never enters its body or never leaves it.

use super::diagnostic::{Diagnostic, Severity};
use super::registry::Lint;
use super::sink::DiagnosticSink;
use crate::analysis::AnalysisCache;
use crate::ir::{Atom, Component, Context, Control, Id, PortRef};

/// Flags `if`/`while` statements with provably constant conditions.
#[derive(Default)]
pub struct UnreachableControl;

impl Lint for UnreachableControl {
    const NAME: &'static str = "unreachable-control";
    const CODE: &'static str = "C0104";
    const DESCRIPTION: &'static str =
        "if/while conditions that are provably constant (dead branches, infinite loops)";
    const SEVERITY: Severity = Severity::Error;

    fn check(&self, ctx: &Context, _cache: &mut AnalysisCache, sink: &mut DiagnosticSink) {
        for comp in ctx.components.iter() {
            visit(ctx, comp, &comp.control, sink);
        }
    }
}

/// The provable constant value of `port`, if it is a `std_wire` output
/// whose every `in` driver (anywhere in the component) is the same
/// unconditional constant.
fn const_value(comp: &Component, port: &PortRef) -> Option<u64> {
    let cell = comp.cells.get(port.cell_parent()?)?;
    if !cell.is_primitive("std_wire") || port.port.as_str() != "out" {
        return None;
    }
    let in_port = PortRef::cell(cell.name, "in");
    let mut value = None;
    for asgn in comp.all_assignments() {
        if asgn.dst != in_port {
            continue;
        }
        match (asgn.guard.is_true(), asgn.src) {
            (true, Atom::Const { val, .. }) => match value {
                None => value = Some(val),
                Some(v) if v == val => {}
                Some(_) => return None,
            },
            // A guarded or non-constant driver makes the value unknowable.
            _ => return None,
        }
    }
    value
}

fn report(
    ctx: &Context,
    comp: &Component,
    sink: &mut DiagnosticSink,
    cond: Option<Id>,
    port: &PortRef,
    msg: String,
) {
    let loc = cond
        .and_then(|g| ctx.sources.group(comp.name, g))
        .or_else(|| {
            port.cell_parent()
                .and_then(|c| ctx.sources.cell(comp.name, c))
        });
    sink.push(
        Diagnostic::new(
            UnreachableControl::SEVERITY,
            UnreachableControl::CODE,
            UnreachableControl::NAME,
            msg,
        )
        .at(loc)
        .note(format!(
            "every driver of `{port}` is the same unconditional constant"
        )),
    );
}

fn visit(ctx: &Context, comp: &Component, control: &Control, sink: &mut DiagnosticSink) {
    match control {
        Control::Empty | Control::Enable { .. } => {}
        Control::Seq { stmts, .. } | Control::Par { stmts, .. } => {
            for s in stmts {
                visit(ctx, comp, s, sink);
            }
        }
        Control::If {
            port,
            cond,
            tbranch,
            fbranch,
            ..
        } => {
            if let Some(v) = const_value(comp, port) {
                if v == 0 && !tbranch.is_empty() {
                    report(
                        ctx,
                        comp,
                        sink,
                        *cond,
                        port,
                        format!(
                            "`if {port}` always takes the else branch: the condition is always 0"
                        ),
                    );
                } else if v != 0 && !fbranch.is_empty() {
                    report(
                        ctx,
                        comp,
                        sink,
                        *cond,
                        port,
                        format!(
                            "`if {port}` never takes the else branch: the condition is always 1"
                        ),
                    );
                }
            }
            visit(ctx, comp, tbranch, sink);
            visit(ctx, comp, fbranch, sink);
        }
        Control::While {
            port, cond, body, ..
        } => {
            if let Some(v) = const_value(comp, port) {
                if v == 0 && !body.is_empty() {
                    report(
                        ctx,
                        comp,
                        sink,
                        *cond,
                        port,
                        format!("`while {port}` body is unreachable: the condition is always 0"),
                    );
                } else if v != 0 {
                    report(
                        ctx,
                        comp,
                        sink,
                        *cond,
                        port,
                        format!("`while {port}` never terminates: the condition is always 1"),
                    );
                }
            }
            visit(ctx, comp, body, sink);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn check(src: &str) -> DiagnosticSink {
        let ctx = parse_context(src).unwrap();
        let mut sink = DiagnosticSink::new();
        UnreachableControl.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        sink
    }

    const BODY: &str = r#"group step { r.in = 8'd1; r.write_en = 1'd1; step[done] = r.done; }"#;

    #[test]
    fn while_always_zero_is_unreachable() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ cnd = std_wire(1); r = std_reg(8); }}
                wires {{ cnd.in = 1'd0; {BODY} }}
                control {{ while cnd.out {{ step; }} }}
            }}"#
        ));
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0].message.contains("unreachable"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn while_always_one_never_terminates() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ cnd = std_wire(1); r = std_reg(8); }}
                wires {{ cnd.in = 1'd1; {BODY} }}
                control {{ while cnd.out {{ step; }} }}
            }}"#
        ));
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0].message.contains("never terminates"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn if_constant_condition_has_a_dead_branch() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ cnd = std_wire(1); r = std_reg(8); }}
                wires {{
                  cnd.in = 1'd1;
                  {BODY}
                  group alt {{ r.in = 8'd2; r.write_en = 1'd1; alt[done] = r.done; }}
                }}
                control {{ if cnd.out {{ step; }} else {{ alt; }} }}
            }}"#
        ));
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0]
                .message
                .contains("never takes the else branch"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn genuinely_dynamic_conditions_are_fine() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ cnd = std_wire(1); lt = std_lt(8); r = std_reg(8); }}
                wires {{ cnd.in = lt.out; lt.left = r.out; lt.right = 8'd9; {BODY} }}
                control {{ while cnd.out {{ step; }} }}
            }}"#
        ));
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }
}
