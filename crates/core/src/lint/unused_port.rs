//! `unused-port` (C0203): signature ports the component ignores.

use super::diagnostic::{Diagnostic, Severity};
use super::registry::Lint;
use super::sink::DiagnosticSink;
use crate::analysis::{AnalysisCache, PortUses};
use crate::ir::{attr, Context, Direction, PortRef};

/// Flags declared signature ports the component never touches: inputs no
/// assignment reads, outputs no assignment writes. The implicit `go`/
/// `done` interface pair is exempt — lowering wires those up itself.
#[derive(Default)]
pub struct UnusedPort;

impl Lint for UnusedPort {
    const NAME: &'static str = "unused-port";
    const CODE: &'static str = "C0203";
    const DESCRIPTION: &'static str = "signature inputs never read, outputs never written";
    const SEVERITY: Severity = Severity::Warning;
    const EXPLANATION: &'static str = "\
A component signature port nothing touches is a stale interface: an
input no assignment or condition ever reads, or an output no assignment
ever drives (an undriven output reads as constant 0 downstream).

This usually means the implementation changed and the signature did
not.

Fix it by removing the port from the signature (and from every
instantiation site), or by wiring it to the logic that was supposed to
use it.";

    fn check(&self, ctx: &Context, cache: &mut AnalysisCache, sink: &mut DiagnosticSink) {
        for comp in ctx.components.iter() {
            let uses = cache.get::<PortUses>(comp);
            for port in &comp.signature {
                if port.attributes.has(attr::interface()) {
                    continue;
                }
                let reference = PortRef::this(port.name);
                let problem = match port.direction {
                    Direction::Input if uses.reads(reference).len() == 0 => "input",
                    Direction::Output if uses.writes(reference).len() == 0 => "output",
                    _ => continue,
                };
                let verb = match port.direction {
                    Direction::Input => "read",
                    Direction::Output => "written",
                };
                sink.push(
                    Diagnostic::new(
                        Self::SEVERITY,
                        Self::CODE,
                        Self::NAME,
                        format!(
                            "{problem} port `{}` of component `{}` is never {verb}",
                            port.name, comp.name
                        ),
                    )
                    .at(ctx.sources.port(comp.name, port.name))
                    .note(match port.direction {
                        Direction::Input => "the component ignores whatever is driven here",
                        Direction::Output => "instantiators will read an undriven port",
                    }),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn check(src: &str) -> DiagnosticSink {
        let ctx = parse_context(src).unwrap();
        let mut sink = DiagnosticSink::new();
        UnusedPort.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        sink
    }

    #[test]
    fn ignored_input_and_undriven_output_warn() {
        let sink = check(
            r#"component main(x: 8) -> (y: 8) {
                cells { r = std_reg(8); }
                wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
                control { g; }
            }"#,
        );
        assert_eq!(sink.warnings(), 2, "{:?}", sink.diagnostics());
        let msgs: Vec<&str> = sink
            .diagnostics()
            .iter()
            .map(|d| d.message.as_str())
            .collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("input port `x`") && m.contains("never read")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("output port `y`") && m.contains("never written")),
            "{msgs:?}"
        );
    }

    #[test]
    fn used_ports_are_fine() {
        let sink = check(
            r#"component main(x: 8) -> (y: 8) {
                cells { r = std_reg(8); }
                wires {
                  y = r.out;
                  group g { r.in = x; r.write_en = 1'd1; g[done] = r.done; }
                }
                control { g; }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn implicit_interface_ports_are_exempt() {
        let sink = check(
            r#"component main() -> () {
                cells { r = std_reg(8); }
                wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
                control { g; }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }
}
