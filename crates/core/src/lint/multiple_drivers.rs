//! `multiple-drivers` (C0103): one port, several unconditional drivers
//! that can be active at the same time.
//!
//! The validator (C0100) already rejects duplicate unconditional drivers
//! *within* one scope; this lint catches the cross-scope case it cannot
//! see — a continuous assignment contending with a group, or two groups a
//! `par` may activate together. Sequenced groups driving the same port are
//! fine (that is how time-multiplexing works), so group pairs are only
//! flagged when the conflict analysis says they may overlap.

use super::diagnostic::{Diagnostic, Severity};
use super::registry::Lint;
use super::sink::DiagnosticSink;
use crate::analysis::{AnalysisCache, ParConflicts};
use crate::ir::{Component, Context, Id, PortRef};
use std::collections::BTreeMap;

/// Flags ports driven unconditionally from two same-activation scopes.
#[derive(Default)]
pub struct MultipleDrivers;

impl Lint for MultipleDrivers {
    const NAME: &'static str = "multiple-drivers";
    const CODE: &'static str = "C0103";
    const DESCRIPTION: &'static str =
        "ports driven unconditionally from scopes that may be active together";
    const SEVERITY: Severity = Severity::Error;
    const EXPLANATION: &'static str = "\
A port driven unconditionally from two scopes that can be active at the
same time — two groups under one `par`, or a group plus a continuous
assignment — has two simultaneous drivers in hardware: bus contention
with an undefined result.

Unlike `well-formed`'s duplicate-driver check (same scope, always a
conflict), this lint reasons about which scopes may be *concurrently
active* using the par-conflict analysis.

Fix it by guarding the assignments so at most one fires, merging the
drivers into one scope, or sequencing the groups.";

    fn check(&self, ctx: &Context, cache: &mut AnalysisCache, sink: &mut DiagnosticSink) {
        for comp in ctx.components.iter() {
            check_component(ctx, comp, cache, sink);
        }
    }
}

/// A driving scope: `None` is the continuous section.
type Scope = Option<Id>;

fn scope_name(s: Scope) -> String {
    match s {
        None => "the continuous assignments".to_string(),
        Some(g) => format!("group `{g}`"),
    }
}

fn check_component(
    ctx: &Context,
    comp: &Component,
    cache: &mut AnalysisCache,
    sink: &mut DiagnosticSink,
) {
    // port -> first unconditional write per scope (index kept for spans).
    let mut drivers: BTreeMap<PortRef, Vec<(Scope, usize)>> = BTreeMap::new();
    let mut scan = |scope: Scope, asgns: &[crate::ir::Assignment]| {
        for (index, asgn) in asgns.iter().enumerate() {
            if !asgn.guard.is_true() || asgn.dst.is_hole() {
                continue;
            }
            let entry = drivers.entry(asgn.dst).or_default();
            if !entry.iter().any(|&(s, _)| s == scope) {
                entry.push((scope, index));
            }
        }
    };
    scan(None, &comp.continuous);
    for group in comp.groups.iter() {
        scan(Some(group.name), &group.assignments);
    }
    let conflicts = cache.get::<ParConflicts>(comp);
    for (port, sites) in &drivers {
        for (i, &(a, a_idx)) in sites.iter().enumerate() {
            for &(b, b_idx) in &sites[i + 1..] {
                let contend = match (a, b) {
                    // The continuous section is always active.
                    (None, _) | (_, None) => true,
                    (Some(ga), Some(gb)) => conflicts.conflict(ga, gb),
                };
                if !contend {
                    continue;
                }
                let mut d = Diagnostic::new(
                    MultipleDrivers::SEVERITY,
                    MultipleDrivers::CODE,
                    MultipleDrivers::NAME,
                    format!(
                        "port `{port}` is driven unconditionally by both {} and {}{}",
                        scope_name(a),
                        scope_name(b),
                        if a.is_some() && b.is_some() {
                            ", which may run in the same `par`"
                        } else {
                            ""
                        }
                    ),
                )
                .at(ctx.sources.assignment(comp.name, a, a_idx))
                .note("a port must have exactly one active driver per cycle");
                if let Some(loc) = ctx.sources.assignment(comp.name, b, b_idx) {
                    d = d.note(format!("the other driver is at line {}", loc.line));
                }
                sink.push(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn check(src: &str) -> DiagnosticSink {
        let ctx = parse_context(src).unwrap();
        let mut sink = DiagnosticSink::new();
        MultipleDrivers.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        sink
    }

    #[test]
    fn continuous_vs_group_contend() {
        let sink = check(
            r#"component main() -> () {
                cells { a = std_add(8); r = std_reg(8); }
                wires {
                  a.left = 8'd1;
                  group g {
                    a.left = r.out; a.right = 8'd1;
                    r.in = a.out; r.write_en = 1'd1;
                    g[done] = r.done;
                  }
                }
                control { g; }
            }"#,
        );
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        let d = &sink.diagnostics()[0];
        assert!(d.message.contains("`a.left`"), "{}", d.message);
        assert!(d.message.contains("continuous"), "{}", d.message);
        assert!(d.loc.is_some());
    }

    #[test]
    fn parallel_groups_contend() {
        let sink = check(
            r#"component main() -> () {
                cells { w = std_wire(8); r = std_reg(8); s = std_reg(8); }
                wires {
                  group ga { w.in = 8'd1; r.in = w.out; r.write_en = 1'd1; ga[done] = r.done; }
                  group gb { w.in = 8'd2; s.in = w.out; s.write_en = 1'd1; gb[done] = s.done; }
                }
                control { par { ga; gb; } }
            }"#,
        );
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0]
                .message
                .contains("may run in the same `par`"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn sequenced_groups_share_fine() {
        let sink = check(
            r#"component main() -> () {
                cells { w = std_wire(8); r = std_reg(8); s = std_reg(8); }
                wires {
                  group ga { w.in = 8'd1; r.in = w.out; r.write_en = 1'd1; ga[done] = r.done; }
                  group gb { w.in = 8'd2; s.in = w.out; s.write_en = 1'd1; gb[done] = s.done; }
                }
                control { seq { ga; gb; } }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn guarded_drivers_do_not_contend() {
        let sink = check(
            r#"component main() -> () {
                cells { w = std_wire(8); c = std_lt(8); r = std_reg(8); }
                wires {
                  w.in = c.out ? 8'd1;
                  group g { w.in = 8'd2; r.in = w.out; r.write_en = 1'd1; g[done] = r.done; }
                }
                control { g; }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }
}
