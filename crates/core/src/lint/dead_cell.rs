//! `dead-cell` (C0201): cells no assignment or control statement touches.

use super::diagnostic::{Diagnostic, Severity};
use super::registry::Lint;
use super::sink::DiagnosticSink;
use crate::analysis::{AnalysisCache, PortUses};
use crate::ir::{attr, Context, Control, Id};
use std::collections::BTreeSet;

/// Flags cells that nothing references: no assignment reads or writes any
/// of their ports and no control condition observes them. Mirrors what the
/// `dead-cell-removal` pass deletes during compilation, surfaced as a
/// warning so the source gets cleaned up instead of silently shrunk.
/// `@external` cells are exempt — they exist for the outside world.
#[derive(Default)]
pub struct DeadCell;

impl Lint for DeadCell {
    const NAME: &'static str = "dead-cell";
    const CODE: &'static str = "C0201";
    const DESCRIPTION: &'static str = "cells never referenced by any assignment or condition";
    const SEVERITY: Severity = Severity::Warning;
    const EXPLANATION: &'static str = "\
A cell no assignment reads or writes and no control condition observes
is dead weight: it synthesizes to hardware (or is silently deleted by
the `dead-cell-removal` pass) without affecting the program.

Fix it by deleting the cell declaration, or wiring it up if it was
meant to be used. Cells marked `@external` are exempt — they exist for
the outside world (memory-mapped interfaces, testbench probes) even
when the schedule never touches them.";

    fn check(&self, ctx: &Context, cache: &mut AnalysisCache, sink: &mut DiagnosticSink) {
        for comp in ctx.components.iter() {
            let uses = cache.get::<PortUses>(comp);
            let mut condition_cells = BTreeSet::new();
            collect_condition_cells(&comp.control, &mut condition_cells);
            for cell in comp.cells.iter() {
                if uses.referenced_cells().contains(&cell.name)
                    || condition_cells.contains(&cell.name)
                    || cell.attributes.has(attr::external())
                {
                    continue;
                }
                sink.push(
                    Diagnostic::new(
                        Self::SEVERITY,
                        Self::CODE,
                        Self::NAME,
                        format!("cell `{}` is never referenced", cell.name),
                    )
                    .at(ctx.sources.cell(comp.name, cell.name))
                    .note("the dead-cell-removal pass will delete it during compilation"),
                );
            }
        }
    }
}

fn collect_condition_cells(control: &Control, out: &mut BTreeSet<Id>) {
    match control {
        Control::Empty | Control::Enable { .. } => {}
        Control::Seq { stmts, .. } | Control::Par { stmts, .. } => {
            for s in stmts {
                collect_condition_cells(s, out);
            }
        }
        Control::If {
            port,
            tbranch,
            fbranch,
            ..
        } => {
            out.extend(port.cell_parent());
            collect_condition_cells(tbranch, out);
            collect_condition_cells(fbranch, out);
        }
        Control::While { port, body, .. } => {
            out.extend(port.cell_parent());
            collect_condition_cells(body, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn check(src: &str) -> DiagnosticSink {
        let ctx = parse_context(src).unwrap();
        let mut sink = DiagnosticSink::new();
        DeadCell.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        sink
    }

    #[test]
    fn unreferenced_cell_warns() {
        let sink = check(
            r#"component main() -> () {
                cells { r = std_reg(8); unused = std_add(8); }
                wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
                control { g; }
            }"#,
        );
        assert_eq!(sink.warnings(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0].message.contains("`unused`"),
            "{}",
            sink.diagnostics()[0].message
        );
        assert!(sink.diagnostics()[0].loc.is_some());
    }

    #[test]
    fn external_cells_are_exempt() {
        let sink = check(
            r#"component main() -> () {
                cells { @external mem = std_mem_d1(8, 4, 2); r = std_reg(8); }
                wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
                control { g; }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn condition_only_cells_are_live() {
        let sink = check(
            r#"component main() -> () {
                cells { cnd = std_wire(1); r = std_reg(8); }
                wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
                control { if cnd.out { g; } }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }
}
