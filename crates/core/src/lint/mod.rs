//! `futil check` — the diagnostics engine and lint framework.
//!
//! Compilation fails fast: the first malformed construct aborts the
//! pipeline. Checking is the opposite discipline — run *every* check,
//! collect *every* finding, and report them all at once with source
//! positions. This module provides that machinery as the repo's fourth
//! registry (after passes, backends, and frontends):
//!
//! - [`Diagnostic`]: one finding — severity, a stable code (`C0101`), the
//!   producing lint's name, a message, an optional source position
//!   (rendered with the same caret machinery as parse errors), and notes.
//! - [`DiagnosticSink`]: accumulates findings instead of failing fast,
//!   sorts them by position, and renders text or schema-stable JSON.
//! - [`Lint`] + [`LintRegistry`]: named, described, registerable checks.
//!   Each lint runs read-only over `(&Context, &mut AnalysisCache)`,
//!   reusing the same cached analyses the optimizer queries
//!   ([`ParConflicts`](crate::analysis::ParConflicts),
//!   [`ReadWriteSets`](crate::analysis::ReadWriteSets),
//!   [`PortUses`](crate::analysis::PortUses)).
//!
//! Positions come from the parser's [`SourceMap`](crate::ir::SourceMap)
//! side table; generated programs simply produce position-free findings.
//!
//! # Registered lints
//!
//! | code | name | severity | description |
//! |------|------|----------|-------------|
//! | `C0100` | `well-formed` | error | structural violations: bad widths, duplicate drivers, undefined names, ghost groups |
//! | `C0101` | `par-race` | error | registers or memories touched by two groups that may run in parallel |
//! | `C0102` | `comb-cycle` | error | combinational feedback loops (no register on a cycle) |
//! | `C0103` | `multiple-drivers` | error | ports driven unconditionally from scopes that may be active together |
//! | `C0104` | `unreachable-control` | error | if/while conditions that are provably constant (dead branches, infinite loops) |
//! | `C0105` | `uninit-read` | error | register reads that always observe the undefined power-on value |
//! | `C0201` | `dead-cell` | warning | cells never referenced by any assignment or condition |
//! | `C0202` | `dead-group` | warning | groups the control program never enables |
//! | `C0203` | `unused-port` | warning | signature inputs never read, outputs never written |
//! | `C0204` | `width-truncation` | warning | constants whose value does not fit the declared width |
//! | `C0205` | `dead-write` | warning | register writes that are overwritten or never read afterwards |
//! | `C0206` | `const-loop` | warning | while conditions held constant by the register values reaching the loop |
//!
//! (This table is checked against the registry by a test; `futil
//! --list-lints` prints the same names and descriptions. The dataflow-
//! backed lints — `uninit-read`, `dead-write`, `const-loop`, and the
//! constant evaluation behind `unreachable-control` — all ride on the
//! fixpoint engine in [`analysis::dataflow`](crate::analysis::dataflow).)
//!
//! # Example
//!
//! ```
//! use calyx_core::analysis::AnalysisCache;
//! use calyx_core::ir::parse_context;
//! use calyx_core::lint::LintRegistry;
//!
//! let ctx = parse_context(
//!     r#"component main() -> () {
//!         cells { r = std_reg(8); }
//!         wires {
//!           group wa { r.in = 8'd1; r.write_en = 1'd1; wa[done] = r.done; }
//!           group wb { r.in = 8'd2; r.write_en = 1'd1; wb[done] = r.done; }
//!         }
//!         control { par { wa; wb; } }
//!     }"#,
//! ).unwrap();
//! let sink = LintRegistry::default().check_all(&ctx, &mut AnalysisCache::new());
//! assert!(sink.diagnostics().iter().any(|d| d.code == "C0101"));
//! ```

mod comb_cycle;
mod const_loop;
mod dead_cell;
mod dead_group;
mod dead_write;
mod diagnostic;
mod multiple_drivers;
mod par_race;
mod registry;
mod sink;
mod uninit_read;
mod unreachable_control;
mod unused_port;
mod well_formed;
mod width_truncation;

pub use comb_cycle::CombCycle;
pub use const_loop::ConstLoop;
pub use dead_cell::DeadCell;
pub use dead_group::DeadGroup;
pub use dead_write::DeadWrite;
pub use diagnostic::{Diagnostic, Severity};
pub use multiple_drivers::MultipleDrivers;
pub use par_race::ParRace;
pub use registry::{Lint, LintRegistry, RegisteredLint};
pub use sink::DiagnosticSink;
pub use uninit_read::UninitRead;
pub use unreachable_control::UnreachableControl;
pub use unused_port::UnusedPort;
pub use well_formed::WellFormedLint;
pub use width_truncation::WidthTruncation;
