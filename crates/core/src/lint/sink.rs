//! The accumulating diagnostic collector.

use super::diagnostic::{Diagnostic, Severity};

/// Collects [`Diagnostic`]s instead of failing fast, so one checking run
/// reports *every* problem in the program.
///
/// Lints push in registration order;
/// [`sort_by_location`](DiagnosticSink::sort_by_location) then orders
/// findings the way a reader scans a file — by position, position-free
/// diagnostics last — while keeping the push order among ties (the sort
/// is stable).
#[derive(Debug, Clone, Default)]
pub struct DiagnosticSink {
    diags: Vec<Diagnostic>,
}

impl DiagnosticSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// All findings, in their current order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// True when nothing was reported.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Total number of findings.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, s: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == s).count()
    }

    /// Apply rustc-style per-lint level overrides: findings from lints in
    /// `allow` are dropped entirely; findings from lints in `deny` are
    /// promoted to [`Severity::Error`]. Both match the lint *name* (the
    /// `--list-lints` name), and `allow` wins when a lint appears in
    /// both — silencing is the more explicit request.
    pub fn apply_lint_levels(&mut self, allow: &[String], deny: &[String]) {
        self.diags
            .retain(|d| !allow.iter().any(|name| name == d.lint));
        for d in &mut self.diags {
            if deny.iter().any(|name| name == d.lint) {
                d.severity = Severity::Error;
            }
        }
    }

    /// Stable-sort findings by source position (line, then column);
    /// position-free findings sort last, keeping their push order.
    pub fn sort_by_location(&mut self) {
        self.diags.sort_by_key(|d| match d.loc {
            Some(l) => (0, l.line, l.col),
            None => (1, 0, 0),
        });
    }

    /// The one-line closing summary, e.g. `2 errors, 1 warning`.
    pub fn summary(&self) -> String {
        fn plural(n: usize, what: &str) -> String {
            format!("{n} {what}{}", if n == 1 { "" } else { "s" })
        }
        format!(
            "{}, {}",
            plural(self.errors(), "error"),
            plural(self.warnings(), "warning")
        )
    }

    /// Render every finding as caret-annotated text against `src`,
    /// followed by the summary line. Empty sinks render to an empty
    /// string (a clean check prints nothing).
    pub fn render_text(&self, file: &str, src: &str) -> String {
        if self.diags.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        for d in &self.diags {
            out.push_str(&d.render_text(file, src));
            out.push('\n');
        }
        out.push_str(&self.summary());
        out
    }

    /// Render every finding as a stable JSON object:
    ///
    /// ```json
    /// {
    ///   "file": "prog.futil",
    ///   "errors": 1,
    ///   "warnings": 0,
    ///   "diagnostics": [
    ///     {"code": "C0101", "lint": "par-race", "severity": "error",
    ///      "line": 6, "col": 11, "message": "...", "notes": []}
    ///   ]
    /// }
    /// ```
    ///
    /// `line`/`col` are `null` for position-free findings. The schema is
    /// pinned by golden tests; add fields rather than changing these.
    pub fn render_json(&self, file: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"file\": {},\n", json_string(file)));
        out.push_str(&format!("  \"errors\": {},\n", self.errors()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diags.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let (line, col) = match d.loc {
                Some(l) => (l.line.to_string(), l.col.to_string()),
                None => ("null".to_string(), "null".to_string()),
            };
            let notes: Vec<String> = d.notes.iter().map(|n| json_string(n)).collect();
            out.push_str(&format!(
                "    {{\"code\": {}, \"lint\": {}, \"severity\": {}, \"line\": {line}, \
                 \"col\": {col}, \"message\": {}, \"notes\": [{}]}}",
                json_string(d.code),
                json_string(d.lint),
                json_string(&d.severity.to_string()),
                json_string(&d.message),
                notes.join(", ")
            ));
        }
        if !self.diags.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

/// Minimal JSON string encoder (the only non-scalar values we emit).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Loc;

    fn diag(sev: Severity, code: &'static str, line: Option<usize>) -> Diagnostic {
        Diagnostic::new(sev, code, "some-lint", format!("message for {code}"))
            .at(line.map(|line| Loc { line, col: 1 }))
    }

    #[test]
    fn counts_and_summary_pluralize() {
        let mut sink = DiagnosticSink::new();
        assert!(sink.is_empty());
        assert_eq!(sink.summary(), "0 errors, 0 warnings");
        sink.push(diag(Severity::Error, "C0101", Some(3)));
        sink.push(diag(Severity::Warning, "C0201", None));
        assert_eq!((sink.len(), sink.errors(), sink.warnings()), (2, 1, 1));
        assert_eq!(sink.summary(), "1 error, 1 warning");
    }

    #[test]
    fn sort_is_by_position_with_unpositioned_last() {
        let mut sink = DiagnosticSink::new();
        sink.push(diag(Severity::Warning, "C0204", None));
        sink.push(diag(Severity::Error, "C0102", Some(9)));
        sink.push(diag(Severity::Error, "C0101", Some(2)));
        sink.sort_by_location();
        let codes: Vec<&str> = sink.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["C0101", "C0102", "C0204"]);
    }

    #[test]
    fn lint_levels_allow_drops_and_deny_promotes() {
        let mut sink = DiagnosticSink::new();
        sink.push(Diagnostic::new(
            Severity::Warning,
            "C0201",
            "dead-cell",
            "m1",
        ));
        sink.push(Diagnostic::new(
            Severity::Warning,
            "C0205",
            "dead-write",
            "m2",
        ));
        sink.push(Diagnostic::new(Severity::Error, "C0101", "par-race", "m3"));
        sink.apply_lint_levels(&["dead-cell".into()], &["dead-write".into()]);
        assert_eq!(sink.len(), 2, "{:?}", sink.diagnostics());
        assert_eq!((sink.errors(), sink.warnings()), (2, 0));
    }

    #[test]
    fn allow_wins_over_deny_for_the_same_lint() {
        let mut sink = DiagnosticSink::new();
        sink.push(Diagnostic::new(
            Severity::Warning,
            "C0205",
            "dead-write",
            "m",
        ));
        sink.apply_lint_levels(&["dead-write".into()], &["dead-write".into()]);
        assert!(sink.is_empty());
    }

    #[test]
    fn clean_sink_renders_empty_text() {
        assert_eq!(DiagnosticSink::new().render_text("f", "src"), "");
    }

    #[test]
    fn json_schema_is_stable() {
        let mut sink = DiagnosticSink::new();
        sink.push(
            Diagnostic::new(Severity::Error, "C0101", "par-race", "a \"race\"")
                .at(Some(Loc { line: 6, col: 11 }))
                .note("see line 7"),
        );
        sink.push(diag(Severity::Warning, "C0201", None));
        assert_eq!(
            sink.render_json("f.futil"),
            "{\n  \"file\": \"f.futil\",\n  \"errors\": 1,\n  \"warnings\": 1,\n  \"diagnostics\": [\n    {\"code\": \"C0101\", \"lint\": \"par-race\", \"severity\": \"error\", \"line\": 6, \"col\": 11, \"message\": \"a \\\"race\\\"\", \"notes\": [\"see line 7\"]},\n    {\"code\": \"C0201\", \"lint\": \"some-lint\", \"severity\": \"warning\", \"line\": null, \"col\": null, \"message\": \"message for C0201\", \"notes\": []}\n  ]\n}"
        );
    }

    #[test]
    fn empty_sink_json_has_empty_array() {
        assert_eq!(
            DiagnosticSink::new().render_json("f"),
            "{\n  \"file\": \"f\",\n  \"errors\": 0,\n  \"warnings\": 0,\n  \"diagnostics\": []\n}"
        );
    }
}
