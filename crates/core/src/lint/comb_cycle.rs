//! `comb-cycle` (C0102): combinational feedback loops.
//!
//! A cycle through combinational logic (wires, adders, comparators — any
//! primitive that settles within a cycle) has no stable value: simulators
//! oscillate or X-out and synthesis rejects the netlist. Registers and
//! other sequential cells break cycles, so only paths entirely through
//! combinational primitives are flagged.

use super::diagnostic::{Diagnostic, Severity};
use super::registry::Lint;
use super::sink::DiagnosticSink;
use crate::analysis::AnalysisCache;
use crate::ir::{Assignment, Cell, CellType, Component, Context, Direction, Id, PortRef};
use std::collections::{BTreeMap, BTreeSet};

/// Finds combinational cycles per *activation scope*: the continuous
/// assignments alone, then the continuous assignments plus each group
/// (a group's wires are only active while it runs, so a cycle can be
/// closed by a group even when the continuous section is acyclic).
#[derive(Default)]
pub struct CombCycle;

impl Lint for CombCycle {
    const NAME: &'static str = "comb-cycle";
    const CODE: &'static str = "C0102";
    const DESCRIPTION: &'static str = "combinational feedback loops (no register on a cycle)";
    const SEVERITY: Severity = Severity::Error;
    const EXPLANATION: &'static str = "\
A combinational cycle is a feedback loop with no register on it: a
port's value depends, through combinational primitives and assignments
alone, on itself. In hardware this is an oscillator or a latch, not a
stable circuit; simulators either refuse it or loop forever.

For example, `a.in = b.out; b.in = a.out;` over two `std_wire`s closes a
two-node cycle.

Fix it by breaking the loop with a register (`std_reg`) so the value
crosses a clock edge, or by restructuring the logic so data flows one
way.";

    fn check(&self, ctx: &Context, _cache: &mut AnalysisCache, sink: &mut DiagnosticSink) {
        for comp in ctx.components.iter() {
            check_component(ctx, comp, sink);
        }
    }
}

/// Port-level dependency edges, restricted to cell ports (component
/// signature ports and group holes cannot close a cycle inside one
/// component).
type Graph = BTreeMap<PortRef, BTreeSet<PortRef>>;

fn is_comb_cell(ctx: &Context, cell: &Cell) -> bool {
    match &cell.prototype {
        CellType::Primitive { name, .. } => ctx.lib.get(*name).is_some_and(|p| p.is_comb),
        // Component instances have a registered `done` and never settle
        // combinationally; treat them as sequential.
        CellType::Component { .. } => false,
    }
}

/// Input→output edges through combinational primitives — present in every
/// scope, since they are properties of the cell, not of any assignment.
fn through_cell_edges(ctx: &Context, comp: &Component) -> Graph {
    let mut g = Graph::new();
    for cell in comp.cells.iter() {
        if !is_comb_cell(ctx, cell) {
            continue;
        }
        for input in &cell.ports {
            if input.direction != Direction::Input {
                continue;
            }
            for output in &cell.ports {
                if output.direction == Direction::Output {
                    g.entry(PortRef::cell(cell.name, input.name))
                        .or_default()
                        .insert(PortRef::cell(cell.name, output.name));
                }
            }
        }
    }
    g
}

fn add_assignment_edges(g: &mut Graph, asgns: &[Assignment]) {
    for asgn in asgns {
        if asgn.dst.cell_parent().is_none() {
            continue;
        }
        for read in asgn.reads_iter() {
            if read.cell_parent().is_some() {
                g.entry(read).or_default().insert(asgn.dst);
            }
        }
    }
}

/// First cycle reachable in `g`, as the list of ports around the loop
/// (rotated so the smallest port leads, giving a canonical form for
/// deduplication across scopes).
fn find_cycle(g: &Graph) -> Option<Vec<PortRef>> {
    // 3-color DFS: 0 unvisited, 1 on the current path, 2 done.
    let mut color: BTreeMap<PortRef, u8> = BTreeMap::new();
    let mut path: Vec<PortRef> = Vec::new();
    fn dfs(
        g: &Graph,
        node: PortRef,
        color: &mut BTreeMap<PortRef, u8>,
        path: &mut Vec<PortRef>,
    ) -> Option<Vec<PortRef>> {
        color.insert(node, 1);
        path.push(node);
        for &next in g.get(&node).into_iter().flatten() {
            match color.get(&next).copied().unwrap_or(0) {
                0 => {
                    if let Some(c) = dfs(g, next, color, path) {
                        return Some(c);
                    }
                }
                1 => {
                    let start = path.iter().position(|&p| p == next).expect("on path");
                    let mut cycle = path[start..].to_vec();
                    let min = (0..cycle.len())
                        .min_by_key(|&i| cycle[i])
                        .expect("nonempty");
                    cycle.rotate_left(min);
                    return Some(cycle);
                }
                _ => {}
            }
        }
        path.pop();
        color.insert(node, 2);
        None
    }
    for &node in g.keys() {
        if color.get(&node).copied().unwrap_or(0) == 0 {
            if let Some(c) = dfs(g, node, &mut color, &mut path) {
                return Some(c);
            }
        }
    }
    None
}

fn check_component(ctx: &Context, comp: &Component, sink: &mut DiagnosticSink) {
    let base = {
        let mut g = through_cell_edges(ctx, comp);
        add_assignment_edges(&mut g, &comp.continuous);
        g
    };
    let mut seen: BTreeSet<Vec<PortRef>> = BTreeSet::new();
    let mut scopes: Vec<(Option<Id>, Graph)> = vec![(None, base.clone())];
    for group in comp.groups.iter() {
        let mut g = base.clone();
        add_assignment_edges(&mut g, &group.assignments);
        scopes.push((Some(group.name), g));
    }
    for (scope, graph) in scopes {
        let Some(cycle) = find_cycle(&graph) else {
            continue;
        };
        // A continuous-section cycle shows up again in every group scope;
        // the canonical rotation dedups it to one report.
        if !seen.insert(cycle.clone()) {
            continue;
        }
        let mut around: Vec<String> = cycle.iter().map(|p| format!("`{p}`")).collect();
        around.push(around[0].clone());
        let where_ = match scope {
            None => "in the continuous assignments".to_string(),
            Some(g) => format!("while group `{g}` is active"),
        };
        let loc = cycle
            .first()
            .and_then(|p| p.cell_parent())
            .and_then(|c| ctx.sources.cell(comp.name, c));
        sink.push(
            Diagnostic::new(
                CombCycle::SEVERITY,
                CombCycle::CODE,
                CombCycle::NAME,
                format!("combinational cycle {where_}: {}", around.join(" -> ")),
            )
            .at(loc)
            .note("every feedback loop needs a register or other sequential cell to break it"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn check(src: &str) -> DiagnosticSink {
        let ctx = parse_context(src).unwrap();
        let mut sink = DiagnosticSink::new();
        CombCycle.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        sink
    }

    #[test]
    fn continuous_wire_loop_is_reported_once() {
        let sink = check(
            r#"component main() -> () {
                cells { w1 = std_wire(8); w2 = std_wire(8); r = std_reg(8); }
                wires {
                  w1.in = w2.out;
                  w2.in = w1.out;
                  group g { r.in = w1.out; r.write_en = 1'd1; g[done] = r.done; }
                }
                control { g; }
            }"#,
        );
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        let d = &sink.diagnostics()[0];
        assert!(d.message.contains("continuous"), "{}", d.message);
        assert!(d.message.contains("`w1.in`"), "{}", d.message);
        assert!(d.message.contains("`w2.out`"), "{}", d.message);
    }

    #[test]
    fn group_can_close_a_cycle() {
        let sink = check(
            r#"component main() -> () {
                cells { a = std_add(8); w = std_wire(8); }
                wires {
                  w.in = a.out;
                  group g { a.left = w.out; a.right = 8'd1; g[done] = 1'd1; }
                }
                control { g; }
            }"#,
        );
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0]
                .message
                .contains("while group `g` is active"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn register_breaks_the_cycle() {
        let sink = check(
            r#"component main() -> () {
                cells { a = std_add(8); r = std_reg(8); }
                wires {
                  a.left = r.out;
                  a.right = 8'd1;
                  group g { r.in = a.out; r.write_en = 1'd1; g[done] = r.done; }
                }
                control { g; }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn self_loop_on_one_port() {
        let sink = check(
            r#"component main() -> () {
                cells { w = std_wire(8); }
                wires { w.in = w.out; }
                control { }
            }"#,
        );
        assert_eq!(sink.errors(), 1, "{:?}", sink.diagnostics());
    }
}
