//! `const-loop` (C0206): loops whose condition is constant because of the
//! register values flowing into it.
//!
//! Backed by the constant-propagation instance of the dataflow engine.
//! Where `unreachable-control` (C0104) proves a condition constant from
//! wiring alone, this lint catches the subtler case: the wiring is
//! genuinely dynamic — the condition reads registers — but every register
//! feeding it holds one provable constant at the loop head, on every
//! path including around the back edge. The classic instance is a loop
//! whose body never updates the induction register: `i < 10` with `i`
//! stuck at 0 never terminates.

use super::diagnostic::{Diagnostic, Severity};
use super::registry::Lint;
use super::sink::DiagnosticSink;
use crate::analysis::pcfg::CondKind;
use crate::analysis::{AnalysisCache, ConstProp};
use crate::ir::{Component, Context, Id, PortRef};

/// Flags `while` loops whose condition is constant given the register
/// constants reaching the loop head.
#[derive(Default)]
pub struct ConstLoop;

impl Lint for ConstLoop {
    const NAME: &'static str = "const-loop";
    const CODE: &'static str = "C0206";
    const DESCRIPTION: &'static str =
        "while conditions held constant by the register values reaching the loop";
    const SEVERITY: Severity = Severity::Warning;
    const EXPLANATION: &'static str = "\
A `while` condition that reads registers looks dynamic, but if every
register feeding it holds one provable constant at the loop head — on
every path, including back around the loop — the condition can only ever
evaluate one way. This lint runs a forward constant propagation over the
parallel control-flow graph (a flat lattice per register: one known
constant, or not-a-constant) and evaluates each loop condition with the
facts that reach it.

The classic instance is an induction register the body never updates:
after `init` sets `i` to 0, `while lt.out with cond { work; }` where
`cond` computes `i < 10` and `work` never writes `i` spins forever —
`i` is 0 on iteration one, and still 0 after every back edge.

Fix it by updating the condition's registers inside the loop body (an
increment group for induction variables), or by replacing the loop with
straight-line control if it really should run exactly once or not at
all. Conditions constant from wiring alone, with no register involved,
are reported by `unreachable-control` (C0104) instead.";

    fn check(&self, ctx: &Context, cache: &mut AnalysisCache, sink: &mut DiagnosticSink) {
        for comp in ctx.components.iter() {
            let cp = cache.get::<ConstProp>(comp);
            for site in cp.sites() {
                let CondKind::While { has_body } = site.kind else {
                    continue;
                };
                // Structurally-constant conditions are C0104's finding;
                // reporting them here too would double up.
                if site.structural.is_some() {
                    continue;
                }
                match site.value {
                    Some(v) if v != 0 => report(
                        ctx,
                        comp,
                        sink,
                        site.cond,
                        &site.port,
                        format!(
                            "`while {}` never terminates: the condition is always 1 \
                             given the registers reaching the loop",
                            site.port
                        ),
                    ),
                    Some(_) if has_body => report(
                        ctx,
                        comp,
                        sink,
                        site.cond,
                        &site.port,
                        format!(
                            "`while {}` body never runs: the condition is always 0 \
                             given the registers reaching the loop",
                            site.port
                        ),
                    ),
                    _ => {}
                }
            }
        }
    }
}

fn report(
    ctx: &Context,
    comp: &Component,
    sink: &mut DiagnosticSink,
    cond: Option<Id>,
    port: &PortRef,
    msg: String,
) {
    let loc = cond
        .and_then(|g| ctx.sources.group(comp.name, g))
        .or_else(|| {
            port.cell_parent()
                .and_then(|c| ctx.sources.cell(comp.name, c))
        });
    sink.push(
        Diagnostic::new(ConstLoop::SEVERITY, ConstLoop::CODE, ConstLoop::NAME, msg)
            .at(loc)
            .note(format!(
                "every register feeding `{port}` holds the same constant on all paths \
                 to the loop, including around the back edge"
            )),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    fn check(src: &str) -> DiagnosticSink {
        let ctx = parse_context(src).unwrap();
        let mut sink = DiagnosticSink::new();
        ConstLoop.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        sink
    }

    const SHELL: &str = r#"
        group cond { lt.left = i.out; lt.right = 8'd10; cond[done] = 1'd1; }
        group work { t.in = i.out; t.write_en = 1'd1; work[done] = t.done; }
    "#;

    #[test]
    fn unchanging_induction_register_never_terminates() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ i = std_reg(8); lt = std_lt(8); t = std_reg(8); }}
                wires {{
                  group init {{ i.in = 8'd0; i.write_en = 1'd1; init[done] = i.done; }}
                  {SHELL}
                }}
                control {{ seq {{ init; while lt.out with cond {{ work; }} }} }}
            }}"#
        ));
        assert_eq!(sink.warnings(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0].message.contains("never terminates"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn condition_false_at_entry_body_never_runs() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ i = std_reg(8); lt = std_lt(8); t = std_reg(8); }}
                wires {{
                  group init {{ i.in = 8'd20; i.write_en = 1'd1; init[done] = i.done; }}
                  {SHELL}
                }}
                control {{ seq {{ init; while lt.out with cond {{ work; }} }} }}
            }}"#
        ));
        assert_eq!(sink.warnings(), 1, "{:?}", sink.diagnostics());
        assert!(
            sink.diagnostics()[0].message.contains("body never runs"),
            "{}",
            sink.diagnostics()[0].message
        );
    }

    #[test]
    fn incremented_induction_register_is_clean() {
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ i = std_reg(8); lt = std_lt(8); add = std_add(8); t = std_reg(8); }}
                wires {{
                  group init {{ i.in = 8'd0; i.write_en = 1'd1; init[done] = i.done; }}
                  {SHELL}
                  group incr {{
                    add.left = i.out; add.right = 8'd1;
                    i.in = add.out; i.write_en = 1'd1;
                    incr[done] = i.done;
                  }}
                }}
                control {{ seq {{ init; while lt.out with cond {{ seq {{ work; incr; }} }} }} }}
            }}"#
        ));
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn uninitialized_induction_register_is_clean() {
        // Power-on values are undefined, not constant — `uninit-read`
        // territory, no claim about the loop.
        let sink = check(&format!(
            r#"component main() -> () {{
                cells {{ i = std_reg(8); lt = std_lt(8); t = std_reg(8); }}
                wires {{ {SHELL} }}
                control {{ while lt.out with cond {{ work; }} }}
            }}"#
        ));
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }

    #[test]
    fn structurally_constant_conditions_are_left_to_c0104() {
        let sink = check(
            r#"component main() -> () {
                cells { cnd = std_wire(1); t = std_reg(8); }
                wires {
                  cnd.in = 1'd1;
                  group work { t.in = 8'd1; t.write_en = 1'd1; work[done] = t.done; }
                }
                control { while cnd.out { work; } }
            }"#,
        );
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }
}
