//! `well-formed` (C0100): structural validation, reported exhaustively.

use super::diagnostic::{Diagnostic, Severity};
use super::registry::Lint;
use super::sink::DiagnosticSink;
use crate::analysis::AnalysisCache;
use crate::ir::{validate, Context};

/// Ports the structural validator onto the diagnostic sink.
///
/// `futil`'s compile path runs [`validate::validate_context`] and stops at
/// the first violation; checking wants *all* of them, so this lint drives
/// the collecting entry point ([`validate::collect_context`]) and turns
/// every violation into a diagnostic. The findings carry no source
/// position — validation errors quote the offending construct by name
/// instead.
#[derive(Default)]
pub struct WellFormedLint;

impl Lint for WellFormedLint {
    const NAME: &'static str = "well-formed";
    const CODE: &'static str = "C0100";
    const DESCRIPTION: &'static str =
        "structural violations: bad widths, duplicate drivers, undefined names, ghost groups";
    const SEVERITY: Severity = Severity::Error;
    const EXPLANATION: &'static str = "\
The structural ground rules every Calyx program must satisfy before any
other lint is meaningful: port widths on both sides of an assignment
must match, a port may not be driven twice unconditionally in one scope,
every referenced cell/group/port must exist, and every group enabled by
the control program must be defined.

These are the same checks compilation enforces, surfaced as diagnostics
with source positions instead of a fatal error, so `futil check` can
report all of them at once.

Fix each finding at the reported position; subsequent lints assume a
well-formed program and may report noise until these are resolved.";

    fn check(&self, ctx: &Context, _cache: &mut AnalysisCache, sink: &mut DiagnosticSink) {
        let mut errors = Vec::new();
        validate::collect_context(ctx, &mut errors);
        for e in errors {
            sink.push(Diagnostic::new(
                Self::SEVERITY,
                Self::CODE,
                Self::NAME,
                e.to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_context;

    #[test]
    fn reports_every_structural_violation() {
        let ctx = parse_context(
            r#"component main() -> () {
                cells { r = std_reg(8); }
                wires {
                  group g { r.in = 4'd1; r.write_en = 1'd1; }
                }
                control { seq { g; ghost; } }
            }"#,
        )
        .unwrap();
        let mut sink = DiagnosticSink::new();
        WellFormedLint.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        // Width mismatch + missing done write + ghost group: all three at
        // once, where `validate_context` would stop at the first.
        assert_eq!(sink.errors(), 3, "{:?}", sink.diagnostics());
        let msgs: Vec<&str> = sink
            .diagnostics()
            .iter()
            .map(|d| d.message.as_str())
            .collect();
        assert!(msgs.iter().any(|m| m.contains("width")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("done")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("ghost")), "{msgs:?}");
    }

    #[test]
    fn clean_program_reports_nothing() {
        let ctx = parse_context(
            r#"component main() -> () {
                cells { r = std_reg(8); }
                wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
                control { g; }
            }"#,
        )
        .unwrap();
        let mut sink = DiagnosticSink::new();
        WellFormedLint.check(&ctx, &mut AnalysisCache::new(), &mut sink);
        assert!(sink.is_empty(), "{:?}", sink.diagnostics());
    }
}
