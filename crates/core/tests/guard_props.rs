//! Property tests for the guard language: simplification preserves
//! semantics under every valuation, and printed guards re-parse to
//! semantically identical trees.

use calyx_core::ir::{parse_guard, Atom, CompOp, Guard, PortRef};
use calyx_core::passes::simplify;
use proptest::prelude::*;
use std::collections::HashMap;

/// A tiny universe of ports: four 1-bit flags and two 4-bit buses.
fn port(i: usize) -> PortRef {
    PortRef::cell(format!("p{i}"), "out")
}

fn bus(i: usize) -> PortRef {
    PortRef::cell(format!("b{i}"), "out")
}

/// Evaluate a guard under a valuation (missing ports read 0).
fn eval(g: &Guard, env: &HashMap<PortRef, u64>) -> bool {
    let atom = |a: &Atom| match a {
        Atom::Port(p) => env.get(p).copied().unwrap_or(0),
        Atom::Const { val, .. } => *val,
    };
    match g {
        Guard::True => true,
        Guard::Port(p) => env.get(p).copied().unwrap_or(0) != 0,
        Guard::Not(inner) => !eval(inner, env),
        Guard::And(a, b) => eval(a, env) && eval(b, env),
        Guard::Or(a, b) => eval(a, env) || eval(b, env),
        Guard::Comp(op, l, r) => op.eval(atom(l), atom(r)),
    }
}

fn comp_op() -> impl Strategy<Value = CompOp> {
    prop_oneof![
        Just(CompOp::Eq),
        Just(CompOp::Neq),
        Just(CompOp::Lt),
        Just(CompOp::Gt),
        Just(CompOp::Geq),
        Just(CompOp::Leq),
    ]
}

fn guard_strategy() -> impl Strategy<Value = Guard> {
    let leaf = prop_oneof![
        Just(Guard::True),
        (0..4usize).prop_map(|i| Guard::Port(port(i))),
        (comp_op(), 0..2usize, 0..16u64).prop_map(|(op, i, c)| Guard::Comp(
            op,
            Atom::Port(bus(i)),
            Atom::constant(c, 4)
        )),
        (comp_op(), 0..16u64, 0..16u64)
            .prop_map(|(op, a, b)| { Guard::Comp(op, Atom::constant(a, 4), Atom::constant(b, 4)) }),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|g| Guard::Not(Box::new(g))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Guard::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Guard::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn valuation() -> impl Strategy<Value = HashMap<PortRef, u64>> {
    (
        prop::collection::vec(0..2u64, 4),
        prop::collection::vec(0..16u64, 2),
    )
        .prop_map(|(flags, buses)| {
            let mut env = HashMap::new();
            for (i, v) in flags.into_iter().enumerate() {
                env.insert(port(i), v);
            }
            for (i, v) in buses.into_iter().enumerate() {
                env.insert(bus(i), v);
            }
            env
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Simplification never changes a guard's value.
    #[test]
    fn simplify_preserves_semantics(g in guard_strategy(), env in valuation()) {
        let simplified = simplify(g.clone());
        prop_assert_eq!(
            eval(&g, &env),
            eval(&simplified, &env),
            "guard {} simplified to {}",
            g,
            simplified
        );
    }

    /// Simplification is idempotent.
    #[test]
    fn simplify_is_idempotent(g in guard_strategy()) {
        let once = simplify(g);
        let twice = simplify(once.clone());
        prop_assert_eq!(once, twice);
    }

    /// Printing and re-parsing a guard preserves its semantics.
    #[test]
    fn printed_guards_reparse(g in guard_strategy(), env in valuation()) {
        let text = format!("{g}");
        let reparsed = parse_guard(&text)
            .map_err(|e| TestCaseError::fail(format!("`{text}` failed to parse: {e}")))?;
        prop_assert_eq!(
            eval(&g, &env),
            eval(&reparsed, &env),
            "`{}` reparsed as `{}`",
            text,
            reparsed
        );
    }
}
