//! The lint registry's extension contract, exercised from outside the
//! crate: a downstream tool defines its own [`Lint`], registers it on
//! top of the defaults, and `check_all` runs it alongside the built-in
//! lints — the same registration idiom the pass, backend, and frontend
//! registries use.

use calyx_core::analysis::AnalysisCache;
use calyx_core::ir::parse_context;
use calyx_core::lint::{Diagnostic, DiagnosticSink, Lint, LintRegistry, Severity};

/// A house style rule no built-in lint knows about: every component must
/// be named `main`.
#[derive(Default)]
struct MainOnly;

impl Lint for MainOnly {
    const NAME: &'static str = "main-only";
    const CODE: &'static str = "C9001";
    const DESCRIPTION: &'static str = "components must be named `main` (house style)";
    const SEVERITY: Severity = Severity::Warning;
    const EXPLANATION: &'static str =
        "House style for this test suite: every component is named `main`. \
         Rename the component; there is nothing deeper to it.";

    fn check(
        &self,
        ctx: &calyx_core::ir::Context,
        _cache: &mut AnalysisCache,
        sink: &mut DiagnosticSink,
    ) {
        for comp in ctx.components.iter() {
            if comp.name.as_str() != "main" {
                sink.push(Diagnostic::new(
                    Self::SEVERITY,
                    Self::CODE,
                    Self::NAME,
                    format!("component `{}` is not named `main`", comp.name),
                ));
            }
        }
    }
}

fn program() -> calyx_core::ir::Context {
    parse_context(
        r#"component helper() -> () {
            cells { r = std_reg(8); }
            wires {
              group set { r.in = 8'd1; r.write_en = 1'd1; set[done] = r.done; }
            }
            control { set; }
        }
        component main() -> () {
            cells {}
            wires {}
            control {}
        }"#,
    )
    .unwrap()
}

#[test]
fn third_party_lints_register_and_run_with_the_defaults() {
    let mut registry = LintRegistry::default();
    let builtin = registry.lints().len();
    registry.register::<MainOnly>();
    assert_eq!(registry.lints().len(), builtin + 1);

    // Lookup works like any built-in lint.
    let lint = registry.get("main-only").unwrap();
    assert_eq!(lint.code, "C9001");
    assert_eq!(lint.severity, Severity::Warning);

    // check_all runs the custom lint alongside the defaults: `helper`
    // trips the house rule while the built-ins stay quiet about it.
    let ctx = program();
    let sink = registry.check_all(&ctx, &mut AnalysisCache::new());
    assert!(
        sink.diagnostics()
            .iter()
            .any(|d| d.code == "C9001" && d.message.contains("helper")),
        "custom lint did not run: {:?}",
        sink.diagnostics()
    );
}

#[test]
fn third_party_lints_can_start_from_an_empty_registry() {
    let mut registry = LintRegistry::empty();
    registry.register::<MainOnly>();
    assert_eq!(registry.lints().len(), 1);

    let sink = registry.check_all(&program(), &mut AnalysisCache::new());
    assert_eq!(sink.warnings(), 1, "{:?}", sink.diagnostics());
    assert_eq!(sink.errors(), 0);
}
