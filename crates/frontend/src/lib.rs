//! The [`Frontend`] trait and [`FrontendRegistry`]: ingestion as a
//! first-class, data-driven API.
//!
//! The paper's thesis is that Calyx is *shared infrastructure for
//! accelerator generators*: many frontends — DSL compilers, parametric
//! hardware generators, benchmark suites — produce the one IL, and one
//! compiler lowers them all. This crate is the API that makes the first
//! half of that sentence concrete. A frontend is anything implementing
//! [`Frontend`]:
//!
//! - a unique kebab-case [`Frontend::NAME`] (the `futil -f` argument)
//!   and one-line [`Frontend::DESCRIPTION`],
//! - [`Frontend::extensions`] — the file extensions drivers infer it
//!   from (`.futil` → `calyx`, `.fuse` → `dahlia`),
//! - [`Frontend::options`] + [`Frontend::from_opts`] — the generator
//!   parameters it consumes from repeated `--fopt key=value` flags,
//!   with unknown keys rejected by name,
//! - [`Frontend::parse`] — source text in, Calyx
//!   [`Context`](calyx_core::ir::Context) out.
//!
//! [`FrontendRegistry`] completes the registry trilogy started by the
//! pass registry and the backend registry: selection by name with
//! unknown names listing the valid choices, panics on malformed or
//! duplicate registrations, plus extension-based lookup for inference.
//! Four frontends are registered by default:
//!
//! | Frontend | Source | Generates |
//! |---|---|---|
//! | [`CalyxFrontend`] | textual Calyx (`.futil`) | the parsed program, byte-identical to [`parse_context`](calyx_core::ir::parse_context) |
//! | [`DahliaFrontend`] | Dahlia (`.fuse`, §6.2) | the compiled imperative program |
//! | [`SystolicFrontend`] | a `rows/cols/inner/width` config (`.systolic`, §6.1) | a matrix-multiply systolic array |
//! | [`PolybenchFrontend`] | a kernel name (§7.2) | that benchmark's seed program |
//!
//! With both registries in hand, a driver is one straight line from any
//! source to any backend:
//!
//! ```
//! use calyx_backend::{BackendOpts, BackendRegistry};
//! use calyx_core::passes::PassManager;
//! use calyx_frontend::{FrontendOpts, FrontendRegistry};
//!
//! // futil - -f systolic --fopt rows=2 --fopt cols=2 --fopt inner=2 -b verilog
//! let mut fopts = FrontendOpts::default();
//! for flag in ["rows=2", "cols=2", "inner=2"] {
//!     fopts.push_flag(flag).unwrap();
//! }
//! let frontend = FrontendRegistry::default().get("systolic", &fopts).unwrap();
//! let mut ctx = frontend.parse("").unwrap();
//!
//! let backend = BackendRegistry::default()
//!     .get("verilog", &BackendOpts::default())
//!     .unwrap();
//! let mut pm = PassManager::from_names(backend.required_pipeline()).unwrap();
//! pm.run(&mut ctx).unwrap();
//! let mut out = Vec::new();
//! backend.emit(&ctx, &mut out).unwrap();
//! assert!(String::from_utf8(out).unwrap().contains("module main"));
//! ```
//!
//! (The doctest depends on `calyx_backend` only for illustration; the
//! crate itself does not.)

pub mod api;
mod dahlia;
mod native;
mod polybench;
mod systolic;

pub use api::{DynFrontend, Frontend, FrontendOpts, FrontendRegistry, RegisteredFrontend};
pub use dahlia::DahliaFrontend;
pub use native::CalyxFrontend;
pub use polybench::PolybenchFrontend;
pub use systolic::SystolicFrontend;
