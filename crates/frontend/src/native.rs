//! The `calyx` frontend: the native textual-Calyx parser behind the
//! [`Frontend`] API.

use crate::api::{Frontend, FrontendOpts};
use calyx_core::errors::CalyxResult;
use calyx_core::ir::{parse_context, Context};

/// Parses the textual Calyx format (the paper's concrete syntax, §3).
///
/// A thin wrapper over [`parse_context`]: the returned [`Context`] is
/// identical to the direct call, so programs entering through the
/// registry print byte-for-byte the same as before the `Frontend` API
/// existed (pinned by `tests/frontend_registry.rs`).
pub struct CalyxFrontend;

impl Frontend for CalyxFrontend {
    const NAME: &'static str = "calyx";
    const DESCRIPTION: &'static str = "parse the textual Calyx format";

    fn extensions() -> &'static [&'static str] {
        &["futil", "calyx"]
    }

    fn from_opts(opts: &FrontendOpts) -> CalyxResult<Self> {
        opts.expect_keys(Self::NAME, Self::options())?;
        Ok(CalyxFrontend)
    }

    fn parse(&self, src: &str) -> CalyxResult<Context> {
        parse_context(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_core::errors::Error;
    use calyx_core::ir::Printer;

    const COUNTER: &str = r#"
        component main() -> () {
          cells { r = std_reg(8); }
          wires { group g { r.in = 8'd7; r.write_en = 1'd1; g[done] = r.done; } }
          control { g; }
        }
    "#;

    #[test]
    fn wraps_parse_context_exactly() {
        let frontend = CalyxFrontend::from_opts(&FrontendOpts::default()).unwrap();
        let via_frontend = frontend.parse(COUNTER).unwrap();
        let direct = parse_context(COUNTER).unwrap();
        assert_eq!(
            Printer::print_context(&via_frontend),
            Printer::print_context(&direct)
        );
    }

    #[test]
    fn parse_errors_carry_positions() {
        let frontend = CalyxFrontend::from_opts(&FrontendOpts::default()).unwrap();
        let err = frontend.parse("component main( {").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }), "{err}");
    }

    #[test]
    fn rejects_any_fopt() {
        let mut opts = FrontendOpts::default();
        opts.set("n", "4");
        assert!(CalyxFrontend::from_opts(&opts).is_err());
    }
}
