//! The `systolic` frontend: the PE-parametric systolic array generator
//! (paper §6.1) behind the [`Frontend`] API.
//!
//! This frontend shows what "source text" means for a pure generator:
//! the input is a tiny configuration file naming the array dimensions,
//!
//! ```text
//! # out = A (rows x inner) . B (inner x cols)
//! rows  = 2
//! cols  = 2
//! inner = 2
//! width = 32   # optional, defaults to 32
//! ```
//!
//! and every key can also arrive (or be overridden) via the driver's
//! `--fopt key=value` flags, so `futil - -f systolic --fopt rows=2 …`
//! generates an array with no config file at all.

use crate::api::{Frontend, FrontendOpts};
use calyx_core::errors::{CalyxResult, Error};
use calyx_core::ir::Context;
use calyx_systolic::{generate, SystolicConfig};

/// Dimensions parsed so far — from the config file, the `--fopt` flags,
/// or both (flags win).
#[derive(Debug, Clone, Copy, Default)]
struct Dims {
    rows: Option<u64>,
    cols: Option<u64>,
    inner: Option<u64>,
    width: Option<u64>,
}

impl Dims {
    fn set(&mut self, key: &str, value: u64) -> bool {
        match key {
            "rows" => self.rows = Some(value),
            "cols" => self.cols = Some(value),
            "inner" => self.inner = Some(value),
            "width" => self.width = Some(value),
            _ => return false,
        }
        true
    }

    /// Fill any dimension still unset from `other`.
    fn or(self, other: Dims) -> Dims {
        Dims {
            rows: self.rows.or(other.rows),
            cols: self.cols.or(other.cols),
            inner: self.inner.or(other.inner),
            width: self.width.or(other.width),
        }
    }
}

/// Generates a matrix-multiply systolic array from `rows`/`cols`/
/// `inner`/`width` dimensions.
///
/// Dimensions come from a `key = value` config file (see the module
/// docs above) and/or `--fopt` flags; flags override the file. `rows`,
/// `cols`, and `inner` are required; `width` defaults to 32 bits.
pub struct SystolicFrontend {
    flags: Dims,
}

/// Parse the `key = value` configuration format, reporting malformed
/// lines as [`Error::Parse`] with 1-based positions (so the driver can
/// render caret diagnostics into the config file).
fn parse_config(src: &str) -> CalyxResult<Dims> {
    let mut dims = Dims::default();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        // `#` starts a comment; blank lines are allowed.
        let text = raw.split('#').next().unwrap_or("");
        if text.trim().is_empty() {
            continue;
        }
        // 1-based *character* column of byte offset `at` in the raw
        // line (`text` is a prefix of `raw`, so offsets are shared) —
        // columns are positional, never found by substring search,
        // so `width = wid` points at the value, not inside the key.
        let col_at = |at: usize| raw[..at].chars().count() + 1;
        // Byte offset of the first non-whitespace character of `part`,
        // which starts at byte `base` of the line.
        let start_of =
            |part: &str, base: usize| base + part.find(|c: char| !c.is_whitespace()).unwrap_or(0);
        let Some(eq) = text.find('=') else {
            return Err(Error::Parse {
                msg: format!("expected `key = value`, got `{}`", text.trim()),
                line,
                col: col_at(start_of(text, 0)),
            });
        };
        let (key_part, value_part) = (&text[..eq], &text[eq + 1..]);
        let (key, value) = (key_part.trim(), value_part.trim());
        let parsed: u64 = value.parse().map_err(|_| Error::Parse {
            msg: format!("`{key}` expects a number, got `{value}`"),
            line,
            col: col_at(start_of(value_part, eq + 1)),
        })?;
        if !dims.set(key, parsed) {
            return Err(Error::Parse {
                msg: format!("unknown dimension `{key}`; expected rows, cols, inner, or width"),
                line,
                col: col_at(start_of(key_part, 0)),
            });
        }
    }
    Ok(dims)
}

impl Frontend for SystolicFrontend {
    const NAME: &'static str = "systolic";
    const DESCRIPTION: &'static str = "generate a matrix-multiply systolic array (paper §6.1)";

    fn extensions() -> &'static [&'static str] {
        &["systolic"]
    }

    fn options() -> &'static [(&'static str, &'static str)] {
        &[
            (
                "rows",
                "rows of the PE grid (= rows of A and of the result)",
            ),
            (
                "cols",
                "columns of the PE grid (= columns of B and of the result)",
            ),
            ("inner", "the shared (reduction) dimension"),
            ("width", "data width in bits (default 32)"),
        ]
    }

    fn from_opts(opts: &FrontendOpts) -> CalyxResult<Self> {
        opts.expect_keys(Self::NAME, Self::options())?;
        let mut flags = Dims::default();
        for (key, _) in Self::options() {
            if let Some(value) = opts.get_u64(Self::NAME, key)? {
                flags.set(key, value);
            }
        }
        Ok(SystolicFrontend { flags })
    }

    fn parse(&self, src: &str) -> CalyxResult<Context> {
        let dims = self.flags.or(parse_config(src)?);
        let require = |dim: Option<u64>, key: &str| -> CalyxResult<u64> {
            match dim {
                Some(0) => Err(Error::malformed(format!(
                    "frontend `systolic`: `{key}` must be at least 1"
                ))),
                Some(v) => Ok(v),
                None => Err(Error::malformed(format!(
                    "frontend `systolic`: missing dimension `{key}`; set it in the \
                     config file (`{key} = N`) or with `--fopt {key}=N`"
                ))),
            }
        };
        let rows = require(dims.rows, "rows")?;
        let cols = require(dims.cols, "cols")?;
        let inner = require(dims.inner, "inner")?;
        let width = dims.width.unwrap_or(32);
        if !(1..=64).contains(&width) {
            return Err(Error::malformed(format!(
                "frontend `systolic`: `width` must be between 1 and 64 bits, got {width}"
            )));
        }
        Ok(generate(&SystolicConfig {
            rows: rows as usize,
            cols: cols as usize,
            inner: inner as usize,
            width: width as u32,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_core::ir::Printer;

    fn frontend(pairs: &[(&str, &str)]) -> CalyxResult<SystolicFrontend> {
        let mut opts = FrontendOpts::default();
        for (k, v) in pairs {
            opts.set(*k, *v);
        }
        SystolicFrontend::from_opts(&opts)
    }

    #[test]
    fn config_file_matches_direct_generation() {
        let src = "\
            # 2x3 array over a reduction of 4\n\
            rows  = 2\n\
            cols  = 3\n\
            inner = 4\n\
            width = 16\n";
        let ctx = frontend(&[]).unwrap().parse(src).unwrap();
        let direct = generate(&SystolicConfig {
            rows: 2,
            cols: 3,
            inner: 4,
            width: 16,
        });
        assert_eq!(
            Printer::print_context(&ctx),
            Printer::print_context(&direct)
        );
    }

    #[test]
    fn fopts_alone_suffice_and_override_the_file() {
        let via_flags = frontend(&[("rows", "2"), ("cols", "2"), ("inner", "2")])
            .unwrap()
            .parse("")
            .unwrap();
        let direct = generate(&SystolicConfig::square(2));
        assert_eq!(
            Printer::print_context(&via_flags),
            Printer::print_context(&direct)
        );

        // A flag overrides the same key in the file.
        let overridden = frontend(&[("rows", "2")])
            .unwrap()
            .parse("rows = 7\ncols = 2\ninner = 2\n")
            .unwrap();
        assert_eq!(
            Printer::print_context(&overridden),
            Printer::print_context(&direct)
        );
    }

    #[test]
    fn missing_dimension_is_a_clear_error() {
        let err = frontend(&[("rows", "2"), ("cols", "2")])
            .unwrap()
            .parse("")
            .unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("missing dimension `inner`"), "{msg}");
        assert!(msg.contains("--fopt inner=N"), "{msg}");
    }

    #[test]
    fn malformed_config_lines_carry_positions() {
        let err = frontend(&[]).unwrap().parse("rows = 2\nbogus = 3\n");
        match err {
            Err(Error::Parse { line: 2, col, .. }) => assert_eq!(col, 1),
            other => panic!("expected positioned parse error, got {other:?}"),
        }
        let err = frontend(&[]).unwrap().parse("rows = two\n");
        match err {
            Err(Error::Parse { line: 1, col, .. }) => assert_eq!(col, 8),
            other => panic!("expected positioned parse error, got {other:?}"),
        }
        // The caret points at the value's *position*, even when the
        // value text also occurs earlier in the line (`wid` is a prefix
        // of `width`).
        let err = frontend(&[]).unwrap().parse("width = wid\n");
        match err {
            Err(Error::Parse { line: 1, col, .. }) => assert_eq!(col, 9),
            other => panic!("expected positioned parse error, got {other:?}"),
        }
        assert!(frontend(&[]).unwrap().parse("rows 2\n").is_err());
    }

    #[test]
    fn invalid_values_are_rejected() {
        assert!(frontend(&[("rows", "x")]).is_err());
        let zero = frontend(&[("rows", "0"), ("cols", "2"), ("inner", "2")])
            .unwrap()
            .parse("");
        assert!(zero.is_err());
        let wide = frontend(&[
            ("rows", "2"),
            ("cols", "2"),
            ("inner", "2"),
            ("width", "65"),
        ])
        .unwrap()
        .parse("");
        assert!(wide.is_err());
    }
}
