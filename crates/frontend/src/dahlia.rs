//! The `dahlia` frontend: the Dahlia-to-Calyx compiler (paper §6.2)
//! behind the [`Frontend`] API.

use crate::api::{Frontend, FrontendOpts};
use calyx_core::errors::CalyxResult;
use calyx_core::ir::Context;

/// Compiles Dahlia, the imperative accelerator language, to Calyx.
///
/// A thin wrapper over [`calyx_dahlia::compile`] (parse → check → lower
/// → emit), so `.fuse` sources entering through the registry produce the
/// same [`Context`] as the library entry point (pinned by
/// `tests/frontend_registry.rs`).
pub struct DahliaFrontend;

impl Frontend for DahliaFrontend {
    const NAME: &'static str = "dahlia";
    const DESCRIPTION: &'static str = "compile Dahlia, the imperative accelerator language";

    fn extensions() -> &'static [&'static str] {
        &["fuse"]
    }

    fn from_opts(opts: &FrontendOpts) -> CalyxResult<Self> {
        opts.expect_keys(Self::NAME, Self::options())?;
        Ok(DahliaFrontend)
    }

    fn parse(&self, src: &str) -> CalyxResult<Context> {
        calyx_dahlia::compile(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_core::errors::Error;
    use calyx_core::ir::Printer;

    const DOTPROD: &str = "
        decl a: ubit<32>[4];
        decl b: ubit<32>[4];
        decl out: ubit<32>[1];
        let acc: ubit<32> = 0;
        ---
        for (let i: ubit<3> = 0..4) {
          let t: ubit<32> = a[i] * b[i];
          ---
          acc := acc + t;
        }
        ---
        out[0] := acc;
    ";

    #[test]
    fn wraps_compile_exactly() {
        let frontend = DahliaFrontend::from_opts(&FrontendOpts::default()).unwrap();
        let via_frontend = frontend.parse(DOTPROD).unwrap();
        let direct = calyx_dahlia::compile(DOTPROD).unwrap();
        assert_eq!(
            Printer::print_context(&via_frontend),
            Printer::print_context(&direct)
        );
    }

    #[test]
    fn parse_errors_carry_positions() {
        let frontend = DahliaFrontend::from_opts(&FrontendOpts::default()).unwrap();
        let err = frontend.parse("let x ubit<32> = 0;").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }), "{err}");
    }
}
