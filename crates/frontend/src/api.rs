//! The [`Frontend`] trait and [`FrontendRegistry`]: program ingestion as
//! a first-class, data-driven API.
//!
//! A frontend turns one source text into a Calyx [`Context`] — the entry
//! half of the generator → IR → passes → backend workflow, mirroring the
//! [`Backend`](https://docs.rs/calyx_backend) trait on the exit half. The
//! trait splits ingestion into a contract with three obligations:
//!
//! 1. [`Frontend::extensions`] *declares* the file extensions the driver
//!    may infer this frontend from, so `futil prog.fuse` selects the
//!    Dahlia compiler without an explicit `-f`.
//! 2. [`Frontend::from_opts`] *captures* generator parameters from the
//!    driver's repeated `--fopt key=value` flags, rejecting unknown keys
//!    with an error that names the frontend and lists the valid keys
//!    (generators are parametric — a systolic array has dimensions — and
//!    those parameters arrive through the same bag for every frontend).
//! 3. [`Frontend::parse`] ingests the source. For pure generators the
//!    "source" may be a small configuration file, a kernel name, or even
//!    empty when every parameter came through `--fopt`.
//!
//! [`FrontendRegistry`] mirrors the pass and backend registries:
//! frontends register a unique kebab-case [`Frontend::NAME`] plus a
//! one-line [`Frontend::DESCRIPTION`], lookups of unknown names return
//! [`Error::Undefined`] listing the valid choices, and duplicate or
//! ill-formatted names (or ambiguous extensions) panic at registration
//! time — they are compile-time constants, so a collision is a
//! programming error.
//!
//! ```
//! use calyx_core::ir::parse_context;
//! use calyx_frontend::{FrontendOpts, FrontendRegistry};
//!
//! let src = "component main() -> () {
//!     cells { r = std_reg(8); }
//!     wires { group g { r.in = 8'd7; r.write_en = 1'd1; g[done] = r.done; } }
//!     control { g; }
//!   }";
//!
//! let registry = FrontendRegistry::default();
//! // Extension-based lookup: `.futil` selects the native parser.
//! let native = registry.by_extension("futil").unwrap();
//! assert_eq!(native.name, "calyx");
//!
//! // The native frontend is byte-identical to `parse_context`.
//! let frontend = registry.get("calyx", &FrontendOpts::default()).unwrap();
//! let ctx = frontend.parse(src).unwrap();
//! assert_eq!(
//!     calyx_core::ir::Printer::print_context(&ctx),
//!     calyx_core::ir::Printer::print_context(&parse_context(src).unwrap()),
//! );
//!
//! // Generators take their parameters through `--fopt`-style options.
//! let mut opts = FrontendOpts::default();
//! for flag in ["rows=2", "cols=2", "inner=2"] {
//!     opts.push_flag(flag).unwrap();
//! }
//! let systolic = registry.get("systolic", &opts).unwrap();
//! let array = systolic.parse("").unwrap();
//! assert!(array.component("main").is_some());
//! ```

use calyx_core::errors::{CalyxResult, Error};
use calyx_core::ir::Context;
use calyx_core::utils::is_kebab_case;

/// Generator parameters collected from the driver's repeated
/// `--fopt key=value` flags.
///
/// The driver parses its flags into one bag and hands it to
/// [`FrontendRegistry::get`]; each frontend picks out the keys it
/// declares in [`Frontend::options`] and rejects the rest (via
/// [`FrontendOpts::expect_keys`]), so a typo'd key is an error naming
/// the frontend instead of a silently ignored flag.
#[derive(Debug, Clone, Default)]
pub struct FrontendOpts {
    pairs: Vec<(String, String)>,
}

impl FrontendOpts {
    /// An empty option bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one `key=value` flag argument, as passed to `--fopt`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] when `flag` has no `=` or an empty
    /// key.
    pub fn push_flag(&mut self, flag: &str) -> CalyxResult<()> {
        match flag.split_once('=') {
            Some((key, value)) if !key.is_empty() => {
                self.pairs.push((key.to_string(), value.to_string()));
                Ok(())
            }
            _ => Err(Error::undefined(format!(
                "`--fopt` argument `{flag}`; expected `key=value`"
            ))),
        }
    }

    /// Record a `key = value` pair directly (the programmatic equivalent
    /// of one `--fopt` flag).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.pairs.push((key.into(), value.into()));
    }

    /// The value of `key`; the last occurrence wins, so later flags
    /// override earlier ones.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value of `key` parsed as an unsigned number.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Malformed`] (naming `frontend`) when the value
    /// is present but not a number.
    pub fn get_u64(&self, frontend: &'static str, key: &str) -> CalyxResult<Option<u64>> {
        self.get(key)
            .map(|v| {
                v.parse().map_err(|_| {
                    Error::malformed(format!(
                        "frontend `{frontend}`: option `{key}` expects a number, got `{v}`"
                    ))
                })
            })
            .transpose()
    }

    /// Reject any key outside the `options` table with an
    /// [`Error::Undefined`] that names `frontend` and lists the keys it
    /// accepts.
    ///
    /// Every [`Frontend::from_opts`] implementation calls this with its
    /// own [`Frontend::options`] table — the declared table is the
    /// source of truth, so the accepted keys can never drift from the
    /// advertised ones, and unknown-key errors read the same for every
    /// frontend.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] on the first unknown key.
    pub fn expect_keys(&self, frontend: &'static str, options: &[(&str, &str)]) -> CalyxResult<()> {
        for (key, _) in &self.pairs {
            if !options.iter().any(|(k, _)| k == key) {
                let hint = if options.is_empty() {
                    format!("`{frontend}` takes no `--fopt` options")
                } else {
                    format!(
                        "valid options: {}",
                        options
                            .iter()
                            .map(|(k, _)| *k)
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                return Err(Error::undefined(format!(
                    "option `{key}` for frontend `{frontend}`; {hint}"
                )));
            }
        }
        Ok(())
    }
}

/// A producer of Calyx programs: one accelerator generator or parser.
///
/// See the [module docs](self) for the contract. Implementations are
/// cheap value types constructed from [`FrontendOpts`]; all real work
/// happens in [`Frontend::parse`].
pub trait Frontend {
    /// Unique kebab-case name — the `-f` argument.
    const NAME: &'static str;

    /// One-line description for `--list-frontends` and generated docs.
    const DESCRIPTION: &'static str;

    /// File extensions (without the leading dot) the driver infers this
    /// frontend from when `-f` is omitted. Empty means "explicit `-f`
    /// only".
    fn extensions() -> &'static [&'static str]
    where
        Self: Sized;

    /// The `--fopt` keys this frontend consumes, as
    /// `(key, description)` pairs. Shown by `--list-frontends`, quoted
    /// in the README table, and the source of truth for
    /// [`FrontendOpts::expect_keys`].
    fn options() -> &'static [(&'static str, &'static str)]
    where
        Self: Sized,
    {
        &[]
    }

    /// Construct the frontend, capturing the options it consumes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] for unknown `--fopt` keys (call
    /// `opts.expect_keys(Self::NAME, Self::options())` first) and
    /// [`Error::Malformed`] for well-known keys with invalid values.
    /// Drivers treat these as usage errors (exit 2), not input errors.
    fn from_opts(opts: &FrontendOpts) -> CalyxResult<Self>
    where
        Self: Sized;

    /// Ingest one source text into a Calyx [`Context`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] (with 1-based line/column positions, so
    /// drivers can render caret diagnostics) for malformed source, or
    /// any error of the underlying generator.
    fn parse(&self, src: &str) -> CalyxResult<Context>;
}

/// Object-safe view of a [`Frontend`].
///
/// The associated consts and static methods make [`Frontend`] itself
/// non-object-safe; every `Frontend` automatically implements this
/// companion, which is what [`FrontendRegistry::get`] hands back to
/// drivers.
pub trait DynFrontend {
    /// [`Frontend::NAME`].
    fn name(&self) -> &'static str;
    /// [`Frontend::DESCRIPTION`].
    fn description(&self) -> &'static str;
    /// [`Frontend::parse`].
    ///
    /// # Errors
    ///
    /// See [`Frontend::parse`].
    fn parse(&self, src: &str) -> CalyxResult<Context>;
}

impl<F: Frontend> DynFrontend for F {
    fn name(&self) -> &'static str {
        F::NAME
    }

    fn description(&self) -> &'static str {
        F::DESCRIPTION
    }

    fn parse(&self, src: &str) -> CalyxResult<Context> {
        Frontend::parse(self, src)
    }
}

/// A frontend known to the registry.
pub struct RegisteredFrontend {
    /// The frontend's unique kebab-case name.
    pub name: &'static str,
    /// One-line description (from [`Frontend::DESCRIPTION`]).
    pub description: &'static str,
    /// Extensions the driver infers this frontend from (see
    /// [`Frontend::extensions`]), captured at registration.
    pub extensions: &'static [&'static str],
    /// The `--fopt` keys this frontend consumes (see
    /// [`Frontend::options`]), captured at registration.
    pub options: &'static [(&'static str, &'static str)],
    ctor: fn(&FrontendOpts) -> CalyxResult<Box<dyn DynFrontend>>,
}

impl RegisteredFrontend {
    /// Construct an instance of this frontend from driver options.
    ///
    /// # Errors
    ///
    /// See [`Frontend::from_opts`].
    pub fn construct(&self, opts: &FrontendOpts) -> CalyxResult<Box<dyn DynFrontend>> {
        (self.ctor)(opts)
    }
}

/// A registry of named frontends, completing the trilogy of
/// [`PassRegistry`](calyx_core::passes::PassRegistry) and
/// `BackendRegistry`.
///
/// [`FrontendRegistry::default`] knows every frontend in this crate;
/// drivers can [`register`](FrontendRegistry::register) their own on
/// top.
pub struct FrontendRegistry {
    frontends: Vec<RegisteredFrontend>,
}

impl Default for FrontendRegistry {
    /// The standard registry: `calyx`, `dahlia`, `systolic`, and
    /// `polybench`, in listing order.
    fn default() -> Self {
        let mut reg = FrontendRegistry::empty();
        reg.register::<crate::native::CalyxFrontend>();
        reg.register::<crate::dahlia::DahliaFrontend>();
        reg.register::<crate::systolic::SystolicFrontend>();
        reg.register::<crate::polybench::PolybenchFrontend>();
        reg
    }
}

impl FrontendRegistry {
    /// The standard registry (same as [`FrontendRegistry::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with no frontends, for drivers that want full control
    /// over what is selectable.
    pub fn empty() -> Self {
        FrontendRegistry {
            frontends: Vec::new(),
        }
    }

    /// Register frontend `F` under [`Frontend::NAME`].
    ///
    /// # Panics
    ///
    /// Panics when the name is already taken, is not kebab-case, or
    /// claims an extension another frontend already claims — names and
    /// extensions are compile-time constants, so a collision is a
    /// programming error, not an input error.
    pub fn register<F: Frontend + 'static>(&mut self) {
        assert!(
            is_kebab_case(F::NAME),
            "frontend name `{}` is not kebab-case",
            F::NAME
        );
        assert!(
            self.find(F::NAME).is_none(),
            "frontend name `{}` registered twice",
            F::NAME
        );
        for ext in F::extensions() {
            assert!(
                self.by_extension(ext).is_none(),
                "extension `.{ext}` claimed by two frontends (second: `{}`)",
                F::NAME
            );
        }
        self.frontends.push(RegisteredFrontend {
            name: F::NAME,
            description: F::DESCRIPTION,
            extensions: F::extensions(),
            options: F::options(),
            ctor: |opts| Ok(Box::new(F::from_opts(opts)?) as Box<dyn DynFrontend>),
        });
    }

    /// All registered frontends, in registration order.
    pub fn frontends(&self) -> &[RegisteredFrontend] {
        &self.frontends
    }

    fn find(&self, name: &str) -> Option<&RegisteredFrontend> {
        self.frontends.iter().find(|f| f.name == name)
    }

    /// The frontend claiming file extension `ext` (without the leading
    /// dot; ASCII case-insensitive), if any.
    pub fn by_extension(&self, ext: &str) -> Option<&RegisteredFrontend> {
        self.frontends
            .iter()
            .find(|f| f.extensions.iter().any(|e| e.eq_ignore_ascii_case(ext)))
    }

    /// The frontend inferred from `path`'s file extension, if any.
    ///
    /// This is the one extension-inference rule shared by the `futil`
    /// driver, the batch/serve engine, and the plan-based build graph —
    /// keep them on this helper so the inference can never diverge.
    pub fn infer_for_path(&self, path: &str) -> Option<&RegisteredFrontend> {
        std::path::Path::new(path)
            .extension()
            .and_then(|e| e.to_str())
            .and_then(|ext| self.by_extension(ext))
    }

    /// Resolve the frontend name for an input: an explicit name wins,
    /// else the frontend inferred from the input path's extension, else
    /// the native `calyx` parser. The second component is `true` when
    /// the fallback fired (no explicit name and no claiming frontend),
    /// so drivers can warn that the choice is a guess.
    pub fn resolve_name<'a>(
        &'a self,
        explicit: Option<&'a str>,
        input: Option<&str>,
    ) -> (&'a str, bool) {
        if let Some(name) = explicit {
            return (name, false);
        }
        match input.and_then(|path| self.infer_for_path(path)) {
            Some(f) => (f.name, false),
            None => ("calyx", true),
        }
    }

    /// Construct the frontend registered as `name`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Undefined`] naming the offending entry and
    /// listing the valid choices when `name` is unknown, and propagates
    /// [`Frontend::from_opts`] errors (unknown `--fopt` keys, invalid
    /// values).
    pub fn get(&self, name: &str, opts: &FrontendOpts) -> CalyxResult<Box<dyn DynFrontend>> {
        match self.find(name) {
            Some(f) => f.construct(opts),
            None => Err(Error::undefined(format!(
                "frontend `{name}`; valid frontends: {}",
                self.frontends
                    .iter()
                    .map(|f| f.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn default_registry_has_all_four_frontends() {
        let reg = FrontendRegistry::default();
        let names: Vec<&str> = reg.frontends().iter().map(|f| f.name).collect();
        assert_eq!(names, vec!["calyx", "dahlia", "systolic", "polybench"]);
    }

    #[test]
    fn registered_names_are_unique_kebab_case_and_described() {
        let reg = FrontendRegistry::default();
        let mut seen = BTreeSet::new();
        for f in reg.frontends() {
            assert!(is_kebab_case(f.name), "`{}` not kebab-case", f.name);
            assert!(seen.insert(f.name), "duplicate frontend name `{}`", f.name);
            assert!(!f.description.is_empty());
        }
    }

    #[test]
    fn extension_lookup_is_unambiguous_and_case_insensitive() {
        let reg = FrontendRegistry::default();
        let mut seen = BTreeSet::new();
        for f in reg.frontends() {
            for ext in f.extensions {
                assert!(
                    seen.insert(ext.to_ascii_lowercase()),
                    "extension `.{ext}` claimed twice"
                );
            }
        }
        assert_eq!(reg.by_extension("futil").unwrap().name, "calyx");
        assert_eq!(reg.by_extension("FUSE").unwrap().name, "dahlia");
        assert_eq!(reg.by_extension("systolic").unwrap().name, "systolic");
        assert!(reg.by_extension("sv").is_none());
    }

    /// The one shared inference rule: explicit name wins, then the
    /// path's extension, then the `calyx` fallback (flagged so drivers
    /// can warn).
    #[test]
    fn resolve_name_prefers_explicit_then_extension_then_fallback() {
        let reg = FrontendRegistry::default();
        assert_eq!(
            reg.resolve_name(Some("polybench"), Some("x.fuse")),
            ("polybench", false)
        );
        assert_eq!(reg.resolve_name(None, Some("x.fuse")), ("dahlia", false));
        assert_eq!(
            reg.resolve_name(None, Some("dir.fuse/x.futil")),
            ("calyx", false)
        );
        assert_eq!(reg.resolve_name(None, Some("-")), ("calyx", true));
        assert_eq!(reg.resolve_name(None, Some("x.sv")), ("calyx", true));
        assert_eq!(reg.resolve_name(None, None), ("calyx", true));
        assert_eq!(reg.infer_for_path("a/b/k.poly").unwrap().name, "polybench");
        assert!(reg.infer_for_path("noext").is_none());
    }

    #[test]
    fn unknown_frontend_is_an_error_listing_choices() {
        let err = match FrontendRegistry::default().get("dahlai", &FrontendOpts::default()) {
            Err(e) => e,
            Ok(_) => panic!("unknown frontend resolved"),
        };
        match err {
            Error::Undefined(msg) => {
                assert!(msg.contains("dahlai"), "{msg}");
                assert!(msg.contains("dahlia"), "{msg}");
                assert!(msg.contains("systolic"), "{msg}");
                assert!(msg.contains("polybench"), "{msg}");
            }
            other => panic!("expected Undefined, got {other:?}"),
        }
    }

    fn get_err(name: &str, opts: &FrontendOpts) -> Error {
        match FrontendRegistry::default().get(name, opts) {
            Err(e) => e,
            Ok(_) => panic!("`{name}` resolved unexpectedly"),
        }
    }

    #[test]
    fn unknown_fopt_key_names_the_frontend() {
        let mut opts = FrontendOpts::default();
        opts.set("rows", "2");
        let msg = format!("{}", get_err("calyx", &opts));
        assert!(msg.contains("option `rows` for frontend `calyx`"), "{msg}");
        assert!(msg.contains("takes no `--fopt` options"), "{msg}");

        let mut opts = FrontendOpts::default();
        opts.set("rosw", "2");
        let msg = format!("{}", get_err("systolic", &opts));
        assert!(
            msg.contains("option `rosw` for frontend `systolic`"),
            "{msg}"
        );
        assert!(msg.contains("rows"), "{msg}");
    }

    #[test]
    fn malformed_fopt_flag_is_rejected() {
        let mut opts = FrontendOpts::default();
        assert!(opts.push_flag("rows").is_err());
        assert!(opts.push_flag("=2").is_err());
        opts.push_flag("rows=2").unwrap();
        opts.push_flag("rows=3").unwrap();
        // Later flags override earlier ones.
        assert_eq!(opts.get("rows"), Some("3"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut reg = FrontendRegistry::empty();
        reg.register::<crate::native::CalyxFrontend>();
        reg.register::<crate::native::CalyxFrontend>();
    }

    struct BadName;
    impl Frontend for BadName {
        const NAME: &'static str = "Bad_Name";
        const DESCRIPTION: &'static str = "never registers";
        fn extensions() -> &'static [&'static str] {
            &[]
        }
        fn from_opts(_: &FrontendOpts) -> CalyxResult<Self> {
            Ok(BadName)
        }
        fn parse(&self, _: &str) -> CalyxResult<Context> {
            Ok(Context::new())
        }
    }

    #[test]
    #[should_panic(expected = "not kebab-case")]
    fn non_kebab_case_name_panics() {
        FrontendRegistry::empty().register::<BadName>();
    }

    struct ExtensionSquatter;
    impl Frontend for ExtensionSquatter {
        const NAME: &'static str = "squatter";
        const DESCRIPTION: &'static str = "claims .futil";
        fn extensions() -> &'static [&'static str] {
            &["futil"]
        }
        fn from_opts(_: &FrontendOpts) -> CalyxResult<Self> {
            Ok(ExtensionSquatter)
        }
        fn parse(&self, _: &str) -> CalyxResult<Context> {
            Ok(Context::new())
        }
    }

    #[test]
    #[should_panic(expected = "claimed by two frontends")]
    fn ambiguous_extension_panics() {
        let mut reg = FrontendRegistry::default();
        reg.register::<ExtensionSquatter>();
    }

    /// The hand-written frontend table in the README must quote the
    /// exact registry strings (the same ones `futil --list-frontends`
    /// prints), or the copies drift apart — same guard as the pass and
    /// backend tables.
    #[test]
    fn readme_frontend_table_quotes_registry() {
        let readme = include_str!("../../../README.md");
        for f in FrontendRegistry::default().frontends() {
            let exts = if f.extensions.is_empty() {
                "—".to_string()
            } else {
                f.extensions
                    .iter()
                    .map(|e| format!("`.{e}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let opts = if f.options.is_empty() {
                "—".to_string()
            } else {
                f.options
                    .iter()
                    .map(|(k, _)| format!("`{k}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let row = format!("| `{}` | {} | {} | {} |", f.name, exts, opts, f.description);
            assert!(
                readme.contains(&row),
                "README frontend table out of sync for `{}`: expected row `{row}`",
                f.name
            );
        }
    }
}
