//! The `polybench` frontend: the paper's evaluation kernels (§7.2) as a
//! generator behind the [`Frontend`] API.
//!
//! Selecting a kernel by name emits that benchmark's seed Calyx program
//! — the same Dahlia-compiled context the correctness harness and the
//! figure benches start from — so any kernel can be driven through an
//! arbitrary pipeline and backend from the command line:
//!
//! ```text
//! futil - -f polybench --fopt kernel=gemm -p opt -b verilog
//! ```
//!
//! The kernel name comes from `--fopt kernel=<name>` (which wins) or
//! from the input text itself, so a file containing just `gemm` works
//! too.

use crate::api::{Frontend, FrontendOpts};
use calyx_core::errors::{CalyxResult, Error};
use calyx_core::ir::Context;
use calyx_polybench::{kernel, KERNELS};

/// Emits the seed program of a PolyBench kernel, selected by name or by
/// the paper's figure-axis abbreviation.
///
/// `n` is the problem size (default 4) and `unroll` the unroll factor
/// (default 1; only the ten unrollable kernels accept more — the Dahlia
/// checker reports the rest).
pub struct PolybenchFrontend {
    kernel: Option<String>,
    n: u64,
    unroll: u64,
}

impl Frontend for PolybenchFrontend {
    const NAME: &'static str = "polybench";
    const DESCRIPTION: &'static str = "emit the seed program of a PolyBench kernel (paper §7.2)";

    fn extensions() -> &'static [&'static str] {
        &["poly"]
    }

    fn options() -> &'static [(&'static str, &'static str)] {
        &[
            ("kernel", "kernel name or figure abbreviation (e.g. gemm)"),
            ("n", "problem size (default 4)"),
            (
                "unroll",
                "unroll factor (default 1; unrollable kernels only)",
            ),
        ]
    }

    fn from_opts(opts: &FrontendOpts) -> CalyxResult<Self> {
        opts.expect_keys(Self::NAME, Self::options())?;
        let n = opts.get_u64(Self::NAME, "n")?.unwrap_or(4);
        let unroll = opts.get_u64(Self::NAME, "unroll")?.unwrap_or(1);
        for (key, value) in [("n", n), ("unroll", unroll)] {
            if value == 0 {
                return Err(Error::malformed(format!(
                    "frontend `polybench`: `{key}` must be at least 1"
                )));
            }
        }
        Ok(PolybenchFrontend {
            kernel: opts.get("kernel").map(str::to_string),
            n,
            unroll,
        })
    }

    fn parse(&self, src: &str) -> CalyxResult<Context> {
        let name = match (&self.kernel, src.trim()) {
            (Some(k), _) => k.as_str(),
            (None, "") => {
                return Err(Error::malformed(
                    "frontend `polybench`: no kernel selected; pass `--fopt kernel=<name>` \
                     or put the kernel name in the input",
                ))
            }
            (None, from_src) => from_src,
        };
        let def = kernel(name).ok_or_else(|| {
            Error::undefined(format!(
                "kernel `{name}`; valid kernels: {}",
                KERNELS
                    .iter()
                    .map(|k| k.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
        let dahlia_src = (def.source)(self.n, self.unroll);
        calyx_dahlia::compile(&dahlia_src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_core::ir::Printer;

    fn frontend(pairs: &[(&str, &str)]) -> CalyxResult<PolybenchFrontend> {
        let mut opts = FrontendOpts::default();
        for (k, v) in pairs {
            opts.set(*k, *v);
        }
        PolybenchFrontend::from_opts(&opts)
    }

    #[test]
    fn kernel_flag_matches_compile_kernel() {
        let ctx = frontend(&[("kernel", "gemm")]).unwrap().parse("").unwrap();
        let def = kernel("gemm").unwrap();
        let (_, direct) = calyx_polybench::compile_kernel(def, 4, 1).unwrap();
        assert_eq!(
            Printer::print_context(&ctx),
            Printer::print_context(&direct)
        );
    }

    #[test]
    fn kernel_name_can_come_from_the_source_text() {
        let via_src = frontend(&[]).unwrap().parse("mvt\n").unwrap();
        let (_, direct) = calyx_polybench::compile_kernel(kernel("mvt").unwrap(), 4, 1).unwrap();
        assert_eq!(
            Printer::print_context(&via_src),
            Printer::print_context(&direct)
        );
        // `--fopt kernel=` wins over the source text.
        let flag_wins = frontend(&[("kernel", "mvt")])
            .unwrap()
            .parse("gemm")
            .unwrap();
        assert_eq!(
            Printer::print_context(&flag_wins),
            Printer::print_context(&direct)
        );
    }

    #[test]
    fn n_and_unroll_flow_through() {
        let ctx = frontend(&[("kernel", "gemm"), ("n", "8"), ("unroll", "2")])
            .unwrap()
            .parse("")
            .unwrap();
        let (_, direct) = calyx_polybench::compile_kernel(kernel("gemm").unwrap(), 8, 2).unwrap();
        assert_eq!(
            Printer::print_context(&ctx),
            Printer::print_context(&direct)
        );
    }

    #[test]
    fn unknown_kernel_lists_choices() {
        let err = frontend(&[("kernel", "gmem")])
            .unwrap()
            .parse("")
            .unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("kernel `gmem`"), "{msg}");
        assert!(msg.contains("gemm"), "{msg}");
        assert!(msg.contains("trisolv"), "{msg}");
    }

    #[test]
    fn missing_kernel_and_invalid_sizes_are_errors() {
        assert!(frontend(&[]).unwrap().parse("").is_err());
        assert!(frontend(&[("n", "0")]).is_err());
        assert!(frontend(&[("unroll", "x")]).is_err());
    }
}
