//! Construction of the flat IR from a [`Context`].
//!
//! Two flattening modes share one primitive-instantiation path:
//!
//! - [`flatten_control`] lowers a *single* component for the reference
//!   interpreter, keeping groups (as assignment ranges) and the control
//!   tree (as a [`CtrlNode`] arena). Port slots are created on demand for
//!   every `PortRef` the program mentions — including group holes — which
//!   reproduces the interpreter's historical "unknown ports read as zero"
//!   semantics exactly.
//! - [`flatten_design`] elaborates a *lowered* hierarchy for the RTL
//!   engine. Subcomponent instances are elaborated in place: a cell's
//!   ports and the child component's `this` ports are the same arena
//!   slots, so hierarchy costs nothing at simulation time. All drivers of
//!   one port are grouped into a contiguous assignment range, and the
//!   resulting evaluation nodes are topologically sorted once.

use super::index::{
    AssignIdx, CellIdx, CtrlIdx, GroupIdx, GuardIdx, IndexRange, IndexedMap, PortIdx,
};
use super::{
    topo_sort, CtrlNode, FlatAssign, FlatAtom, FlatCell, FlatCellKind, FlatControl, FlatDesign,
    FlatGroup, FlatGuard, FlatProgram, Node, PortData,
};
use crate::error::{SimError, SimResult};
use crate::prim::{CombOp, PrimState, UnitOp};
use calyx_core::ir::{Atom, CellType, Context, Control, Direction, Guard, Id, PortParent, PortRef};
use std::collections::HashMap;

/// How a flattening mode turns a primitive's port names into arena slots.
trait PortResolver {
    /// The slot for port `name` of the cell being instantiated.
    fn port(&mut self, name: &str) -> SimResult<PortIdx>;
    /// The declared width of an already-resolved slot.
    fn width(&self, port: PortIdx) -> u32;
}

/// Build the behavioral model of one primitive instance. Shared between
/// both flattening modes; only port-name resolution differs.
fn instantiate_primitive<R: PortResolver>(
    prim: &str,
    params: &[u64],
    r: &mut R,
) -> SimResult<(FlatCellKind, PrimState)> {
    let width = params.first().copied().unwrap_or(1) as u32;
    if let Some(op) = CombOp::from_name(prim) {
        let (left, right) = if op.is_binary() {
            (r.port("left")?, Some(r.port("right")?))
        } else {
            (r.port("in")?, None)
        };
        let out = r.port("out")?;
        let out_width = r.width(out);
        // Combinational primitives carry no state; a zero-width register
        // placeholder keeps the state arena index-aligned with cells.
        return Ok((
            FlatCellKind::Comb {
                op,
                left,
                right,
                out,
                in_width: width,
                out_width,
            },
            PrimState::Reg {
                val: 0,
                done: false,
                width: 0,
            },
        ));
    }
    match prim {
        "std_reg" => Ok((
            FlatCellKind::Reg {
                input: r.port("in")?,
                write_en: r.port("write_en")?,
                out: r.port("out")?,
                done: r.port("done")?,
            },
            PrimState::Reg {
                val: 0,
                done: false,
                width,
            },
        )),
        "std_mem_d1" | "std_mem_d2" | "std_mem_d3" => {
            let ndims = match prim {
                "std_mem_d1" => 1,
                "std_mem_d2" => 2,
                _ => 3,
            };
            let dims: Vec<u64> = params[1..=ndims].to_vec();
            let size: u64 = dims.iter().product();
            let addrs = (0..ndims)
                .map(|i| r.port(&format!("addr{i}")))
                .collect::<SimResult<Vec<_>>>()?;
            Ok((
                FlatCellKind::Mem {
                    addrs,
                    write_data: r.port("write_data")?,
                    write_en: r.port("write_en")?,
                    read_data: r.port("read_data")?,
                    done: r.port("done")?,
                },
                PrimState::Mem {
                    data: vec![0; size as usize],
                    dims,
                    done: false,
                    width,
                },
            ))
        }
        "std_mult_pipe" | "std_div_pipe" | "std_sqrt" => {
            let (op, left, right, out, out2) = match prim {
                "std_mult_pipe" => (
                    UnitOp::Mult,
                    r.port("left")?,
                    r.port("right")?,
                    r.port("out")?,
                    None,
                ),
                "std_div_pipe" => (
                    UnitOp::Div,
                    r.port("left")?,
                    r.port("right")?,
                    r.port("out_quotient")?,
                    Some(r.port("out_remainder")?),
                ),
                _ => {
                    let input = r.port("in")?;
                    (UnitOp::Sqrt, input, input, r.port("out")?, None)
                }
            };
            Ok((
                FlatCellKind::Unit {
                    left,
                    right,
                    go: r.port("go")?,
                    out,
                    out2,
                    done: r.port("done")?,
                },
                PrimState::Unit {
                    op,
                    operands: (0, 0),
                    remaining: None,
                    out: 0,
                    out2: 0,
                    done: false,
                    width,
                },
            ))
        }
        other => Err(SimError::Elaboration(format!(
            "primitive `{other}` has no behavioral model"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Single-component flattening for the interpreter.
// ---------------------------------------------------------------------------

struct ControlFlattener {
    prog: FlatProgram,
    port_map: HashMap<PortRef, PortIdx>,
    groups: super::IndexedMap<GroupIdx, FlatGroup>,
    group_map: HashMap<Id, GroupIdx>,
    ctrl: super::IndexedMap<CtrlIdx, CtrlNode>,
    cell_index: HashMap<Id, CellIdx>,
}

impl ControlFlattener {
    /// The slot for `port`, allocating one with `width` on first mention.
    fn port_of(&mut self, port: PortRef, width: u32) -> PortIdx {
        if let Some(&idx) = self.port_map.get(&port) {
            return idx;
        }
        let idx = self.prog.ports.push(PortData {
            width,
            path: port.to_string(),
        });
        self.port_map.insert(port, idx);
        idx
    }

    fn atom_of(&mut self, atom: &Atom) -> FlatAtom {
        match atom {
            Atom::Port(p) => FlatAtom::Port(self.port_of(*p, 1)),
            Atom::Const { val, .. } => FlatAtom::Const(*val),
        }
    }

    fn guard_of(&mut self, guard: &Guard) -> GuardIdx {
        match guard {
            Guard::True => self.prog.true_guard(),
            Guard::Port(p) => {
                let port = self.port_of(*p, 1);
                self.prog.guards.push(FlatGuard::Port(port))
            }
            Guard::Not(g) => {
                let inner = self.guard_of(g);
                self.prog.guards.push(FlatGuard::Not(inner))
            }
            Guard::And(a, b) => {
                let (a, b) = (self.guard_of(a), self.guard_of(b));
                self.prog.guards.push(FlatGuard::And(a, b))
            }
            Guard::Or(a, b) => {
                let (a, b) = (self.guard_of(a), self.guard_of(b));
                self.prog.guards.push(FlatGuard::Or(a, b))
            }
            Guard::Comp(op, l, r) => {
                let (l, r) = (self.atom_of(l), self.atom_of(r));
                self.prog.guards.push(FlatGuard::Comp(*op, l, r))
            }
        }
    }

    fn assign_of(&mut self, asgn: &calyx_core::ir::Assignment) -> AssignIdx {
        let dst = self.port_of(asgn.dst, 1);
        let src = self.atom_of(&asgn.src);
        let guard = self.guard_of(&asgn.guard);
        self.prog.assigns.push(FlatAssign { dst, src, guard })
    }

    /// The group's index; unknown names get an empty placeholder, which
    /// (like the tree-walking interpreter) never signals done.
    fn group_of(&mut self, name: Id) -> GroupIdx {
        if let Some(&g) = self.group_map.get(&name) {
            return g;
        }
        let g = self.groups.push(FlatGroup {
            name,
            assigns: IndexRange::empty(),
            done_writes: Vec::new(),
        });
        self.group_map.insert(name, g);
        g
    }

    fn ctrl_of(&mut self, stmt: &Control) -> CtrlIdx {
        let node = match stmt {
            Control::Empty => CtrlNode::Empty,
            Control::Enable { group, .. } => CtrlNode::Enable {
                group: self.group_of(*group),
            },
            Control::Seq { stmts, .. } => CtrlNode::Seq {
                children: stmts.iter().map(|s| self.ctrl_of(s)).collect(),
            },
            Control::Par { stmts, .. } => CtrlNode::Par {
                children: stmts.iter().map(|s| self.ctrl_of(s)).collect(),
            },
            Control::If {
                port,
                cond,
                tbranch,
                fbranch,
                ..
            } => {
                let port = self.port_of(*port, 1);
                let cond = cond.map(|c| self.group_of(c));
                let tbranch = self.ctrl_of(tbranch);
                let fbranch = self.ctrl_of(fbranch);
                CtrlNode::If {
                    port,
                    cond,
                    tbranch,
                    fbranch,
                }
            }
            Control::While {
                port, cond, body, ..
            } => {
                let port = self.port_of(*port, 1);
                let cond = cond.map(|c| self.group_of(c));
                let body = self.ctrl_of(body);
                CtrlNode::While { port, cond, body }
            }
        };
        self.ctrl.push(node)
    }
}

struct CellPortResolver<'a> {
    f: &'a mut ControlFlattener,
    cell: Id,
    width: u32,
}

impl PortResolver for CellPortResolver<'_> {
    fn port(&mut self, name: &str) -> SimResult<PortIdx> {
        // Ports missing from the cell's declaration are allocated with the
        // primitive's data width — the interpreter never errors on them.
        Ok(self.f.port_of(PortRef::cell(self.cell, name), self.width))
    }

    fn width(&self, port: PortIdx) -> u32 {
        self.f.prog.ports[port].width
    }
}

/// Flatten component `top` of `ctx` for the reference interpreter.
///
/// # Errors
///
/// Returns [`SimError::Elaboration`] when the component does not exist,
/// instantiates other components, or uses unmodeled primitives.
pub fn flatten_control(ctx: &Context, top: &str) -> SimResult<FlatControl> {
    let comp = ctx
        .components
        .get(Id::new(top))
        .ok_or_else(|| SimError::Elaboration(format!("no component `{top}`")))?;

    let mut f = ControlFlattener {
        prog: FlatProgram::new(),
        port_map: HashMap::new(),
        groups: super::IndexedMap::new(),
        group_map: HashMap::new(),
        ctrl: super::IndexedMap::new(),
        cell_index: HashMap::new(),
    };

    // Interface ports.
    for pd in &comp.signature {
        f.port_of(PortRef::this(pd.name), pd.width);
    }
    let go = f.port_of(PortRef::this("go"), 1);

    // Cells: allocate declared ports at their declared widths, then wire
    // up the behavioral model.
    for cell in comp.cells.iter() {
        match &cell.prototype {
            CellType::Component { name } => {
                return Err(SimError::Elaboration(format!(
                    "interpreter does not support component instances (`{}` of `{name}`); \
                     lower and use the RTL simulator",
                    cell.name
                )))
            }
            CellType::Primitive { name, params } => {
                for pd in &cell.ports {
                    f.port_of(PortRef::cell(cell.name, pd.name), pd.width);
                }
                let width = params.first().copied().unwrap_or(1) as u32;
                let (kind, state) = {
                    let mut r = CellPortResolver {
                        f: &mut f,
                        cell: cell.name,
                        width,
                    };
                    instantiate_primitive(name.as_str(), params, &mut r)?
                };
                let ci = f.prog.cells.push(FlatCell {
                    path: cell.name.to_string(),
                    kind,
                });
                f.prog.states.push(state);
                f.cell_index.insert(cell.name, ci);
            }
        }
    }

    // Assignments: the continuous block first, then each group's block.
    let cont_start = f.prog.assigns.next_idx();
    for asgn in &comp.continuous {
        f.assign_of(asgn);
    }
    let continuous = IndexRange::new(cont_start, f.prog.assigns.next_idx());

    for group in comp.groups.iter() {
        let start = f.prog.assigns.next_idx();
        let done_hole = group.done_hole();
        let mut done_writes = Vec::new();
        for asgn in &group.assignments {
            let ai = f.assign_of(asgn);
            if asgn.dst == done_hole {
                done_writes.push(ai);
            }
        }
        let assigns = IndexRange::new(start, f.prog.assigns.next_idx());
        let g = f.groups.push(FlatGroup {
            name: group.name,
            assigns,
            done_writes,
        });
        f.group_map.insert(group.name, g);
    }

    let root = f.ctrl_of(&comp.control);

    Ok(FlatControl {
        prog: f.prog,
        comp: comp.name,
        go,
        continuous,
        groups: f.groups,
        ctrl: f.ctrl,
        root,
        cell_index: f.cell_index,
    })
}

// ---------------------------------------------------------------------------
// Hierarchy elaboration for the RTL engine.
// ---------------------------------------------------------------------------

struct DesignFlattener<'a> {
    ctx: &'a Context,
    prog: FlatProgram,
    cell_index: HashMap<String, CellIdx>,
    /// Pending drivers per destination, in push order.
    drivers: HashMap<PortIdx, Vec<(FlatAtom, GuardIdx)>>,
    /// Destinations in first-seen order, for deterministic node layout.
    driver_order: Vec<PortIdx>,
    /// Hash-consing table: structurally identical guard subtrees (the
    /// FSM-state comparisons lowering stamps onto every assignment of a
    /// state) share one arena node, so the engine's per-cycle guard memo
    /// evaluates each distinct subtree once.
    cons: HashMap<FlatGuard, GuardIdx>,
}

struct DeclaredPortResolver<'a> {
    ports: &'a super::IndexedMap<PortIdx, PortData>,
    map: &'a HashMap<Id, PortIdx>,
    prim: &'a str,
}

impl PortResolver for DeclaredPortResolver<'_> {
    fn port(&mut self, name: &str) -> SimResult<PortIdx> {
        self.map.get(&Id::new(name)).copied().ok_or_else(|| {
            SimError::Elaboration(format!("primitive `{}` missing port `{name}`", self.prim))
        })
    }

    fn width(&self, port: PortIdx) -> u32 {
        self.ports[port].width
    }
}

fn resolve_port(
    port: &PortRef,
    cell_ports: &HashMap<Id, HashMap<Id, PortIdx>>,
    this_ports: &HashMap<Id, PortIdx>,
    name: Id,
) -> SimResult<PortIdx> {
    match port.parent {
        PortParent::Cell(c) => cell_ports
            .get(&c)
            .and_then(|m| m.get(&port.port))
            .copied()
            .ok_or_else(|| SimError::Elaboration(format!("unresolved port `{port}` in `{name}`"))),
        PortParent::This => this_ports.get(&port.port).copied().ok_or_else(|| {
            SimError::Elaboration(format!("unresolved this-port `{port}` in `{name}`"))
        }),
        PortParent::Group(_) => Err(SimError::Elaboration(format!(
            "hole `{port}` survives in lowered component `{name}`"
        ))),
    }
}

impl DesignFlattener<'_> {
    fn alloc(&mut self, width: u32, path: String) -> PortIdx {
        self.prog.ports.push(PortData { width, path })
    }

    fn elaborate_component(
        &mut self,
        name: Id,
        this_ports: &HashMap<Id, PortIdx>,
        prefix: &str,
    ) -> SimResult<()> {
        let comp = self
            .ctx
            .components
            .get(name)
            .ok_or_else(|| SimError::Elaboration(format!("undefined component `{name}`")))?;
        if !comp.groups.is_empty() || !comp.control.is_empty() {
            return Err(SimError::Elaboration(format!(
                "component `{name}` still has groups/control; run the lowering \
                 pipeline first (or use the interpreter)"
            )));
        }

        // Allocate cell ports; recurse into subcomponents, whose `this`
        // ports alias the cell's slots.
        let mut cell_ports: HashMap<Id, HashMap<Id, PortIdx>> = HashMap::new();
        for cell in comp.cells.iter() {
            let mut map = HashMap::new();
            for pd in &cell.ports {
                let idx = self.alloc(pd.width, format!("{prefix}{}.{}", cell.name, pd.name));
                map.insert(pd.name, idx);
            }
            match &cell.prototype {
                CellType::Primitive {
                    name: prim_name,
                    params,
                } => {
                    let path = format!("{prefix}{}", cell.name);
                    let (kind, state) = {
                        let mut r = DeclaredPortResolver {
                            ports: &self.prog.ports,
                            map: &map,
                            prim: prim_name.as_str(),
                        };
                        instantiate_primitive(prim_name.as_str(), params, &mut r)?
                    };
                    let ci = self.prog.cells.push(FlatCell {
                        path: path.clone(),
                        kind,
                    });
                    self.prog.states.push(state);
                    self.cell_index.insert(path, ci);
                }
                CellType::Component { name: child } => {
                    let child_prefix = format!("{prefix}{}.", cell.name);
                    self.elaborate_component(*child, &map, &child_prefix)?;
                }
            }
            cell_ports.insert(cell.name, map);
        }

        // Resolve assignments into pending driver lists.
        for asgn in &comp.continuous {
            let dst = resolve_port(&asgn.dst, &cell_ports, this_ports, name)?;
            let src = match &asgn.src {
                Atom::Port(p) => FlatAtom::Port(resolve_port(p, &cell_ports, this_ports, name)?),
                Atom::Const { val, .. } => FlatAtom::Const(*val),
            };
            let guard = self.intern_guard(&asgn.guard, &cell_ports, this_ports, name)?;
            let entry = self.drivers.entry(dst).or_default();
            if entry.is_empty() {
                self.driver_order.push(dst);
            }
            entry.push((src, guard));
        }
        Ok(())
    }

    fn intern_guard(
        &mut self,
        guard: &Guard,
        cell_ports: &HashMap<Id, HashMap<Id, PortIdx>>,
        this_ports: &HashMap<Id, PortIdx>,
        name: Id,
    ) -> SimResult<GuardIdx> {
        let atom = |a: &Atom| -> SimResult<FlatAtom> {
            Ok(match a {
                Atom::Port(p) => FlatAtom::Port(resolve_port(p, cell_ports, this_ports, name)?),
                Atom::Const { val, .. } => FlatAtom::Const(*val),
            })
        };
        let node = match guard {
            Guard::True => return Ok(self.prog.true_guard()),
            Guard::Port(p) => FlatGuard::Port(resolve_port(p, cell_ports, this_ports, name)?),
            Guard::Not(g) => FlatGuard::Not(self.intern_guard(g, cell_ports, this_ports, name)?),
            Guard::And(a, b) => FlatGuard::And(
                self.intern_guard(a, cell_ports, this_ports, name)?,
                self.intern_guard(b, cell_ports, this_ports, name)?,
            ),
            Guard::Or(a, b) => FlatGuard::Or(
                self.intern_guard(a, cell_ports, this_ports, name)?,
                self.intern_guard(b, cell_ports, this_ports, name)?,
            ),
            Guard::Comp(op, l, r) => FlatGuard::Comp(*op, atom(l)?, atom(r)?),
        };
        // Hash-consing: children are interned before parents, so equal
        // subtrees hit the same child indices and dedup structurally.
        let prog = &mut self.prog;
        Ok(*self
            .cons
            .entry(node)
            .or_insert_with(|| prog.guards.push(node)))
    }
}

/// Elaborate the lowered hierarchy rooted at component `top` into a flat
/// design with topologically sorted evaluation nodes.
///
/// # Errors
///
/// Returns [`SimError::Elaboration`] for un-lowered input, undefined
/// names, or unmodeled primitives; [`SimError::CombinationalLoop`] when
/// the assignment graph is cyclic.
pub fn flatten_design(ctx: &Context, top: &str) -> SimResult<FlatDesign> {
    let top_id = Id::new(top);
    let top_comp = ctx
        .components
        .get(top_id)
        .ok_or_else(|| SimError::Elaboration(format!("no component `{top}`")))?;

    let mut f = DesignFlattener {
        ctx,
        prog: FlatProgram::new(),
        cell_index: HashMap::new(),
        drivers: HashMap::new(),
        driver_order: Vec::new(),
        cons: HashMap::new(),
    };

    // Top-level interface ports.
    let mut this_ports = HashMap::new();
    let mut top_inputs = HashMap::new();
    for pd in &top_comp.signature {
        let idx = f.alloc(pd.width, format!("{top}.{}", pd.name));
        this_ports.insert(pd.name, idx);
        if pd.direction == Direction::Input {
            top_inputs.insert(pd.name.to_string(), idx);
        }
    }
    let top_go = this_ports[&Id::new("go")];
    let top_done = this_ports[&Id::new("done")];

    f.elaborate_component(top_id, &this_ports, "")?;

    // Pack each destination's drivers into a contiguous assignment range
    // and build the evaluation nodes.
    let mut nodes = Vec::new();
    for dst in std::mem::take(&mut f.driver_order) {
        let asgns = f.drivers.remove(&dst).expect("ordered driver exists");
        let start = f.prog.assigns.next_idx();
        for (src, guard) in asgns {
            f.prog.assigns.push(FlatAssign { dst, src, guard });
        }
        nodes.push(Node::Drivers {
            dst,
            asgns: IndexRange::new(start, f.prog.assigns.next_idx()),
        });
    }
    for (ci, cell) in f.prog.cells.enumerate() {
        match cell.kind {
            FlatCellKind::Comb { .. } => nodes.push(Node::Comb(ci)),
            FlatCellKind::Mem { .. } => nodes.push(Node::MemRead(ci)),
            _ => {}
        }
    }

    let order = topo_sort(&nodes, &f.prog)?;
    let mut nodes: Vec<Node> = order.into_iter().map(|i| nodes[i].clone()).collect();

    // Repack assignments into *evaluation* order. The packing above is
    // destination-discovery order; the settle loop walks nodes in topo
    // order, so without this every cycle hops around the arena. After
    // repacking, the per-cycle sweep reads assignments as one forward
    // pass. Guards stay in interning order: hash-consing shares subtrees
    // across assignments, so duplicating them per use would undo the
    // engine's per-cycle guard memo.
    let mut assigns = IndexedMap::new();
    for node in &mut nodes {
        if let Node::Drivers { asgns, .. } = node {
            let start = assigns.next_idx();
            for ai in asgns.iter() {
                assigns.push(f.prog.assigns[ai]);
            }
            *asgns = IndexRange::new(start, assigns.next_idx());
        }
    }
    f.prog.assigns = assigns;

    Ok(FlatDesign {
        prog: f.prog,
        nodes,
        top_go,
        top_done,
        top_inputs,
        cell_index: f.cell_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::FlatIdx;
    use calyx_core::ir::parse_context;
    use calyx_core::passes;

    const COUNTER: &str = r#"component main() -> () {
          cells { i = std_reg(8); lt = std_lt(8); add = std_add(8); }
          wires {
            group cond { lt.left = i.out; lt.right = 8'd5; cond[done] = 1'd1; }
            group incr {
              add.left = i.out; add.right = 8'd1;
              i.in = add.out; i.write_en = 1'd1;
              incr[done] = i.done;
            }
          }
          control { while lt.out with cond { incr; } }
        }"#;

    #[test]
    fn control_flattening_builds_dense_arenas() {
        let ctx = parse_context(COUNTER).unwrap();
        let flat = flatten_control(&ctx, "main").unwrap();
        assert_eq!(flat.prog.cells.len(), 3);
        assert_eq!(flat.groups.len(), 2);
        // continuous block is empty; both groups own contiguous ranges.
        assert!(flat.continuous.is_empty());
        let total: usize = flat.groups.iter().map(|g| g.assigns.len()).sum();
        assert_eq!(flat.prog.assigns.len(), total);
        // Each group records exactly one done write, inside its own range.
        for g in flat.groups.iter() {
            assert_eq!(g.done_writes.len(), 1);
            let dw = g.done_writes[0];
            assert!(g.assigns.iter().any(|ai| ai == dw));
        }
        // The control tree flattened to while(enable).
        assert!(matches!(flat.ctrl[flat.root], CtrlNode::While { .. }));
    }

    #[test]
    fn design_flattening_topo_sorts_nodes() {
        let mut ctx = parse_context(COUNTER).unwrap();
        passes::lower_pipeline().run(&mut ctx).unwrap();
        let flat = flatten_design(&ctx, "main").unwrap();
        // Every driven port appears in exactly one Drivers node, and the
        // order respects combinational dependencies: a node reading port p
        // runs after the node producing p.
        let mut produced_at = vec![usize::MAX; flat.prog.ports.len()];
        for (i, node) in flat.nodes.iter().enumerate() {
            if let Node::Drivers { dst, .. } = node {
                assert_eq!(
                    produced_at[dst.index()],
                    usize::MAX,
                    "duplicate driver node"
                );
                produced_at[dst.index()] = i;
            }
            if let Node::Comb(c) = node {
                if let FlatCellKind::Comb { out, .. } = flat.prog.cells[*c].kind {
                    produced_at[out.index()] = i;
                }
            }
        }
        for (i, node) in flat.nodes.iter().enumerate() {
            if let Node::Drivers { asgns, .. } = node {
                for ai in asgns.iter() {
                    if let FlatAtom::Port(p) = flat.prog.assigns[ai].src {
                        let at = produced_at[p.index()];
                        if at != usize::MAX {
                            assert!(at < i, "value read before production");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn unknown_ports_get_slots_instead_of_errors() {
        // The interpreter's historical behavior: reads of never-driven,
        // never-declared ports yield zero rather than an elaboration error.
        let ctx = parse_context(
            r#"component main() -> () {
              cells { r = std_reg(8); }
              wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
              control { g; }
            }"#,
        )
        .unwrap();
        let flat = flatten_control(&ctx, "main").unwrap();
        // go + signature + r's declared ports + the group hole all have slots.
        assert!(flat.prog.ports.len() >= 5);
        assert_eq!(flat.groups[GroupIdx::new(0)].done_writes.len(), 1);
    }
}
