//! Typed index newtypes and dense arena containers.
//!
//! Every entity in the flat simulation IR lives in a contiguous `Vec` and
//! is referred to by a 32-bit typed index. The newtypes make it a compile
//! error to index the port arena with a cell index, while keeping the
//! runtime representation a bare `u32` — an [`IndexRange`] is eight bytes,
//! a `FlatAtom` fits in a word, and iterating an arena is a linear scan.

use std::marker::PhantomData;

/// A typed 32-bit index into one arena.
pub trait FlatIdx: Copy + Eq {
    /// Wrap a raw position.
    fn new(idx: usize) -> Self;
    /// The raw position.
    fn index(self) -> usize;
}

macro_rules! flat_idx {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl FlatIdx for $name {
            fn new(idx: usize) -> Self {
                debug_assert!(idx <= u32::MAX as usize, "arena overflow");
                $name(idx as u32)
            }

            fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

flat_idx!(
    /// Index into the port arena.
    PortIdx
);
flat_idx!(
    /// Index into the cell (primitive-instance) arena.
    CellIdx
);
flat_idx!(
    /// Index into the group arena.
    GroupIdx
);
flat_idx!(
    /// Index into the assignment arena.
    AssignIdx
);
flat_idx!(
    /// Index into the flattened control-node arena.
    CtrlIdx
);
flat_idx!(
    /// Index into the interned guard-node arena.
    GuardIdx
);

/// A dense arena indexed by a typed [`FlatIdx`].
#[derive(Debug, Clone)]
pub struct IndexedMap<I, T> {
    data: Vec<T>,
    _marker: PhantomData<I>,
}

impl<I: FlatIdx, T> IndexedMap<I, T> {
    /// An empty arena.
    pub fn new() -> Self {
        IndexedMap {
            data: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// Append a value, returning its index.
    pub fn push(&mut self, value: T) -> I {
        let idx = I::new(self.data.len());
        self.data.push(value);
        idx
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the arena holds nothing.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The index the next `push` will return.
    pub fn next_idx(&self) -> I {
        I::new(self.data.len())
    }

    /// Entry lookup that tolerates out-of-range indices.
    pub fn get(&self, idx: I) -> Option<&T> {
        self.data.get(idx.index())
    }

    /// Iterate over the stored values in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Iterate over `(index, value)` pairs.
    pub fn enumerate(&self) -> impl Iterator<Item = (I, &T)> {
        self.data.iter().enumerate().map(|(i, t)| (I::new(i), t))
    }

    /// All valid indices, in order.
    pub fn keys(&self) -> impl Iterator<Item = I> {
        (0..self.data.len()).map(I::new)
    }

    /// The contiguous slice covered by `range` — lets hot loops walk a
    /// range without per-element index conversions.
    pub fn range(&self, range: IndexRange<I>) -> &[T] {
        &self.data[range.start as usize..range.end as usize]
    }
}

impl<I: FlatIdx, T> Default for IndexedMap<I, T> {
    fn default() -> Self {
        IndexedMap::new()
    }
}

impl<I: FlatIdx, T> std::ops::Index<I> for IndexedMap<I, T> {
    type Output = T;

    fn index(&self, idx: I) -> &T {
        &self.data[idx.index()]
    }
}

impl<I: FlatIdx, T> std::ops::IndexMut<I> for IndexedMap<I, T> {
    fn index_mut(&mut self, idx: I) -> &mut T {
        &mut self.data[idx.index()]
    }
}

/// A half-open, contiguous range of typed indices — how the flat IR
/// represents "the assignments of group `g`" without a side `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexRange<I> {
    start: u32,
    end: u32,
    _marker: PhantomData<I>,
}

impl<I: FlatIdx> IndexRange<I> {
    /// The range `[start, end)`.
    pub fn new(start: I, end: I) -> Self {
        debug_assert!(start.index() <= end.index());
        IndexRange {
            start: start.index() as u32,
            end: end.index() as u32,
            _marker: PhantomData,
        }
    }

    /// An empty range.
    pub fn empty() -> Self {
        IndexRange {
            start: 0,
            end: 0,
            _marker: PhantomData,
        }
    }

    /// Number of indices covered.
    pub fn len(self) -> usize {
        (self.end - self.start) as usize
    }

    /// True when the range covers nothing.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Iterate the covered indices in order.
    pub fn iter(self) -> impl Iterator<Item = I> {
        (self.start..self.end).map(|i| I::new(i as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_push_and_index_round_trip() {
        let mut map: IndexedMap<PortIdx, u32> = IndexedMap::new();
        let a = map.push(10);
        let b = map.push(20);
        assert_eq!(map[a], 10);
        assert_eq!(map[b], 20);
        assert_eq!(map.len(), 2);
        assert_eq!(map.keys().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn index_range_iterates_half_open() {
        let mut map: IndexedMap<AssignIdx, char> = IndexedMap::new();
        let start = map.next_idx();
        map.push('a');
        map.push('b');
        let end = map.next_idx();
        map.push('c');
        let range = IndexRange::new(start, end);
        assert_eq!(range.len(), 2);
        let vals: Vec<char> = range.iter().map(|i| map[i]).collect();
        assert_eq!(vals, vec!['a', 'b']);
        assert!(IndexRange::<AssignIdx>::empty().is_empty());
    }

    #[test]
    fn typed_indices_are_word_sized() {
        assert_eq!(std::mem::size_of::<PortIdx>(), 4);
        assert_eq!(std::mem::size_of::<IndexRange<AssignIdx>>(), 8);
    }
}
