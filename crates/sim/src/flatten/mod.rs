//! Flat, arena-indexed simulation IR.
//!
//! Both simulation engines used to walk the tree-shaped
//! [`calyx_core::ir`] structures directly: the interpreter kept port
//! valuations in a `HashMap<PortRef, u64>` (re-hashing every port read)
//! and the RTL engine grew its own ad-hoc `usize` arena with `Box`ed guard
//! trees. This module is the shared replacement: a one-time lowering of a
//! [`Context`](calyx_core::ir::Context) into dense arenas, after which
//! every simulated cycle is pure array indexing.
//!
//! The building blocks (see [`index`]):
//!
//! - **Typed indices** — [`PortIdx`], [`CellIdx`], [`GroupIdx`],
//!   [`AssignIdx`], [`CtrlIdx`], [`GuardIdx`] are 32-bit newtypes into
//!   per-entity arenas, so mixing them up is a type error and a port read
//!   is `values[p.index()]` instead of a hash lookup.
//! - **Interned guards** — guard expressions live in one arena of
//!   [`FlatGuard`] nodes referring to children by [`GuardIdx`]; no `Box`
//!   chains, and structurally shared subtrees cost nothing extra.
//! - **Assignment tables** — assignments are stored contiguously grouped
//!   by owner: the continuous block first, then each group's block, so
//!   "the active assignment set" is a handful of [`IndexRange`]s.
//! - **Flat control** — [`CtrlNode`]s in an arena with child indices
//!   replace the interpreter's recursive `StmtState` clone-on-advance
//!   machinery.
//!
//! Two entry points produce engine-specific views over the same arenas:
//! [`flatten_control`] keeps groups and the control tree for the
//! reference interpreter, while [`flatten_design`] elaborates a lowered
//! hierarchy in place (a cell's ports and the child component's `this`
//! ports are the same arena slots) and topologically sorts the resulting
//! driver/primitive nodes for the single-sweep RTL engine.

mod build;
pub mod index;

pub use build::{flatten_control, flatten_design};
pub use index::{
    AssignIdx, CellIdx, CtrlIdx, FlatIdx, GroupIdx, GuardIdx, IndexRange, IndexedMap, PortIdx,
};

use crate::error::{SimError, SimResult};
use crate::prim::{CombOp, PrimState};
use calyx_core::ir::{CompOp, Id};
use std::collections::HashMap;

/// A flattened atom: a port slot or a literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlatAtom {
    /// Read the port's settled value.
    Port(PortIdx),
    /// A constant.
    Const(u64),
}

/// One interned guard node; children are arena indices, not boxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlatGuard {
    /// Always true.
    True,
    /// True when the port is non-zero.
    Port(PortIdx),
    /// Negation.
    Not(GuardIdx),
    /// Conjunction.
    And(GuardIdx, GuardIdx),
    /// Disjunction.
    Or(GuardIdx, GuardIdx),
    /// An arithmetic comparison between two atoms.
    Comp(CompOp, FlatAtom, FlatAtom),
}

/// A guarded assignment `dst = guard ? src`.
#[derive(Debug, Clone, Copy)]
pub struct FlatAssign {
    /// Destination port slot.
    pub dst: PortIdx,
    /// Value source.
    pub src: FlatAtom,
    /// Activation guard.
    pub guard: GuardIdx,
}

/// Static description of one port slot.
#[derive(Debug, Clone)]
pub struct PortData {
    /// Bit width (used for masking in the RTL engine).
    pub width: u32,
    /// Diagnostic name: `cell.port`, `group[done]`, or a hierarchical
    /// `parent.child.port` path depending on the flattening mode.
    pub path: String,
}

/// How a primitive instance connects to the port arena.
#[derive(Debug, Clone)]
pub enum FlatCellKind {
    /// A combinational operator.
    Comb {
        /// The operation.
        op: CombOp,
        /// Left (or sole) input.
        left: PortIdx,
        /// Right input for binary operators.
        right: Option<PortIdx>,
        /// Output.
        out: PortIdx,
        /// Declared input width.
        in_width: u32,
        /// Declared output width.
        out_width: u32,
    },
    /// A `std_reg`.
    Reg {
        /// Data input.
        input: PortIdx,
        /// Write enable.
        write_en: PortIdx,
        /// Registered output.
        out: PortIdx,
        /// One-cycle done pulse.
        done: PortIdx,
    },
    /// A `std_mem_d1`/`d2`/`d3`.
    Mem {
        /// Address ports, one per dimension.
        addrs: Vec<PortIdx>,
        /// Write data.
        write_data: PortIdx,
        /// Write enable.
        write_en: PortIdx,
        /// Combinational read port.
        read_data: PortIdx,
        /// One-cycle done pulse.
        done: PortIdx,
    },
    /// A latency-sensitive unit (`std_mult_pipe`, `std_div_pipe`,
    /// `std_sqrt`).
    Unit {
        /// Left operand (aliases the sole input for `std_sqrt`).
        left: PortIdx,
        /// Right operand (aliases the sole input for `std_sqrt`).
        right: PortIdx,
        /// Start signal.
        go: PortIdx,
        /// Primary output.
        out: PortIdx,
        /// Secondary output (`out_remainder` for division).
        out2: Option<PortIdx>,
        /// Completion signal.
        done: PortIdx,
    },
}

/// One primitive instance in the flat design.
#[derive(Debug, Clone)]
pub struct FlatCell {
    /// Diagnostic path (`cell` or hierarchical `parent.child`).
    pub path: String,
    /// Port connections and behavior.
    pub kind: FlatCellKind,
}

/// A group flattened to its assignment range.
#[derive(Debug, Clone)]
pub struct FlatGroup {
    /// Group name (diagnostics only).
    pub name: Id,
    /// The group's assignments, contiguous in the assignment arena.
    pub assigns: IndexRange<AssignIdx>,
    /// The subset of `assigns` writing the group's `done` hole.
    pub done_writes: Vec<AssignIdx>,
}

/// A flattened control-tree node. Children are arena indices; the
/// per-node *runtime* state (sequence position, condition phase, …) lives
/// in the interpreter, keeping this description immutable and shareable.
#[derive(Debug, Clone)]
pub enum CtrlNode {
    /// No work.
    Empty,
    /// Run one group until its `done` hole rises.
    Enable {
        /// The enabled group.
        group: GroupIdx,
    },
    /// Run children in order.
    Seq {
        /// Child nodes.
        children: Vec<CtrlIdx>,
    },
    /// Run children concurrently.
    Par {
        /// Child nodes.
        children: Vec<CtrlIdx>,
    },
    /// Evaluate `cond`, sample `port`, run one branch.
    If {
        /// The sampled condition port.
        port: PortIdx,
        /// The `with` group evaluated during the condition phase.
        cond: Option<GroupIdx>,
        /// Taken when `port` is non-zero.
        tbranch: CtrlIdx,
        /// Taken when `port` is zero.
        fbranch: CtrlIdx,
    },
    /// Evaluate `cond`, sample `port`, loop the body while non-zero.
    While {
        /// The sampled condition port.
        port: PortIdx,
        /// The `with` group evaluated during the condition phase.
        cond: Option<GroupIdx>,
        /// Loop body.
        body: CtrlIdx,
    },
}

/// The arenas shared by both engines.
#[derive(Debug, Clone)]
pub struct FlatProgram {
    /// All port slots.
    pub ports: IndexedMap<PortIdx, PortData>,
    /// Interned guard nodes. Index 0 is always [`FlatGuard::True`].
    pub guards: IndexedMap<GuardIdx, FlatGuard>,
    /// All assignments, grouped contiguously by owner.
    pub assigns: IndexedMap<AssignIdx, FlatAssign>,
    /// All primitive instances.
    pub cells: IndexedMap<CellIdx, FlatCell>,
    /// Initial behavioral state, aligned with `cells` (combinational
    /// cells carry a zero-width placeholder).
    pub states: IndexedMap<CellIdx, PrimState>,
}

impl FlatProgram {
    fn new() -> Self {
        let mut guards = IndexedMap::new();
        let t = guards.push(FlatGuard::True);
        debug_assert_eq!(t, GuardIdx::new(0));
        FlatProgram {
            ports: IndexedMap::new(),
            guards,
            assigns: IndexedMap::new(),
            cells: IndexedMap::new(),
            states: IndexedMap::new(),
        }
    }

    /// The interned [`FlatGuard::True`] node.
    pub fn true_guard(&self) -> GuardIdx {
        GuardIdx::new(0)
    }
}

/// Flat view for the reference interpreter: shared arenas plus groups and
/// the flattened control tree of a single component.
#[derive(Debug, Clone)]
pub struct FlatControl {
    /// Shared arenas.
    pub prog: FlatProgram,
    /// The component's name (diagnostics).
    pub comp: Id,
    /// The component's `go` port slot.
    pub go: PortIdx,
    /// The continuous-assignment block.
    pub continuous: IndexRange<AssignIdx>,
    /// All groups.
    pub groups: IndexedMap<GroupIdx, FlatGroup>,
    /// The flattened control tree.
    pub ctrl: IndexedMap<CtrlIdx, CtrlNode>,
    /// Root control node.
    pub root: CtrlIdx,
    /// Cell-name lookup for state inspection.
    pub cell_index: HashMap<Id, CellIdx>,
}

/// One evaluation step of the RTL engine's single combinational sweep.
#[derive(Debug, Clone)]
pub enum Node {
    /// All assignments driving one port.
    Drivers {
        /// The driven port.
        dst: PortIdx,
        /// Its drivers, contiguous in the assignment arena.
        asgns: IndexRange<AssignIdx>,
    },
    /// A combinational primitive's output function.
    Comb(CellIdx),
    /// A memory's combinational read port.
    MemRead(CellIdx),
}

/// Flat view for the RTL engine: shared arenas plus the topologically
/// sorted evaluation nodes of an elaborated (lowered) hierarchy.
#[derive(Debug, Clone)]
pub struct FlatDesign {
    /// Shared arenas.
    pub prog: FlatProgram,
    /// Evaluation nodes in topological order.
    pub nodes: Vec<Node>,
    /// The top component's `go` port.
    pub top_go: PortIdx,
    /// The top component's `done` port.
    pub top_done: PortIdx,
    /// Top-level input ports by name.
    pub top_inputs: HashMap<String, PortIdx>,
    /// Hierarchical-path lookup for state inspection.
    pub cell_index: HashMap<String, CellIdx>,
}

/// Evaluate an atom against the dense valuation.
#[inline]
pub fn eval_atom(atom: FlatAtom, values: &[u64]) -> u64 {
    match atom {
        FlatAtom::Port(p) => values[p.index()],
        FlatAtom::Const(c) => c,
    }
}

/// Evaluate an interned guard against the dense valuation.
#[inline]
pub fn eval_guard(guards: &IndexedMap<GuardIdx, FlatGuard>, g: GuardIdx, values: &[u64]) -> bool {
    match guards[g] {
        FlatGuard::True => true,
        FlatGuard::Port(p) => values[p.index()] != 0,
        FlatGuard::Not(g) => !eval_guard(guards, g, values),
        FlatGuard::And(a, b) => eval_guard(guards, a, values) && eval_guard(guards, b, values),
        FlatGuard::Or(a, b) => eval_guard(guards, a, values) || eval_guard(guards, b, values),
        FlatGuard::Comp(op, l, r) => op.eval(eval_atom(l, values), eval_atom(r, values)),
    }
}

/// Collect every port an interned guard reads.
pub fn guard_reads(guards: &IndexedMap<GuardIdx, FlatGuard>, g: GuardIdx, out: &mut Vec<PortIdx>) {
    match guards[g] {
        FlatGuard::True => {}
        FlatGuard::Port(p) => out.push(p),
        FlatGuard::Not(g) => guard_reads(guards, g, out),
        FlatGuard::And(a, b) | FlatGuard::Or(a, b) => {
            guard_reads(guards, a, out);
            guard_reads(guards, b, out);
        }
        FlatGuard::Comp(_, l, r) => {
            for a in [l, r] {
                if let FlatAtom::Port(p) = a {
                    out.push(p);
                }
            }
        }
    }
}

/// Kahn's algorithm over evaluation nodes; reports a combinational loop
/// by listing (up to eight of) the paths still unresolved.
pub fn topo_sort(nodes: &[Node], prog: &FlatProgram) -> SimResult<Vec<usize>> {
    // Which node produces each port?
    let mut producer: Vec<Option<u32>> = vec![None; prog.ports.len()];
    for (i, node) in nodes.iter().enumerate() {
        let out = match node {
            Node::Drivers { dst, .. } => Some(*dst),
            Node::Comb(c) => match &prog.cells[*c].kind {
                FlatCellKind::Comb { out, .. } => Some(*out),
                _ => None,
            },
            Node::MemRead(c) => match &prog.cells[*c].kind {
                FlatCellKind::Mem { read_data, .. } => Some(*read_data),
                _ => None,
            },
        };
        if let Some(p) = out {
            producer[p.index()] = Some(i as u32);
        }
    }

    let reads_of = |node: &Node, reads: &mut Vec<PortIdx>| match node {
        Node::Drivers { asgns, .. } => {
            for ai in asgns.iter() {
                let a = &prog.assigns[ai];
                if let FlatAtom::Port(p) = a.src {
                    reads.push(p);
                }
                guard_reads(&prog.guards, a.guard, reads);
            }
        }
        Node::Comb(c) => {
            if let FlatCellKind::Comb { left, right, .. } = &prog.cells[*c].kind {
                reads.push(*left);
                if let Some(r) = right {
                    reads.push(*r);
                }
            }
        }
        Node::MemRead(c) => {
            if let FlatCellKind::Mem { addrs, .. } = &prog.cells[*c].kind {
                reads.extend(addrs.iter().copied());
            }
        }
    };

    let mut in_degree = vec![0usize; nodes.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut reads = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        reads.clear();
        reads_of(node, &mut reads);
        for &port in &reads {
            if let Some(dep) = producer[port.index()] {
                dependents[dep as usize].push(i);
                in_degree[i] += 1;
            }
        }
    }

    let mut queue: Vec<usize> = (0..nodes.len()).filter(|&i| in_degree[i] == 0).collect();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(i) = queue.pop() {
        order.push(i);
        for &d in &dependents[i] {
            in_degree[d] -= 1;
            if in_degree[d] == 0 {
                queue.push(d);
            }
        }
    }
    if order.len() != nodes.len() {
        let stuck: Vec<String> = nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| in_degree[*i] > 0)
            .map(|(_, n)| match n {
                Node::Drivers { dst, .. } => prog.ports[*dst].path.clone(),
                Node::Comb(c) | Node::MemRead(c) => prog.cells[*c].path.clone(),
            })
            .take(8)
            .collect();
        return Err(SimError::CombinationalLoop(stuck));
    }
    Ok(order)
}
