//! Simulation errors.

use std::fmt;

/// Errors surfaced by elaboration or simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The design could not be elaborated (undefined names, un-lowered
    /// components handed to the RTL engine, unsupported primitives).
    Elaboration(String),
    /// Two assignments drove the same port in the same cycle — the unique
    /// driver requirement of the IL (paper §3.2).
    DriverConflict {
        /// Human-readable path of the doubly-driven port.
        port: String,
        /// Cycle at which the conflict occurred.
        cycle: u64,
    },
    /// The combinational dependency graph has a cycle.
    CombinationalLoop(Vec<String>),
    /// The design did not raise `done` within the cycle budget.
    Timeout {
        /// The exhausted budget.
        max_cycles: u64,
    },
    /// A memory was written outside its bounds.
    OutOfBounds {
        /// Path of the memory cell.
        memory: String,
        /// The offending flat address.
        address: u64,
        /// The memory's size.
        size: u64,
    },
    /// A state-inspection call referenced a missing cell.
    UnknownCell(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Elaboration(msg) => write!(f, "elaboration failed: {msg}"),
            SimError::DriverConflict { port, cycle } => {
                write!(f, "multiple drivers active on `{port}` at cycle {cycle}")
            }
            SimError::CombinationalLoop(ports) => {
                write!(f, "combinational loop through: {}", ports.join(" -> "))
            }
            SimError::Timeout { max_cycles } => {
                write!(f, "design did not complete within {max_cycles} cycles")
            }
            SimError::OutOfBounds {
                memory,
                address,
                size,
            } => write!(
                f,
                "write to `{memory}` at address {address} outside size {size}"
            ),
            SimError::UnknownCell(path) => write!(f, "no such cell: `{path}`"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience alias.
pub type SimResult<T> = Result<T, SimError>;
