//! Simulation infrastructure for Calyx programs.
//!
//! Two engines with different purposes:
//!
//! - [`rtl`]: a cycle-accurate simulator for *lowered* programs (flat
//!   guarded assignments, no control). This is the repository's substitute
//!   for Verilator: the lowered form corresponds 1:1 to the emitted
//!   SystemVerilog, so the cycle counts reported here are the counts the
//!   paper measures in §7. Each cycle performs a combinational settling pass
//!   over a topologically-sorted dataflow graph (rejecting combinational
//!   loops and multi-driver conflicts) followed by a synchronous state
//!   update.
//!
//! - [`interp`]: a reference interpreter that executes the *control tree*
//!   directly, before any lowering — an executable semantics for the IL in
//!   the spirit of Calyx's Cider debugger. Cycle counts differ from RTL
//!   (the interpreter has no FSM overhead), but architectural state
//!   (memories, registers) must agree; the differential tests in
//!   `tests/` exploit this as a compiler-correctness oracle.
//!
//! Both engines share the primitive behavioral models in [`prim`] and run
//! over the dense arena-indexed IR built once per design by [`flatten`]:
//! typed indices into contiguous `Vec` storage for ports, cells, guards,
//! assignments, and control nodes, so each simulated cycle is pure array
//! indexing. The pre-flatten tree-walking engines survive unchanged in
//! [`legacy`] as differential oracles and benchmark baselines.

pub mod error;
pub mod flatten;
pub mod interp;
#[doc(hidden)]
pub mod legacy;
pub mod prim;
pub mod report;
pub mod rtl;

pub use error::{SimError, SimResult};
pub use report::{write_state_report, StateSource};
pub use rtl::{RunStats, Simulator};
