//! Final-state reports shared by the simulation backends.
//!
//! Both engines — the cycle-accurate [`Simulator`]
//! and the reference [`Interpreter`] — expose
//! architectural state (memories and registers) through engine-specific
//! accessors. [`StateSource`] unifies them behind one read-only view so
//! that a single [`write_state_report`] produces the `futil -b sim` /
//! `futil -b interp` output format:
//!
//! ```text
//! done in 23 cycles
//! i = 5
//! acc = 10
//! ```
//!
//! One line per stateful cell of the inspected component, memories first
//! preference (a cell is reported as a memory when the engine knows it as
//! one, otherwise as a register; combinational cells are skipped).

use crate::error::SimResult;
use crate::interp::Interpreter;
use crate::rtl::{RunStats, Simulator};
use calyx_core::ir::Component;
use std::io::{self, Write};

/// Read-only architectural state of a finished simulation, keyed by cell
/// name within the inspected component.
pub trait StateSource {
    /// The full contents of memory cell `cell`.
    ///
    /// # Errors
    ///
    /// Returns the engine's lookup error when `cell` is not a memory.
    fn memory(&self, cell: &str) -> SimResult<Vec<u64>>;

    /// The value held by register cell `cell`.
    ///
    /// # Errors
    ///
    /// Returns the engine's lookup error when `cell` is not a register.
    fn register(&self, cell: &str) -> SimResult<u64>;
}

impl StateSource for Simulator {
    fn memory(&self, cell: &str) -> SimResult<Vec<u64>> {
        Simulator::memory(self, &[cell])
    }

    fn register(&self, cell: &str) -> SimResult<u64> {
        Simulator::register_value(self, &[cell])
    }
}

impl StateSource for Interpreter {
    fn memory(&self, cell: &str) -> SimResult<Vec<u64>> {
        Interpreter::memory(self, cell)
    }

    fn register(&self, cell: &str) -> SimResult<u64> {
        Interpreter::register_value(self, cell)
    }
}

impl StateSource for crate::legacy::rtl::Simulator {
    fn memory(&self, cell: &str) -> SimResult<Vec<u64>> {
        crate::legacy::rtl::Simulator::memory(self, &[cell])
    }

    fn register(&self, cell: &str) -> SimResult<u64> {
        crate::legacy::rtl::Simulator::register_value(self, &[cell])
    }
}

impl StateSource for crate::legacy::interp::Interpreter {
    fn memory(&self, cell: &str) -> SimResult<Vec<u64>> {
        crate::legacy::interp::Interpreter::memory(self, cell)
    }

    fn register(&self, cell: &str) -> SimResult<u64> {
        crate::legacy::interp::Interpreter::register_value(self, cell)
    }
}

/// Write the cycle count and the final architectural state of `comp`'s
/// stateful cells, best-effort: cells the engine does not model as state
/// (adders, comparators, …) are silently skipped.
///
/// # Errors
///
/// Propagates write failures from `out`.
pub fn write_state_report(
    src: &dyn StateSource,
    comp: &Component,
    stats: RunStats,
    out: &mut dyn Write,
) -> io::Result<()> {
    writeln!(out, "done in {} cycles", stats.cycles)?;
    for cell in comp.cells.iter() {
        let name = cell.name.as_str();
        if let Ok(mem) = src.memory(name) {
            writeln!(out, "{name} = {mem:?}")?;
        } else if let Ok(v) = src.register(name) {
            writeln!(out, "{name} = {v}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_core::ir::parse_context;
    use calyx_core::passes;

    const COUNTER: &str = r#"
        component main() -> () {
          cells { r = std_reg(8); }
          wires { group g { r.in = 8'd7; r.write_en = 1'd1; g[done] = r.done; } }
          control { g; }
        }
    "#;

    #[test]
    fn rtl_and_interp_reports_share_one_format() {
        // Interpreter over the control tree.
        let ctx = parse_context(COUNTER).unwrap();
        let mut interp = Interpreter::new(&ctx, "main").unwrap();
        let istats = interp.run(1000).unwrap();
        let mut ibuf = Vec::new();
        write_state_report(&interp, ctx.entry().unwrap(), istats, &mut ibuf).unwrap();
        let ireport = String::from_utf8(ibuf).unwrap();
        assert!(ireport.starts_with("done in "), "{ireport}");
        assert!(ireport.contains("r = 7"), "{ireport}");

        // RTL simulator over the lowered design.
        let mut lowered = parse_context(COUNTER).unwrap();
        passes::lower_pipeline().run(&mut lowered).unwrap();
        let mut sim = Simulator::new(&lowered, "main").unwrap();
        let sstats = sim.run(1000).unwrap();
        let mut sbuf = Vec::new();
        write_state_report(&sim, lowered.entry().unwrap(), sstats, &mut sbuf).unwrap();
        let sreport = String::from_utf8(sbuf).unwrap();
        assert!(sreport.contains("r = 7"), "{sreport}");
    }
}
