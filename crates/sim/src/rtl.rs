//! Cycle-accurate simulation of lowered Calyx programs.
//!
//! The engine flattens a lowered [`Context`] — every component a flat
//! list of guarded assignments — through [`crate::flatten`] into dense
//! arenas and an evaluation graph:
//!
//! - subcomponent instances are elaborated *in place*: a cell's ports and
//!   the inner component's `this` ports are the same arena slots, so
//!   hierarchy costs nothing at simulation time;
//! - all assignments driving the same port form one *driver node*;
//!   combinational primitives and memory read functions form the others;
//! - nodes are topologically sorted once; each simulated cycle is a single
//!   sweep over the sorted nodes followed by a synchronous primitive tick.
//!
//! Unique-driver violations (two active guards on one port) and
//! combinational loops are detected and reported as errors, mirroring what
//! Verilator would flag in the emitted SystemVerilog. The pre-flatten
//! implementation survives as [`crate::legacy::rtl`] and is held to
//! byte-identical output by the differential tests.

use crate::error::{SimError, SimResult};
use crate::flatten::{
    eval_atom, flatten_design, CellIdx, FlatAtom, FlatCellKind, FlatDesign, FlatGuard, FlatIdx,
    GuardIdx, IndexedMap, Node, PortIdx,
};
use crate::prim::{mask, PrimState};
use calyx_core::ir::Context;
use std::collections::HashMap;

/// Result of a completed simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Clock cycles from `go` to (and including) the cycle `done` was
    /// asserted — the metric the paper reports from Verilator.
    pub cycles: u64,
}

/// A cycle-accurate simulator instance.
///
/// See the crate docs for an end-to-end example; typical use is
/// `Simulator::new(&lowered_ctx, "main")`, optional [`Simulator::set_memory`]
/// calls, [`Simulator::run`], then state inspection.
#[derive(Debug)]
pub struct Simulator {
    flat: FlatDesign,
    values: Vec<u64>,
    /// Extra top-level input values to drive each cycle.
    inputs: HashMap<PortIdx, u64>,
    /// Per-guard memo: the settle epoch each guard was last evaluated in.
    /// Guards are hash-consed at flatten time, so the FSM-state comparisons
    /// lowering stamps onto every assignment of a state share one node and
    /// cost one evaluation per cycle instead of one per assignment. Sound
    /// because the topo order includes guard reads: every port a guard
    /// reads is final before any node evaluates it.
    guard_epoch: Vec<u64>,
    /// Memoized guard values, valid when the epoch matches.
    guard_val: Vec<bool>,
}

impl Simulator {
    /// Elaborate the lowered program rooted at component `top`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Elaboration`] for un-lowered input, undefined
    /// names, or unmodeled primitives; [`SimError::CombinationalLoop`] when
    /// the assignment graph is cyclic.
    pub fn new(ctx: &Context, top: &str) -> SimResult<Self> {
        let flat = flatten_design(ctx, top)?;
        let n_ports = flat.prog.ports.len();
        let n_guards = flat.prog.guards.len();
        Ok(Simulator {
            flat,
            values: vec![0; n_ports],
            inputs: HashMap::new(),
            guard_epoch: vec![0; n_guards],
            guard_val: vec![false; n_guards],
        })
    }

    /// Drive a top-level input port to `value` on every subsequent cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] if `top` has no such input.
    pub fn set_input(&mut self, port: &str, value: u64) -> SimResult<()> {
        let idx = *self
            .flat
            .top_inputs
            .get(port)
            .ok_or_else(|| SimError::UnknownCell(format!("top-level input `{port}`")))?;
        self.inputs.insert(idx, value);
        Ok(())
    }

    fn prim_idx(&self, path: &[&str]) -> SimResult<CellIdx> {
        let key = path.join(".");
        self.flat
            .cell_index
            .get(&key)
            .copied()
            .ok_or(SimError::UnknownCell(key))
    }

    /// Initialize a memory cell's contents (row-major for multi-dim).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] when `path` does not name a memory
    /// and [`SimError::OutOfBounds`] when `data` is longer than the memory.
    pub fn set_memory(&mut self, path: &[&str], data: &[u64]) -> SimResult<()> {
        let idx = self.prim_idx(path)?;
        match &mut self.flat.prog.states[idx] {
            PrimState::Mem {
                data: storage,
                width,
                ..
            } => {
                if data.len() > storage.len() {
                    return Err(SimError::OutOfBounds {
                        memory: path.join("."),
                        address: data.len() as u64,
                        size: storage.len() as u64,
                    });
                }
                for (slot, v) in storage.iter_mut().zip(data) {
                    *slot = mask(*v, *width);
                }
                Ok(())
            }
            _ => Err(SimError::UnknownCell(format!(
                "`{}` is not a memory",
                path.join(".")
            ))),
        }
    }

    /// Read back a memory cell's contents.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] when `path` does not name a memory.
    pub fn memory(&self, path: &[&str]) -> SimResult<Vec<u64>> {
        let idx = self.prim_idx(path)?;
        match &self.flat.prog.states[idx] {
            PrimState::Mem { data, .. } => Ok(data.clone()),
            _ => Err(SimError::UnknownCell(format!(
                "`{}` is not a memory",
                path.join(".")
            ))),
        }
    }

    /// Read a register's current value.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] when `path` does not name a
    /// register.
    pub fn register_value(&self, path: &[&str]) -> SimResult<u64> {
        let idx = self.prim_idx(path)?;
        match (&self.flat.prog.cells[idx].kind, &self.flat.prog.states[idx]) {
            // Combinational primitives carry a placeholder state; only true
            // `std_reg` instances report a value.
            (FlatCellKind::Reg { .. }, PrimState::Reg { val, .. }) => Ok(*val),
            _ => Err(SimError::UnknownCell(format!(
                "`{}` is not a register",
                path.join(".")
            ))),
        }
    }

    /// Number of primitive instances (used by compilation statistics).
    pub fn primitive_count(&self) -> usize {
        self.flat.prog.cells.len()
    }

    /// One combinational settling pass. Returns the `done` port's value.
    fn settle(&mut self, go: bool, cycle: u64) -> SimResult<bool> {
        let flat = &self.flat;
        let prog = &flat.prog;
        let values = &mut self.values;
        let guard_epoch = &mut self.guard_epoch;
        let guard_val = &mut self.guard_val;
        // Epochs start at 0, so `cycle + 1` invalidates the whole memo
        // without an O(guards) clear per cycle.
        let epoch = cycle + 1;
        values.fill(0);
        // Stateful outputs become visible first.
        for (ci, cell) in prog.cells.enumerate() {
            match (&cell.kind, &prog.states[ci]) {
                (FlatCellKind::Reg { out, done, .. }, PrimState::Reg { val, done: d, .. }) => {
                    values[out.index()] = *val;
                    values[done.index()] = u64::from(*d);
                }
                (FlatCellKind::Mem { done, .. }, PrimState::Mem { done: d, .. }) => {
                    values[done.index()] = u64::from(*d);
                }
                (
                    FlatCellKind::Unit {
                        out, out2, done, ..
                    },
                    PrimState::Unit {
                        out: o,
                        out2: o2,
                        done: d,
                        ..
                    },
                ) => {
                    values[out.index()] = *o;
                    if let Some(p2) = out2 {
                        values[p2.index()] = *o2;
                    }
                    values[done.index()] = u64::from(*d);
                }
                _ => {}
            }
        }
        values[flat.top_go.index()] = u64::from(go);
        for (&idx, &v) in &self.inputs {
            values[idx.index()] = mask(v, prog.ports[idx].width);
        }

        for node in &flat.nodes {
            match node {
                Node::Drivers { dst, asgns } => {
                    let mut driven = false;
                    let mut value = 0;
                    for a in prog.assigns.range(*asgns) {
                        if eval_guard_memo(
                            &prog.guards,
                            a.guard,
                            values,
                            epoch,
                            guard_epoch,
                            guard_val,
                        ) {
                            if driven {
                                return Err(SimError::DriverConflict {
                                    port: prog.ports[*dst].path.clone(),
                                    cycle,
                                });
                            }
                            driven = true;
                            value = match a.src {
                                FlatAtom::Port(p) => values[p.index()],
                                FlatAtom::Const(c) => c,
                            };
                        }
                    }
                    values[dst.index()] = mask(value, prog.ports[*dst].width);
                }
                Node::Comb(ci) => {
                    if let FlatCellKind::Comb {
                        op,
                        left,
                        right,
                        out,
                        in_width,
                        out_width,
                    } = &prog.cells[*ci].kind
                    {
                        let l = values[left.index()];
                        let r = right.map(|p| values[p.index()]).unwrap_or(0);
                        values[out.index()] = op.eval(l, r, *in_width, *out_width);
                    }
                }
                Node::MemRead(ci) => {
                    if let FlatCellKind::Mem {
                        addrs, read_data, ..
                    } = &prog.cells[*ci].kind
                    {
                        let mut av = [0u64; 3];
                        for (k, &a) in addrs.iter().enumerate() {
                            av[k] = values[a.index()];
                        }
                        values[read_data.index()] = prog.states[*ci].mem_read(&av[..addrs.len()]);
                    }
                }
            }
        }
        Ok(values[flat.top_done.index()] != 0)
    }

    /// One synchronous state update.
    fn tick(&mut self) -> SimResult<()> {
        let crate::flatten::FlatProgram {
            ref cells,
            ref mut states,
            ..
        } = self.flat.prog;
        let values = &self.values;
        for (ci, cell) in cells.enumerate() {
            match &cell.kind {
                FlatCellKind::Reg {
                    input, write_en, ..
                } => {
                    let inp = values[input.index()];
                    let we = values[write_en.index()] != 0;
                    states[ci].tick_reg(inp, we);
                }
                FlatCellKind::Mem {
                    addrs,
                    write_data,
                    write_en,
                    ..
                } => {
                    let mut av = [0u64; 3];
                    for (k, &a) in addrs.iter().enumerate() {
                        av[k] = values[a.index()];
                    }
                    let wd = values[write_data.index()];
                    let we = values[write_en.index()] != 0;
                    states[ci].tick_mem(&av[..addrs.len()], wd, we, &cell.path)?;
                }
                FlatCellKind::Unit {
                    left, right, go, ..
                } => {
                    let l = values[left.index()];
                    let r = values[right.index()];
                    let g = values[go.index()] != 0;
                    states[ci].tick_unit(l, r, g);
                }
                FlatCellKind::Comb { .. } => {}
            }
        }
        Ok(())
    }

    /// Run the design: assert `go`, clock until `done`, report the cycle
    /// count (the cycle in which `done` rose counts).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if `done` does not rise within
    /// `max_cycles`, or any settling/tick error.
    pub fn run(&mut self, max_cycles: u64) -> SimResult<RunStats> {
        for cycle in 0..max_cycles {
            let done = self.settle(true, cycle)?;
            self.tick()?;
            if done {
                return Ok(RunStats { cycles: cycle + 1 });
            }
        }
        Err(SimError::Timeout { max_cycles })
    }
}

/// Evaluate a hash-consed guard with per-settle memoization: a node whose
/// epoch stamp matches the current settle returns its cached value. Under
/// short-circuiting, untaken operands simply stay unstamped. The memo is
/// sound only because settle is a single topologically ordered sweep in
/// which every port a guard reads is final before the guard is evaluated —
/// the fixpoint interpreter must NOT reuse this.
fn eval_guard_memo(
    guards: &IndexedMap<GuardIdx, FlatGuard>,
    g: GuardIdx,
    values: &[u64],
    epoch: u64,
    guard_epoch: &mut [u64],
    guard_val: &mut [bool],
) -> bool {
    let i = g.index();
    if guard_epoch[i] == epoch {
        return guard_val[i];
    }
    let v = match guards[g] {
        FlatGuard::True => true,
        FlatGuard::Port(p) => values[p.index()] != 0,
        FlatGuard::Not(x) => !eval_guard_memo(guards, x, values, epoch, guard_epoch, guard_val),
        FlatGuard::And(a, b) => {
            eval_guard_memo(guards, a, values, epoch, guard_epoch, guard_val)
                && eval_guard_memo(guards, b, values, epoch, guard_epoch, guard_val)
        }
        FlatGuard::Or(a, b) => {
            eval_guard_memo(guards, a, values, epoch, guard_epoch, guard_val)
                || eval_guard_memo(guards, b, values, epoch, guard_epoch, guard_val)
        }
        FlatGuard::Comp(op, l, r) => op.eval(eval_atom(l, values), eval_atom(r, values)),
    };
    guard_epoch[i] = epoch;
    guard_val[i] = v;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_core::ir::parse_context;
    use calyx_core::passes;

    fn lower_and_sim(src: &str) -> Simulator {
        let mut ctx = parse_context(src).unwrap();
        passes::lower_pipeline().run(&mut ctx).unwrap();
        Simulator::new(&ctx, "main").unwrap()
    }

    #[test]
    fn figure_2_writes_one_then_two() {
        let mut sim = lower_and_sim(
            r#"component main() -> () {
              cells { x = std_reg(32); }
              wires {
                group one { x.in = 32'd1; x.write_en = 1'd1; one[done] = x.done; }
                group two { x.in = 32'd2; x.write_en = 1'd1; two[done] = x.done; }
              }
              control { seq { one; two; } }
            }"#,
        );
        let stats = sim.run(100).unwrap();
        assert_eq!(sim.register_value(&["x"]).unwrap(), 2);
        // Two 1-cycle groups under a dynamic seq: each costs the write plus
        // the handshake, plus the final done state.
        assert!(stats.cycles >= 4 && stats.cycles <= 8, "{}", stats.cycles);
    }

    #[test]
    fn while_loop_counts_to_five() {
        let mut sim = lower_and_sim(
            r#"component main() -> () {
              cells { i = std_reg(8); lt = std_lt(8); add = std_add(8); }
              wires {
                group cond { lt.left = i.out; lt.right = 8'd5; cond[done] = 1'd1; }
                group incr {
                  add.left = i.out; add.right = 8'd1;
                  i.in = add.out; i.write_en = 1'd1;
                  incr[done] = i.done;
                }
              }
              control { while lt.out with cond { incr; } }
            }"#,
        );
        sim.run(1000).unwrap();
        assert_eq!(sim.register_value(&["i"]).unwrap(), 5);
    }

    #[test]
    fn par_runs_both_groups() {
        let mut sim = lower_and_sim(
            r#"component main() -> () {
              cells { x = std_reg(8); y = std_reg(8); }
              wires {
                group a { x.in = 8'd3; x.write_en = 1'd1; a[done] = x.done; }
                group c { y.in = 8'd4; y.write_en = 1'd1; c[done] = y.done; }
              }
              control { par { a; c; } }
            }"#,
        );
        sim.run(100).unwrap();
        assert_eq!(sim.register_value(&["x"]).unwrap(), 3);
        assert_eq!(sim.register_value(&["y"]).unwrap(), 4);
    }

    #[test]
    fn if_selects_branch_on_memory_value() {
        let src = r#"component main() -> () {
              cells {
                @external m = std_mem_d1(8, 2, 1);
                gt = std_gt(8);
                r = std_reg(8);
              }
              wires {
                group cond {
                  m.addr0 = 1'd0;
                  gt.left = m.read_data; gt.right = 8'd10;
                  cond[done] = 1'd1;
                }
                group t { r.in = 8'd1; r.write_en = 1'd1; t[done] = r.done; }
                group f { r.in = 8'd2; r.write_en = 1'd1; f[done] = r.done; }
              }
              control { if gt.out with cond { t; } else { f; } }
            }"#;
        // Taken branch.
        let mut sim = lower_and_sim(src);
        sim.set_memory(&["m"], &[20, 0]).unwrap();
        sim.run(100).unwrap();
        assert_eq!(sim.register_value(&["r"]).unwrap(), 1);
        // Untaken branch.
        let mut sim = lower_and_sim(src);
        sim.set_memory(&["m"], &[5, 0]).unwrap();
        sim.run(100).unwrap();
        assert_eq!(sim.register_value(&["r"]).unwrap(), 2);
    }

    #[test]
    fn memory_accumulation_loop() {
        // sum m[0..4] into r.
        let mut sim = lower_and_sim(
            r#"component main() -> () {
              cells {
                @external m = std_mem_d1(16, 4, 2);
                i = std_reg(2); iw = std_reg(3);
                acc = std_reg(16);
                lt = std_lt(3); addi = std_add(3); adda = std_add(16);
                sl = std_slice(3, 2);
              }
              wires {
                group cond { lt.left = iw.out; lt.right = 3'd4; cond[done] = 1'd1; }
                group load_idx {
                  sl.in = iw.out;
                  i.in = sl.out; i.write_en = 1'd1;
                  load_idx[done] = i.done;
                }
                group accum {
                  m.addr0 = i.out;
                  adda.left = acc.out; adda.right = m.read_data;
                  acc.in = adda.out; acc.write_en = 1'd1;
                  accum[done] = acc.done;
                }
                group incr {
                  addi.left = iw.out; addi.right = 3'd1;
                  iw.in = addi.out; iw.write_en = 1'd1;
                  incr[done] = iw.done;
                }
              }
              control {
                while lt.out with cond { seq { load_idx; accum; incr; } }
              }
            }"#,
        );
        sim.set_memory(&["m"], &[10, 20, 30, 40]).unwrap();
        sim.run(10_000).unwrap();
        assert_eq!(sim.register_value(&["acc"]).unwrap(), 100);
    }

    #[test]
    fn multiplier_through_control() {
        let mut sim = lower_and_sim(
            r#"component main() -> () {
              cells { mul = std_mult_pipe(16); r = std_reg(16); }
              wires {
                group do_mul {
                  mul.left = 16'd6; mul.right = 16'd7;
                  mul.go = !mul.done ? 1'd1;
                  r.in = mul.out; r.write_en = mul.done ? 1'd1;
                  do_mul[done] = r.done;
                }
              }
              control { do_mul; }
            }"#,
        );
        let stats = sim.run(100).unwrap();
        assert_eq!(sim.register_value(&["r"]).unwrap(), 42);
        assert!(stats.cycles >= 5, "multiply takes at least 5 cycles");
    }

    #[test]
    fn subcomponents_execute_via_go_done() {
        let mut sim = lower_and_sim(
            r#"
            component child() -> () {
              cells { r = std_reg(8); }
              wires {
                group w { r.in = 8'd9; r.write_en = 1'd1; w[done] = r.done; }
              }
              control { w; }
            }
            component main() -> () {
              cells { c = child(); flag = std_reg(8); }
              wires {
                group invoke {
                  c.go = 1'd1;
                  invoke[done] = c.done;
                }
                group after { flag.in = 8'd1; flag.write_en = 1'd1; after[done] = flag.done; }
              }
              control { seq { invoke; after; } }
            }"#,
        );
        sim.run(100).unwrap();
        assert_eq!(sim.register_value(&["c", "r"]).unwrap(), 9);
        assert_eq!(sim.register_value(&["flag"]).unwrap(), 1);
    }

    #[test]
    fn empty_component_finishes_immediately() {
        let mut sim = lower_and_sim("component main() -> () { cells {} wires {} control {} }");
        let stats = sim.run(10).unwrap();
        assert_eq!(stats.cycles, 1);
    }

    #[test]
    fn unlowered_program_is_rejected() {
        let ctx = parse_context(
            r#"component main() -> () {
              cells { r = std_reg(8); }
              wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
              control { g; }
            }"#,
        )
        .unwrap();
        let err = Simulator::new(&ctx, "main").unwrap_err();
        assert!(matches!(err, SimError::Elaboration(_)));
    }

    #[test]
    fn driver_conflicts_detected() {
        let ctx = parse_context(
            r#"component main() -> () {
              cells { w = std_wire(8); }
              wires {
                w.in = 8'd1;
                w.in = 8'd2;
                done = go ? 1'd1;
              }
              control {}
            }"#,
        )
        .unwrap();
        // Two unconditional drivers would be rejected by validation, but the
        // simulator's dynamic check also catches them.
        let mut sim = Simulator::new(&ctx, "main").unwrap();
        let err = sim.run(10).unwrap_err();
        assert!(matches!(err, SimError::DriverConflict { .. }), "{err:?}");
    }

    #[test]
    fn combinational_loops_rejected() {
        let ctx = parse_context(
            r#"component main() -> () {
              cells { a = std_add(8); b = std_add(8); }
              wires {
                a.left = b.out;
                b.left = a.out;
                done = go ? 1'd1;
              }
              control {}
            }"#,
        )
        .unwrap();
        let err = Simulator::new(&ctx, "main").unwrap_err();
        assert!(matches!(err, SimError::CombinationalLoop(_)));
    }

    #[test]
    fn static_pipeline_gives_same_results_fewer_cycles() {
        let src = r#"component main() -> () {
              cells { x = std_reg(32); y = std_reg(32); }
              wires {
                group one { x.in = 32'd1; x.write_en = 1'd1; one[done] = x.done; }
                group two { y.in = 32'd2; y.write_en = 1'd1; two[done] = y.done; }
              }
              control { seq { one; two; } }
            }"#;
        let mut dynamic = parse_context(src).unwrap();
        passes::lower_pipeline().run(&mut dynamic).unwrap();
        let mut dsim = Simulator::new(&dynamic, "main").unwrap();
        let dstats = dsim.run(100).unwrap();

        let mut static_ = parse_context(src).unwrap();
        passes::lower_pipeline_static().run(&mut static_).unwrap();
        let mut ssim = Simulator::new(&static_, "main").unwrap();
        let sstats = ssim.run(100).unwrap();

        assert_eq!(dsim.register_value(&["x"]).unwrap(), 1);
        assert_eq!(ssim.register_value(&["x"]).unwrap(), 1);
        assert_eq!(dsim.register_value(&["y"]).unwrap(), 2);
        assert_eq!(ssim.register_value(&["y"]).unwrap(), 2);
        assert!(
            sstats.cycles < dstats.cycles,
            "static ({}) should beat dynamic ({})",
            sstats.cycles,
            dstats.cycles
        );
    }
}
