//! A reference interpreter for *un-lowered* Calyx programs.
//!
//! Executes the control tree directly, the way the language definition
//! reads (paper §3.3–§3.4): an `enable` activates a group's assignments
//! until the group signals `done`; `seq` runs children in order; `par`
//! runs them concurrently; `if`/`while` evaluate their `with` group, sample
//! the condition port, and proceed. Combinational settling within a cycle
//! uses fixpoint iteration over the active assignments.
//!
//! This is the semantic oracle for the compiler: after lowering, the RTL
//! simulation must leave the same architectural state (registers and
//! memories) as this interpreter, even though cycle counts differ. The
//! differential tests in `tests/` rely on exactly that.
//!
//! Limitations (by design — the RTL engine covers the rest): programs must
//! be single-component (no component-typed cells).

use crate::error::{SimError, SimResult};
use crate::prim::{mask, CombOp, PrimState, UnitOp};
use calyx_core::ir::{Assignment, Atom, CellType, Component, Context, Control, Guard, Id, PortRef};
use std::collections::{HashMap, HashSet};

/// Per-cycle port valuation.
type Values = HashMap<PortRef, u64>;

/// How a cell behaves.
enum CellKind {
    Comb(CombOp, u32, u32),
    Reg,
    Mem,
    Unit,
}

/// Execution state of one control statement.
enum StmtState {
    Done,
    Enable {
        group: Id,
    },
    Seq {
        stmts: Vec<Control>,
        idx: usize,
        cur: Box<StmtState>,
    },
    Par {
        children: Vec<StmtState>,
    },
    IfCond {
        stmt: Control,
    },
    IfBranch {
        inner: Box<StmtState>,
    },
    WhileCond {
        stmt: Control,
    },
    WhileBody {
        stmt: Control,
        inner: Box<StmtState>,
    },
}

/// The interpreter for one component.
pub struct Interpreter {
    comp: Component,
    kinds: HashMap<Id, CellKind>,
    states: HashMap<Id, PrimState>,
    state: StmtState,
    cycles: u64,
}

impl Interpreter {
    /// Build an interpreter for component `top` of `ctx`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Elaboration`] when the component instantiates
    /// other components or uses unmodeled primitives.
    pub fn new(ctx: &Context, top: &str) -> SimResult<Self> {
        let comp = ctx
            .components
            .get(Id::new(top))
            .ok_or_else(|| SimError::Elaboration(format!("no component `{top}`")))?
            .clone();
        let mut kinds = HashMap::new();
        let mut states = HashMap::new();
        for cell in comp.cells.iter() {
            match &cell.prototype {
                CellType::Component { name } => {
                    return Err(SimError::Elaboration(format!(
                        "interpreter does not support component instances (`{}` of `{name}`); \
                         lower and use the RTL simulator",
                        cell.name
                    )))
                }
                CellType::Primitive { name, params } => {
                    let width = params.first().copied().unwrap_or(1) as u32;
                    if let Some(op) = CombOp::from_name(name.as_str()) {
                        let out_width = cell.port(Id::new("out")).map(|p| p.width).unwrap_or(width);
                        kinds.insert(cell.name, CellKind::Comb(op, width, out_width));
                    } else {
                        match name.as_str() {
                            "std_reg" => {
                                states.insert(
                                    cell.name,
                                    PrimState::Reg {
                                        val: 0,
                                        done: false,
                                        width,
                                    },
                                );
                                kinds.insert(cell.name, CellKind::Reg);
                            }
                            "std_mem_d1" | "std_mem_d2" | "std_mem_d3" => {
                                let ndims = match name.as_str() {
                                    "std_mem_d1" => 1,
                                    "std_mem_d2" => 2,
                                    _ => 3,
                                };
                                let dims: Vec<u64> = params[1..=ndims].to_vec();
                                let size: u64 = dims.iter().product();
                                states.insert(
                                    cell.name,
                                    PrimState::Mem {
                                        data: vec![0; size as usize],
                                        dims,
                                        done: false,
                                        width,
                                    },
                                );
                                kinds.insert(cell.name, CellKind::Mem);
                            }
                            "std_mult_pipe" | "std_div_pipe" | "std_sqrt" => {
                                let op = match name.as_str() {
                                    "std_mult_pipe" => UnitOp::Mult,
                                    "std_div_pipe" => UnitOp::Div,
                                    _ => UnitOp::Sqrt,
                                };
                                states.insert(
                                    cell.name,
                                    PrimState::Unit {
                                        op,
                                        operands: (0, 0),
                                        remaining: None,
                                        out: 0,
                                        out2: 0,
                                        done: false,
                                        width,
                                    },
                                );
                                kinds.insert(cell.name, CellKind::Unit);
                            }
                            other => {
                                return Err(SimError::Elaboration(format!(
                                    "primitive `{other}` has no behavioral model"
                                )))
                            }
                        }
                    }
                }
            }
        }
        let state = init(&comp.control);
        Ok(Interpreter {
            comp,
            kinds,
            states,
            state,
            cycles: 0,
        })
    }

    /// Initialize a memory's contents.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] when `cell` is not a memory.
    pub fn set_memory(&mut self, cell: &str, data: &[u64]) -> SimResult<()> {
        match self.states.get_mut(&Id::new(cell)) {
            Some(PrimState::Mem {
                data: storage,
                width,
                ..
            }) => {
                for (slot, v) in storage.iter_mut().zip(data) {
                    *slot = mask(*v, *width);
                }
                Ok(())
            }
            _ => Err(SimError::UnknownCell(cell.to_string())),
        }
    }

    /// Read a memory's contents.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] when `cell` is not a memory.
    pub fn memory(&self, cell: &str) -> SimResult<Vec<u64>> {
        match self.states.get(&Id::new(cell)) {
            Some(PrimState::Mem { data, .. }) => Ok(data.clone()),
            _ => Err(SimError::UnknownCell(cell.to_string())),
        }
    }

    /// Read a register.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] when `cell` is not a register.
    pub fn register_value(&self, cell: &str) -> SimResult<u64> {
        match self.states.get(&Id::new(cell)) {
            Some(PrimState::Reg { val, .. }) => Ok(*val),
            _ => Err(SimError::UnknownCell(cell.to_string())),
        }
    }

    /// Run the control program to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] past the cycle budget, driver-conflict
    /// and convergence errors from settling.
    pub fn run(&mut self, max_cycles: u64) -> SimResult<crate::rtl::RunStats> {
        while !matches!(self.state, StmtState::Done) {
            if self.cycles >= max_cycles {
                return Err(SimError::Timeout { max_cycles });
            }
            self.step()?;
        }
        Ok(crate::rtl::RunStats {
            cycles: self.cycles,
        })
    }

    /// Execute one cycle: settle, advance the control tree, tick state.
    fn step(&mut self) -> SimResult<()> {
        // 1. Active groups this cycle: enabled groups plus the `with`
        //    condition groups currently being evaluated.
        let mut enables = Vec::new();
        let mut conds = Vec::new();
        collect_active(&self.state, &mut enables, &mut conds);

        // 2. An enabled group whose done signal is already observable from
        //    state alone (a registered done from last cycle's write) must
        //    not execute again during its done-observation cycle — this
        //    mirrors the `!done` protection in the compiled FSMs. Condition
        //    groups are exempt: they are combinational and stay active for
        //    the whole evaluation phase.
        let state_values = self.settle(&[])?;
        let mut active: Vec<Id> = enables
            .iter()
            .copied()
            .filter(|&g| !self.group_done(g, &state_values))
            .collect();
        active.extend(conds.iter().copied());

        // 3. Settle combinational values with the surviving groups.
        let values = self.settle(&active)?;

        // 4. Which candidate groups finished this cycle?
        let mut done_groups = HashSet::new();
        for &g in enables.iter().chain(conds.iter()) {
            if self.group_done(g, &values) {
                done_groups.insert(g);
            }
        }

        // 5. Synchronous update.
        self.tick(&values)?;

        // 6. Advance the control tree using this cycle's observations.
        let state = std::mem::replace(&mut self.state, StmtState::Done);
        self.state = advance(state, &done_groups, &values);
        self.cycles += 1;
        Ok(())
    }

    fn active_assignments<'b>(&'b self, active: &[Id]) -> Vec<&'b Assignment> {
        let mut asgns: Vec<&Assignment> = self.comp.continuous.iter().collect();
        for &g in active {
            if let Some(group) = self.comp.groups.get(g) {
                asgns.extend(group.assignments.iter());
            }
        }
        asgns
    }

    /// Fixpoint settling over the active assignments.
    fn settle(&self, active: &[Id]) -> SimResult<Values> {
        let asgns = self.active_assignments(active);
        let mut values: Values = HashMap::new();

        // Stateful outputs are fixed for the cycle.
        for (cell, state) in &self.states {
            match state {
                PrimState::Reg { val, done, .. } => {
                    values.insert(PortRef::cell(*cell, "out"), *val);
                    values.insert(PortRef::cell(*cell, "done"), u64::from(*done));
                }
                PrimState::Mem { done, .. } => {
                    values.insert(PortRef::cell(*cell, "done"), u64::from(*done));
                }
                PrimState::Unit {
                    op,
                    out,
                    out2,
                    done,
                    ..
                } => {
                    let out_port = if *op == UnitOp::Div {
                        "out_quotient"
                    } else {
                        "out"
                    };
                    values.insert(PortRef::cell(*cell, out_port), *out);
                    if *op == UnitOp::Div {
                        values.insert(PortRef::cell(*cell, "out_remainder"), *out2);
                    }
                    values.insert(PortRef::cell(*cell, "done"), u64::from(*done));
                }
            }
        }
        values.insert(PortRef::this("go"), 1);

        // Iterate until stable. The bound is generous: each pass fixes at
        // least one more port in a loop-free design.
        let budget = asgns.len() + self.kinds.len() + 8;
        for _ in 0..budget {
            let mut changed = false;

            // Assignments (with dynamic unique-driver checking).
            let mut driven: HashMap<PortRef, u64> = HashMap::new();
            for asgn in &asgns {
                if eval_guard(&asgn.guard, &values) {
                    let v = eval_atom(&asgn.src, &values);
                    if let Some(prev) = driven.get(&asgn.dst) {
                        if *prev != v {
                            return Err(SimError::DriverConflict {
                                port: asgn.dst.to_string(),
                                cycle: self.cycles,
                            });
                        }
                    }
                    driven.insert(asgn.dst, v);
                }
            }
            for (port, v) in driven {
                if values.get(&port).copied().unwrap_or(0) != v {
                    values.insert(port, v);
                    changed = true;
                }
            }

            // Combinational primitives and memory reads.
            for (cell, kind) in &self.kinds {
                match kind {
                    CellKind::Comb(op, w, ow) => {
                        let (l, r) = if op.is_binary() {
                            (
                                get(&values, PortRef::cell(*cell, "left")),
                                get(&values, PortRef::cell(*cell, "right")),
                            )
                        } else {
                            (get(&values, PortRef::cell(*cell, "in")), 0)
                        };
                        let out = op.eval(l, r, *w, *ow);
                        let port = PortRef::cell(*cell, "out");
                        if values.get(&port).copied().unwrap_or(0) != out {
                            values.insert(port, out);
                            changed = true;
                        }
                    }
                    CellKind::Mem => {
                        let state = &self.states[cell];
                        let addrs = self.mem_addrs(*cell, &values);
                        let out = state.mem_read(&addrs);
                        let port = PortRef::cell(*cell, "read_data");
                        if values.get(&port).copied().unwrap_or(0) != out {
                            values.insert(port, out);
                            changed = true;
                        }
                    }
                    CellKind::Reg | CellKind::Unit => {}
                }
            }

            if !changed {
                return Ok(values);
            }
        }
        Err(SimError::CombinationalLoop(vec![format!(
            "fixpoint did not converge in component `{}`",
            self.comp.name
        )]))
    }

    fn mem_addrs(&self, cell: Id, values: &Values) -> Vec<u64> {
        let ndims = match &self.states[&cell] {
            PrimState::Mem { dims, .. } => dims.len(),
            _ => 0,
        };
        (0..ndims)
            .map(|i| get(values, PortRef::cell(cell, format!("addr{i}").as_str())))
            .collect()
    }

    /// Does group `g`'s done hole evaluate high under `values`?
    fn group_done(&self, g: Id, values: &Values) -> bool {
        let Some(group) = self.comp.groups.get(g) else {
            return false;
        };
        group
            .done_writes()
            .any(|a| eval_guard(&a.guard, values) && eval_atom(&a.src, values) != 0)
    }

    fn tick(&mut self, values: &Values) -> SimResult<()> {
        let cells: Vec<Id> = self.states.keys().copied().collect();
        for cell in cells {
            match self.kinds.get(&cell) {
                Some(CellKind::Reg) => {
                    let input = get(values, PortRef::cell(cell, "in"));
                    let we = get(values, PortRef::cell(cell, "write_en")) != 0;
                    self.states
                        .get_mut(&cell)
                        .expect("state")
                        .tick_reg(input, we);
                }
                Some(CellKind::Mem) => {
                    let addrs = self.mem_addrs(cell, values);
                    let wd = get(values, PortRef::cell(cell, "write_data"));
                    let we = get(values, PortRef::cell(cell, "write_en")) != 0;
                    self.states.get_mut(&cell).expect("state").tick_mem(
                        &addrs,
                        wd,
                        we,
                        cell.as_str(),
                    )?;
                }
                Some(CellKind::Unit) => {
                    let op = match &self.states[&cell] {
                        PrimState::Unit { op, .. } => *op,
                        _ => unreachable!("unit kind has unit state"),
                    };
                    let (l, r) = if op == UnitOp::Sqrt {
                        let v = get(values, PortRef::cell(cell, "in"));
                        (v, v)
                    } else {
                        (
                            get(values, PortRef::cell(cell, "left")),
                            get(values, PortRef::cell(cell, "right")),
                        )
                    };
                    let go = get(values, PortRef::cell(cell, "go")) != 0;
                    self.states
                        .get_mut(&cell)
                        .expect("state")
                        .tick_unit(l, r, go);
                }
                _ => {}
            }
        }
        Ok(())
    }
}

fn get(values: &Values, port: PortRef) -> u64 {
    values.get(&port).copied().unwrap_or(0)
}

fn eval_atom(atom: &Atom, values: &Values) -> u64 {
    match atom {
        Atom::Port(p) => get(values, *p),
        Atom::Const { val, .. } => *val,
    }
}

fn eval_guard(guard: &Guard, values: &Values) -> bool {
    match guard {
        Guard::True => true,
        Guard::Port(p) => get(values, *p) != 0,
        Guard::Not(g) => !eval_guard(g, values),
        Guard::And(a, b) => eval_guard(a, values) && eval_guard(b, values),
        Guard::Or(a, b) => eval_guard(a, values) || eval_guard(b, values),
        Guard::Comp(op, l, r) => op.eval(eval_atom(l, values), eval_atom(r, values)),
    }
}

/// Initial execution state of a statement.
fn init(stmt: &Control) -> StmtState {
    match stmt {
        Control::Empty => StmtState::Done,
        Control::Enable { group, .. } => StmtState::Enable { group: *group },
        Control::Seq { stmts, .. } => {
            // Find the first child with actual work.
            for (idx, s) in stmts.iter().enumerate() {
                let st = init(s);
                if !matches!(st, StmtState::Done) {
                    return StmtState::Seq {
                        stmts: stmts.clone(),
                        idx,
                        cur: Box::new(st),
                    };
                }
            }
            StmtState::Done
        }
        Control::Par { stmts, .. } => {
            let children: Vec<StmtState> = stmts.iter().map(init).collect();
            if children.iter().all(|c| matches!(c, StmtState::Done)) {
                StmtState::Done
            } else {
                StmtState::Par { children }
            }
        }
        Control::If { .. } => StmtState::IfCond { stmt: stmt.clone() },
        Control::While { .. } => StmtState::WhileCond { stmt: stmt.clone() },
    }
}

/// Groups active during the cycle for this state, split into ordinary
/// enables and `with` condition groups.
fn collect_active(state: &StmtState, enables: &mut Vec<Id>, conds: &mut Vec<Id>) {
    match state {
        StmtState::Done => {}
        StmtState::Enable { group } => enables.push(*group),
        StmtState::Seq { cur, .. } => collect_active(cur, enables, conds),
        StmtState::Par { children } => {
            for c in children {
                collect_active(c, enables, conds);
            }
        }
        StmtState::IfCond { stmt } | StmtState::WhileCond { stmt } => {
            let cond = match stmt {
                Control::If { cond, .. } | Control::While { cond, .. } => cond,
                _ => &None,
            };
            if let Some(c) = cond {
                conds.push(*c);
            }
        }
        StmtState::IfBranch { inner } => collect_active(inner, enables, conds),
        StmtState::WhileBody { inner, .. } => collect_active(inner, enables, conds),
    }
}

/// Advance the tree by one cycle given this cycle's observations.
fn advance(state: StmtState, done_groups: &HashSet<Id>, values: &Values) -> StmtState {
    match state {
        StmtState::Done => StmtState::Done,
        StmtState::Enable { group } => {
            if done_groups.contains(&group) {
                StmtState::Done
            } else {
                StmtState::Enable { group }
            }
        }
        StmtState::Seq { stmts, idx, cur } => {
            let cur = advance(*cur, done_groups, values);
            if matches!(cur, StmtState::Done) {
                for next in (idx + 1)..stmts.len() {
                    let st = init(&stmts[next]);
                    if !matches!(st, StmtState::Done) {
                        return StmtState::Seq {
                            stmts,
                            idx: next,
                            cur: Box::new(st),
                        };
                    }
                }
                StmtState::Done
            } else {
                StmtState::Seq {
                    stmts,
                    idx,
                    cur: Box::new(cur),
                }
            }
        }
        StmtState::Par { children } => {
            let children: Vec<StmtState> = children
                .into_iter()
                .map(|c| advance(c, done_groups, values))
                .collect();
            if children.iter().all(|c| matches!(c, StmtState::Done)) {
                StmtState::Done
            } else {
                StmtState::Par { children }
            }
        }
        StmtState::IfCond { stmt } => {
            let (port, cond, tbranch, fbranch) = match &stmt {
                Control::If {
                    port,
                    cond,
                    tbranch,
                    fbranch,
                    ..
                } => (port, cond, tbranch, fbranch),
                _ => unreachable!("IfCond holds an if"),
            };
            let cond_finished = match cond {
                Some(c) => done_groups.contains(c),
                None => true,
            };
            if cond_finished {
                let taken = get(values, *port) != 0;
                let branch = if taken { tbranch } else { fbranch };
                let inner = init(branch);
                if matches!(inner, StmtState::Done) {
                    StmtState::Done
                } else {
                    StmtState::IfBranch {
                        inner: Box::new(inner),
                    }
                }
            } else {
                StmtState::IfCond { stmt }
            }
        }
        StmtState::IfBranch { inner } => {
            let inner = advance(*inner, done_groups, values);
            if matches!(inner, StmtState::Done) {
                StmtState::Done
            } else {
                StmtState::IfBranch {
                    inner: Box::new(inner),
                }
            }
        }
        StmtState::WhileCond { stmt } => {
            let (port, cond, body) = match &stmt {
                Control::While {
                    port, cond, body, ..
                } => (port, cond, body),
                _ => unreachable!("WhileCond holds a while"),
            };
            let cond_finished = match cond {
                Some(c) => done_groups.contains(c),
                None => true,
            };
            if cond_finished {
                let looping = get(values, *port) != 0;
                if looping {
                    let inner = init(body);
                    if matches!(inner, StmtState::Done) {
                        // Empty body: immediately re-evaluate next cycle.
                        StmtState::WhileCond { stmt }
                    } else {
                        StmtState::WhileBody {
                            stmt: stmt.clone(),
                            inner: Box::new(inner),
                        }
                    }
                } else {
                    StmtState::Done
                }
            } else {
                StmtState::WhileCond { stmt }
            }
        }
        StmtState::WhileBody { stmt, inner } => {
            let inner = advance(*inner, done_groups, values);
            if matches!(inner, StmtState::Done) {
                StmtState::WhileCond { stmt }
            } else {
                StmtState::WhileBody {
                    stmt,
                    inner: Box::new(inner),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_core::ir::parse_context;

    fn interp(src: &str) -> Interpreter {
        let ctx = parse_context(src).unwrap();
        Interpreter::new(&ctx, "main").unwrap()
    }

    #[test]
    fn seq_of_register_writes() {
        let mut i = interp(
            r#"component main() -> () {
              cells { x = std_reg(32); }
              wires {
                group one { x.in = 32'd1; x.write_en = 1'd1; one[done] = x.done; }
                group two { x.in = 32'd2; x.write_en = 1'd1; two[done] = x.done; }
              }
              control { seq { one; two; } }
            }"#,
        );
        let stats = i.run(100).unwrap();
        assert_eq!(i.register_value("x").unwrap(), 2);
        // Each group: 1 write cycle + 1 done-observation cycle.
        assert_eq!(stats.cycles, 4);
    }

    #[test]
    fn while_loop_semantics() {
        let mut i = interp(
            r#"component main() -> () {
              cells { i = std_reg(8); lt = std_lt(8); add = std_add(8); }
              wires {
                group cond { lt.left = i.out; lt.right = 8'd7; cond[done] = 1'd1; }
                group incr {
                  add.left = i.out; add.right = 8'd1;
                  i.in = add.out; i.write_en = 1'd1;
                  incr[done] = i.done;
                }
              }
              control { while lt.out with cond { incr; } }
            }"#,
        );
        i.run(1000).unwrap();
        assert_eq!(i.register_value("i").unwrap(), 7);
    }

    #[test]
    fn par_and_if_semantics() {
        let mut i = interp(
            r#"component main() -> () {
              cells {
                a = std_reg(8); b = std_reg(8); r = std_reg(8);
                gt = std_gt(8);
              }
              wires {
                group wa { a.in = 8'd11; a.write_en = 1'd1; wa[done] = a.done; }
                group wb { b.in = 8'd4; b.write_en = 1'd1; wb[done] = b.done; }
                group cmp {
                  gt.left = a.out; gt.right = b.out;
                  cmp[done] = 1'd1;
                }
                group t { r.in = a.out; r.write_en = 1'd1; t[done] = r.done; }
                group f { r.in = b.out; r.write_en = 1'd1; f[done] = r.done; }
              }
              control {
                seq {
                  par { wa; wb; }
                  if gt.out with cmp { t; } else { f; }
                }
              }
            }"#,
        );
        i.run(100).unwrap();
        assert_eq!(i.register_value("r").unwrap(), 11, "max(11, 4)");
    }

    #[test]
    fn multiplier_latency_respected() {
        let mut i = interp(
            r#"component main() -> () {
              cells { mul = std_mult_pipe(16); r = std_reg(16); }
              wires {
                group m {
                  mul.left = 16'd9; mul.right = 16'd5;
                  mul.go = !mul.done ? 1'd1;
                  r.in = mul.out; r.write_en = mul.done ? 1'd1;
                  m[done] = r.done;
                }
              }
              control { m; }
            }"#,
        );
        let stats = i.run(100).unwrap();
        assert_eq!(i.register_value("r").unwrap(), 45);
        assert!(stats.cycles >= 5);
    }

    #[test]
    fn memory_initialization_and_readback() {
        let mut i = interp(
            r#"component main() -> () {
              cells { m = std_mem_d1(8, 4, 2); r = std_reg(8); }
              wires {
                group rd {
                  m.addr0 = 2'd3;
                  r.in = m.read_data; r.write_en = 1'd1;
                  rd[done] = r.done;
                }
                group wr {
                  m.addr0 = 2'd0; m.write_data = r.out; m.write_en = 1'd1;
                  wr[done] = m.done;
                }
              }
              control { seq { rd; wr; } }
            }"#,
        );
        i.set_memory("m", &[0, 0, 0, 77]).unwrap();
        i.run(100).unwrap();
        assert_eq!(i.memory("m").unwrap(), vec![77, 0, 0, 77]);
    }

    #[test]
    fn rejects_component_instances() {
        let ctx = parse_context(
            r#"
            component child() -> () { cells {} wires {} control {} }
            component main() -> () {
              cells { c = child(); }
              wires {}
              control {}
            }"#,
        )
        .unwrap();
        assert!(matches!(
            Interpreter::new(&ctx, "main"),
            Err(SimError::Elaboration(_))
        ));
    }

    #[test]
    fn empty_control_finishes_immediately() {
        let mut i = interp("component main() -> () { cells {} wires {} control {} }");
        let stats = i.run(10).unwrap();
        assert_eq!(stats.cycles, 0);
    }
}
