//! Cycle-accurate simulation of lowered Calyx programs.
//!
//! The engine elaborates a lowered [`Context`] — every component a flat
//! list of guarded assignments — into a port arena and an evaluation graph:
//!
//! - subcomponent instances are elaborated *in place*: a cell's ports and
//!   the inner component's `this` ports are the same arena slots, so
//!   hierarchy costs nothing at simulation time;
//! - all assignments driving the same port form one *driver node*;
//!   combinational primitives and memory read functions form the others;
//! - nodes are topologically sorted once; each simulated cycle is a single
//!   sweep over the sorted nodes followed by a synchronous primitive tick.
//!
//! Unique-driver violations (two active guards on one port) and
//! combinational loops are detected and reported as errors, mirroring what
//! Verilator would flag in the emitted SystemVerilog.

use crate::error::{SimError, SimResult};
use crate::prim::{mask, CombOp, PrimState, UnitOp};
use calyx_core::ir::{Atom, CellType, CompOp, Context, Guard, Id, PortParent, PortRef};
use std::collections::HashMap;

/// An elaborated atom: a port slot or a constant.
#[derive(Debug, Clone, Copy)]
enum EAtom {
    Port(usize),
    Const(u64),
}

/// An elaborated guard over port slots.
#[derive(Debug, Clone)]
enum EGuard {
    True,
    Port(usize),
    Not(Box<EGuard>),
    And(Box<EGuard>, Box<EGuard>),
    Or(Box<EGuard>, Box<EGuard>),
    Comp(CompOp, EAtom, EAtom),
}

#[derive(Debug, Clone)]
struct EAssign {
    src: EAtom,
    guard: EGuard,
}

/// How a primitive instance connects to the port arena.
#[derive(Debug, Clone)]
enum PrimKind {
    Comb {
        op: CombOp,
        left: usize,
        right: Option<usize>,
        out: usize,
        in_width: u32,
        out_width: u32,
    },
    Reg {
        input: usize,
        write_en: usize,
        out: usize,
        done: usize,
    },
    Mem {
        addrs: Vec<usize>,
        write_data: usize,
        write_en: usize,
        read_data: usize,
        done: usize,
    },
    Unit {
        left: usize,
        right: usize,
        go: usize,
        out: usize,
        out2: Option<usize>,
        done: usize,
    },
}

#[derive(Debug, Clone)]
struct PrimInstance {
    path: String,
    kind: PrimKind,
}

#[derive(Debug, Clone)]
enum Node {
    /// All assignments driving one port.
    Drivers { dst: usize, asgns: Vec<EAssign> },
    /// A combinational primitive's output function.
    Comb(usize),
    /// A memory's combinational read port.
    MemRead(usize),
}

#[derive(Debug, Clone)]
struct PortInfo {
    width: u32,
    path: String,
}

pub use crate::rtl::RunStats;

/// A cycle-accurate simulator instance.
///
/// See the crate docs for an end-to-end example; typical use is
/// `Simulator::new(&lowered_ctx, "main")`, optional [`Simulator::set_memory`]
/// calls, [`Simulator::run`], then state inspection.
#[derive(Debug)]
pub struct Simulator {
    ports: Vec<PortInfo>,
    nodes: Vec<Node>,
    prims: Vec<PrimInstance>,
    states: Vec<PrimState>,
    values: Vec<u64>,
    prim_index: HashMap<String, usize>,
    top_go: usize,
    top_done: usize,
    /// Extra top-level input values to drive each cycle.
    inputs: HashMap<usize, u64>,
    top_inputs: HashMap<String, usize>,
}

struct Elaborator<'a> {
    ctx: &'a Context,
    ports: Vec<PortInfo>,
    prims: Vec<PrimInstance>,
    states: Vec<PrimState>,
    prim_index: HashMap<String, usize>,
    drivers: HashMap<usize, Vec<EAssign>>,
}

impl<'a> Elaborator<'a> {
    fn alloc(&mut self, width: u32, path: String) -> usize {
        self.ports.push(PortInfo { width, path });
        self.ports.len() - 1
    }

    fn elaborate_component(
        &mut self,
        name: Id,
        this_ports: &HashMap<Id, usize>,
        prefix: &str,
    ) -> SimResult<()> {
        let comp = self
            .ctx
            .components
            .get(name)
            .ok_or_else(|| SimError::Elaboration(format!("undefined component `{name}`")))?;
        if !comp.groups.is_empty() || !comp.control.is_empty() {
            return Err(SimError::Elaboration(format!(
                "component `{name}` still has groups/control; run the lowering \
                 pipeline first (or use the interpreter)"
            )));
        }

        // Allocate cell ports; recurse into subcomponents.
        let mut cell_ports: HashMap<Id, HashMap<Id, usize>> = HashMap::new();
        for cell in comp.cells.iter() {
            let mut map = HashMap::new();
            for pd in &cell.ports {
                let idx = self.alloc(pd.width, format!("{prefix}{}.{}", cell.name, pd.name));
                map.insert(pd.name, idx);
            }
            match &cell.prototype {
                CellType::Primitive {
                    name: prim_name,
                    params,
                } => {
                    let path = format!("{prefix}{}", cell.name);
                    self.instantiate_primitive(prim_name.as_str(), params, &map, path)?;
                }
                CellType::Component { name: child } => {
                    let child_prefix = format!("{prefix}{}.", cell.name);
                    self.elaborate_component(*child, &map, &child_prefix)?;
                }
            }
            cell_ports.insert(cell.name, map);
        }

        // Resolve assignments.
        let resolve =
            |port: &PortRef, cell_ports: &HashMap<Id, HashMap<Id, usize>>| -> SimResult<usize> {
                match port.parent {
                    PortParent::Cell(c) => cell_ports
                        .get(&c)
                        .and_then(|m| m.get(&port.port))
                        .copied()
                        .ok_or_else(|| {
                            SimError::Elaboration(format!("unresolved port `{port}` in `{name}`"))
                        }),
                    PortParent::This => this_ports.get(&port.port).copied().ok_or_else(|| {
                        SimError::Elaboration(format!("unresolved this-port `{port}` in `{name}`"))
                    }),
                    PortParent::Group(_) => Err(SimError::Elaboration(format!(
                        "hole `{port}` survives in lowered component `{name}`"
                    ))),
                }
            };
        for asgn in &comp.continuous {
            let dst = resolve(&asgn.dst, &cell_ports)?;
            let src = match &asgn.src {
                Atom::Port(p) => EAtom::Port(resolve(p, &cell_ports)?),
                Atom::Const { val, .. } => EAtom::Const(*val),
            };
            let guard = self.elaborate_guard(&asgn.guard, &cell_ports, this_ports, name)?;
            self.drivers
                .entry(dst)
                .or_default()
                .push(EAssign { src, guard });
        }
        Ok(())
    }

    fn elaborate_guard(
        &mut self,
        guard: &Guard,
        cell_ports: &HashMap<Id, HashMap<Id, usize>>,
        this_ports: &HashMap<Id, usize>,
        name: Id,
    ) -> SimResult<EGuard> {
        let resolve = |port: &PortRef| -> SimResult<usize> {
            match port.parent {
                PortParent::Cell(c) => cell_ports
                    .get(&c)
                    .and_then(|m| m.get(&port.port))
                    .copied()
                    .ok_or_else(|| {
                        SimError::Elaboration(format!("unresolved port `{port}` in `{name}`"))
                    }),
                PortParent::This => this_ports.get(&port.port).copied().ok_or_else(|| {
                    SimError::Elaboration(format!("unresolved this-port `{port}` in `{name}`"))
                }),
                PortParent::Group(_) => Err(SimError::Elaboration(format!(
                    "hole `{port}` survives in lowered component `{name}`"
                ))),
            }
        };
        let atom = |a: &Atom| -> SimResult<EAtom> {
            Ok(match a {
                Atom::Port(p) => EAtom::Port(resolve(p)?),
                Atom::Const { val, .. } => EAtom::Const(*val),
            })
        };
        Ok(match guard {
            Guard::True => EGuard::True,
            Guard::Port(p) => EGuard::Port(resolve(p)?),
            Guard::Not(g) => EGuard::Not(Box::new(
                self.elaborate_guard(g, cell_ports, this_ports, name)?,
            )),
            Guard::And(a, b) => EGuard::And(
                Box::new(self.elaborate_guard(a, cell_ports, this_ports, name)?),
                Box::new(self.elaborate_guard(b, cell_ports, this_ports, name)?),
            ),
            Guard::Or(a, b) => EGuard::Or(
                Box::new(self.elaborate_guard(a, cell_ports, this_ports, name)?),
                Box::new(self.elaborate_guard(b, cell_ports, this_ports, name)?),
            ),
            Guard::Comp(op, l, r) => EGuard::Comp(*op, atom(l)?, atom(r)?),
        })
    }

    fn instantiate_primitive(
        &mut self,
        prim: &str,
        params: &[u64],
        ports: &HashMap<Id, usize>,
        path: String,
    ) -> SimResult<()> {
        let p = |n: &str| -> SimResult<usize> {
            ports.get(&Id::new(n)).copied().ok_or_else(|| {
                SimError::Elaboration(format!("primitive `{prim}` missing port `{n}`"))
            })
        };
        let width = params.first().copied().unwrap_or(1) as u32;
        let kind = if let Some(op) = CombOp::from_name(prim) {
            let (left, right) = if op.is_binary() {
                (p("left")?, Some(p("right")?))
            } else {
                (p("in")?, None)
            };
            let out = p("out")?;
            let out_width = self.ports[out].width;
            PrimKind::Comb {
                op,
                left,
                right,
                out,
                in_width: width,
                out_width,
            }
        } else {
            match prim {
                "std_reg" => {
                    self.states.push(PrimState::Reg {
                        val: 0,
                        done: false,
                        width,
                    });
                    let kind = PrimKind::Reg {
                        input: p("in")?,
                        write_en: p("write_en")?,
                        out: p("out")?,
                        done: p("done")?,
                    };
                    self.push_prim(path, kind);
                    return Ok(());
                }
                "std_mem_d1" | "std_mem_d2" | "std_mem_d3" => {
                    let ndims = match prim {
                        "std_mem_d1" => 1,
                        "std_mem_d2" => 2,
                        _ => 3,
                    };
                    let dims: Vec<u64> = params[1..=ndims].to_vec();
                    let size: u64 = dims.iter().product();
                    let addrs = (0..ndims)
                        .map(|i| p(&format!("addr{i}")))
                        .collect::<SimResult<Vec<_>>>()?;
                    self.states.push(PrimState::Mem {
                        data: vec![0; size as usize],
                        dims,
                        done: false,
                        width,
                    });
                    let kind = PrimKind::Mem {
                        addrs,
                        write_data: p("write_data")?,
                        write_en: p("write_en")?,
                        read_data: p("read_data")?,
                        done: p("done")?,
                    };
                    self.push_prim(path, kind);
                    return Ok(());
                }
                "std_mult_pipe" | "std_div_pipe" | "std_sqrt" => {
                    let (op, left, right, out, out2) = match prim {
                        "std_mult_pipe" => (UnitOp::Mult, p("left")?, p("right")?, p("out")?, None),
                        "std_div_pipe" => (
                            UnitOp::Div,
                            p("left")?,
                            p("right")?,
                            p("out_quotient")?,
                            Some(p("out_remainder")?),
                        ),
                        _ => {
                            let input = p("in")?;
                            (UnitOp::Sqrt, input, input, p("out")?, None)
                        }
                    };
                    self.states.push(PrimState::Unit {
                        op,
                        operands: (0, 0),
                        remaining: None,
                        out: 0,
                        out2: 0,
                        done: false,
                        width,
                    });
                    let kind = PrimKind::Unit {
                        left,
                        right,
                        go: p("go")?,
                        out,
                        out2,
                        done: p("done")?,
                    };
                    self.push_prim(path, kind);
                    return Ok(());
                }
                other => {
                    return Err(SimError::Elaboration(format!(
                        "primitive `{other}` has no behavioral model"
                    )))
                }
            }
        };
        // Combinational primitives carry no state; use a placeholder so the
        // state vector stays index-aligned.
        self.states.push(PrimState::Reg {
            val: 0,
            done: false,
            width: 0,
        });
        self.push_prim(path, kind);
        Ok(())
    }

    fn push_prim(&mut self, path: String, kind: PrimKind) {
        self.prim_index.insert(path.clone(), self.prims.len());
        self.prims.push(PrimInstance { path, kind });
    }
}

impl Simulator {
    /// Elaborate the lowered program rooted at component `top`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Elaboration`] for un-lowered input, undefined
    /// names, or unmodeled primitives; [`SimError::CombinationalLoop`] when
    /// the assignment graph is cyclic.
    pub fn new(ctx: &Context, top: &str) -> SimResult<Self> {
        let top_id = Id::new(top);
        let top_comp = ctx
            .components
            .get(top_id)
            .ok_or_else(|| SimError::Elaboration(format!("no component `{top}`")))?;

        let mut elab = Elaborator {
            ctx,
            ports: Vec::new(),
            prims: Vec::new(),
            states: Vec::new(),
            prim_index: HashMap::new(),
            drivers: HashMap::new(),
        };

        // Top-level interface ports.
        let mut this_ports = HashMap::new();
        let mut top_inputs = HashMap::new();
        for pd in &top_comp.signature {
            let idx = elab.alloc(pd.width, format!("{top}.{}", pd.name));
            this_ports.insert(pd.name, idx);
            if pd.direction == calyx_core::ir::Direction::Input {
                top_inputs.insert(pd.name.to_string(), idx);
            }
        }
        let top_go = this_ports[&Id::new("go")];
        let top_done = this_ports[&Id::new("done")];

        elab.elaborate_component(top_id, &this_ports, "")?;

        // Build evaluation nodes.
        let mut nodes = Vec::new();
        for (dst, asgns) in elab.drivers {
            nodes.push(Node::Drivers { dst, asgns });
        }
        for (i, prim) in elab.prims.iter().enumerate() {
            match prim.kind {
                PrimKind::Comb { .. } => nodes.push(Node::Comb(i)),
                PrimKind::Mem { .. } => nodes.push(Node::MemRead(i)),
                _ => {}
            }
        }

        let sorted = topo_sort(&nodes, &elab.prims, &elab.ports)?;
        let nodes = sorted.into_iter().map(|i| nodes[i].clone()).collect();

        let n_ports = elab.ports.len();
        Ok(Simulator {
            ports: elab.ports,
            nodes,
            prims: elab.prims,
            states: elab.states,
            values: vec![0; n_ports],
            prim_index: elab.prim_index,
            top_go,
            top_done,
            inputs: HashMap::new(),
            top_inputs,
        })
    }

    /// Drive a top-level input port to `value` on every subsequent cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] if `top` has no such input.
    pub fn set_input(&mut self, port: &str, value: u64) -> SimResult<()> {
        let idx = *self
            .top_inputs
            .get(port)
            .ok_or_else(|| SimError::UnknownCell(format!("top-level input `{port}`")))?;
        self.inputs.insert(idx, value);
        Ok(())
    }

    fn prim_idx(&self, path: &[&str]) -> SimResult<usize> {
        let key = path.join(".");
        self.prim_index
            .get(&key)
            .copied()
            .ok_or(SimError::UnknownCell(key))
    }

    /// Initialize a memory cell's contents (row-major for multi-dim).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] when `path` does not name a memory
    /// and [`SimError::OutOfBounds`] when `data` is longer than the memory.
    pub fn set_memory(&mut self, path: &[&str], data: &[u64]) -> SimResult<()> {
        let idx = self.prim_idx(path)?;
        match &mut self.states[idx] {
            PrimState::Mem {
                data: storage,
                width,
                ..
            } => {
                if data.len() > storage.len() {
                    return Err(SimError::OutOfBounds {
                        memory: path.join("."),
                        address: data.len() as u64,
                        size: storage.len() as u64,
                    });
                }
                for (slot, v) in storage.iter_mut().zip(data) {
                    *slot = mask(*v, *width);
                }
                Ok(())
            }
            _ => Err(SimError::UnknownCell(format!(
                "`{}` is not a memory",
                path.join(".")
            ))),
        }
    }

    /// Read back a memory cell's contents.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] when `path` does not name a memory.
    pub fn memory(&self, path: &[&str]) -> SimResult<Vec<u64>> {
        let idx = self.prim_idx(path)?;
        match &self.states[idx] {
            PrimState::Mem { data, .. } => Ok(data.clone()),
            _ => Err(SimError::UnknownCell(format!(
                "`{}` is not a memory",
                path.join(".")
            ))),
        }
    }

    /// Read a register's current value.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownCell`] when `path` does not name a
    /// register.
    pub fn register_value(&self, path: &[&str]) -> SimResult<u64> {
        let idx = self.prim_idx(path)?;
        match (&self.prims[idx].kind, &self.states[idx]) {
            // Combinational primitives carry a placeholder state; only true
            // `std_reg` instances report a value.
            (PrimKind::Reg { .. }, PrimState::Reg { val, .. }) => Ok(*val),
            _ => Err(SimError::UnknownCell(format!(
                "`{}` is not a register",
                path.join(".")
            ))),
        }
    }

    /// Number of primitive instances (used by compilation statistics).
    pub fn primitive_count(&self) -> usize {
        self.prims.len()
    }

    /// One combinational settling pass. Returns the `done` port's value.
    fn settle(&mut self, go: bool, cycle: u64) -> SimResult<bool> {
        self.values.fill(0);
        // Stateful outputs become visible first.
        for (i, prim) in self.prims.iter().enumerate() {
            match (&prim.kind, &self.states[i]) {
                (PrimKind::Reg { out, done, .. }, PrimState::Reg { val, done: d, .. }) => {
                    self.values[*out] = *val;
                    self.values[*done] = u64::from(*d);
                }
                (PrimKind::Mem { done, .. }, PrimState::Mem { done: d, .. }) => {
                    self.values[*done] = u64::from(*d);
                }
                (
                    PrimKind::Unit {
                        out, out2, done, ..
                    },
                    PrimState::Unit {
                        out: o,
                        out2: o2,
                        done: d,
                        ..
                    },
                ) => {
                    self.values[*out] = *o;
                    if let Some(p2) = out2 {
                        self.values[*p2] = *o2;
                    }
                    self.values[*done] = u64::from(*d);
                }
                _ => {}
            }
        }
        self.values[self.top_go] = u64::from(go);
        for (&idx, &v) in &self.inputs {
            self.values[idx] = mask(v, self.ports[idx].width);
        }

        for node in &self.nodes {
            match node {
                Node::Drivers { dst, asgns } => {
                    let mut driven = false;
                    let mut value = 0;
                    for asgn in asgns {
                        if eval_guard(&asgn.guard, &self.values) {
                            if driven {
                                return Err(SimError::DriverConflict {
                                    port: self.ports[*dst].path.clone(),
                                    cycle,
                                });
                            }
                            driven = true;
                            value = match asgn.src {
                                EAtom::Port(p) => self.values[p],
                                EAtom::Const(c) => c,
                            };
                        }
                    }
                    self.values[*dst] = mask(value, self.ports[*dst].width);
                }
                Node::Comb(i) => {
                    if let PrimKind::Comb {
                        op,
                        left,
                        right,
                        out,
                        in_width,
                        out_width,
                    } = &self.prims[*i].kind
                    {
                        let l = self.values[*left];
                        let r = right.map(|p| self.values[p]).unwrap_or(0);
                        self.values[*out] = op.eval(l, r, *in_width, *out_width);
                    }
                }
                Node::MemRead(i) => {
                    if let PrimKind::Mem {
                        addrs, read_data, ..
                    } = &self.prims[*i].kind
                    {
                        let addr_vals: Vec<u64> = addrs.iter().map(|&a| self.values[a]).collect();
                        self.values[*read_data] = self.states[*i].mem_read(&addr_vals);
                    }
                }
            }
        }
        Ok(self.values[self.top_done] != 0)
    }

    /// One synchronous state update.
    fn tick(&mut self) -> SimResult<()> {
        for (i, prim) in self.prims.iter().enumerate() {
            match &prim.kind {
                PrimKind::Reg {
                    input, write_en, ..
                } => {
                    let inp = self.values[*input];
                    let we = self.values[*write_en] != 0;
                    self.states[i].tick_reg(inp, we);
                }
                PrimKind::Mem {
                    addrs,
                    write_data,
                    write_en,
                    ..
                } => {
                    let addr_vals: Vec<u64> = addrs.iter().map(|&a| self.values[a]).collect();
                    let wd = self.values[*write_data];
                    let we = self.values[*write_en] != 0;
                    self.states[i].tick_mem(&addr_vals, wd, we, &prim.path)?;
                }
                PrimKind::Unit {
                    left, right, go, ..
                } => {
                    let l = self.values[*left];
                    let r = self.values[*right];
                    let g = self.values[*go] != 0;
                    self.states[i].tick_unit(l, r, g);
                }
                PrimKind::Comb { .. } => {}
            }
        }
        Ok(())
    }

    /// Run the design: assert `go`, clock until `done`, report the cycle
    /// count (the cycle in which `done` rose counts).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Timeout`] if `done` does not rise within
    /// `max_cycles`, or any settling/tick error.
    pub fn run(&mut self, max_cycles: u64) -> SimResult<RunStats> {
        for cycle in 0..max_cycles {
            let done = self.settle(true, cycle)?;
            self.tick()?;
            if done {
                return Ok(RunStats { cycles: cycle + 1 });
            }
        }
        Err(SimError::Timeout { max_cycles })
    }
}

/// Kahn's algorithm over evaluation nodes; reports a combinational loop by
/// listing the ports still unresolved.
fn topo_sort(nodes: &[Node], prims: &[PrimInstance], ports: &[PortInfo]) -> SimResult<Vec<usize>> {
    // Which node produces each port?
    let mut producer: HashMap<usize, usize> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        match node {
            Node::Drivers { dst, .. } => {
                producer.insert(*dst, i);
            }
            Node::Comb(p) => {
                if let PrimKind::Comb { out, .. } = &prims[*p].kind {
                    producer.insert(*out, i);
                }
            }
            Node::MemRead(p) => {
                if let PrimKind::Mem { read_data, .. } = &prims[*p].kind {
                    producer.insert(*read_data, i);
                }
            }
        }
    }

    let reads_of = |node: &Node| -> Vec<usize> {
        match node {
            Node::Drivers { asgns, .. } => {
                let mut reads = Vec::new();
                for a in asgns {
                    if let EAtom::Port(p) = a.src {
                        reads.push(p);
                    }
                    guard_reads(&a.guard, &mut reads);
                }
                reads
            }
            Node::Comb(p) => {
                if let PrimKind::Comb { left, right, .. } = &prims[*p].kind {
                    let mut v = vec![*left];
                    if let Some(r) = right {
                        v.push(*r);
                    }
                    v
                } else {
                    Vec::new()
                }
            }
            Node::MemRead(p) => {
                if let PrimKind::Mem { addrs, .. } = &prims[*p].kind {
                    addrs.clone()
                } else {
                    Vec::new()
                }
            }
        }
    };

    let mut in_degree = vec![0usize; nodes.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        for port in reads_of(node) {
            if let Some(&dep) = producer.get(&port) {
                dependents[dep].push(i);
                in_degree[i] += 1;
            }
        }
    }

    let mut queue: Vec<usize> = (0..nodes.len()).filter(|&i| in_degree[i] == 0).collect();
    let mut order = Vec::with_capacity(nodes.len());
    while let Some(i) = queue.pop() {
        order.push(i);
        for &d in &dependents[i] {
            in_degree[d] -= 1;
            if in_degree[d] == 0 {
                queue.push(d);
            }
        }
    }
    if order.len() != nodes.len() {
        let stuck: Vec<String> = nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| in_degree[*i] > 0)
            .map(|(_, n)| match n {
                Node::Drivers { dst, .. } => ports[*dst].path.clone(),
                Node::Comb(p) | Node::MemRead(p) => prims[*p].path.clone(),
            })
            .take(8)
            .collect();
        return Err(SimError::CombinationalLoop(stuck));
    }
    Ok(order)
}

fn guard_reads(guard: &EGuard, out: &mut Vec<usize>) {
    match guard {
        EGuard::True => {}
        EGuard::Port(p) => out.push(*p),
        EGuard::Not(g) => guard_reads(g, out),
        EGuard::And(a, b) | EGuard::Or(a, b) => {
            guard_reads(a, out);
            guard_reads(b, out);
        }
        EGuard::Comp(_, l, r) => {
            for a in [l, r] {
                if let EAtom::Port(p) = a {
                    out.push(*p);
                }
            }
        }
    }
}

fn eval_guard(guard: &EGuard, values: &[u64]) -> bool {
    match guard {
        EGuard::True => true,
        EGuard::Port(p) => values[*p] != 0,
        EGuard::Not(g) => !eval_guard(g, values),
        EGuard::And(a, b) => eval_guard(a, values) && eval_guard(b, values),
        EGuard::Or(a, b) => eval_guard(a, values) || eval_guard(b, values),
        EGuard::Comp(op, l, r) => {
            let lv = match l {
                EAtom::Port(p) => values[*p],
                EAtom::Const(c) => *c,
            };
            let rv = match r {
                EAtom::Port(p) => values[*p],
                EAtom::Const(c) => *c,
            };
            op.eval(lv, rv)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calyx_core::ir::parse_context;
    use calyx_core::passes;

    fn lower_and_sim(src: &str) -> Simulator {
        let mut ctx = parse_context(src).unwrap();
        passes::lower_pipeline().run(&mut ctx).unwrap();
        Simulator::new(&ctx, "main").unwrap()
    }

    #[test]
    fn figure_2_writes_one_then_two() {
        let mut sim = lower_and_sim(
            r#"component main() -> () {
              cells { x = std_reg(32); }
              wires {
                group one { x.in = 32'd1; x.write_en = 1'd1; one[done] = x.done; }
                group two { x.in = 32'd2; x.write_en = 1'd1; two[done] = x.done; }
              }
              control { seq { one; two; } }
            }"#,
        );
        let stats = sim.run(100).unwrap();
        assert_eq!(sim.register_value(&["x"]).unwrap(), 2);
        // Two 1-cycle groups under a dynamic seq: each costs the write plus
        // the handshake, plus the final done state.
        assert!(stats.cycles >= 4 && stats.cycles <= 8, "{}", stats.cycles);
    }

    #[test]
    fn while_loop_counts_to_five() {
        let mut sim = lower_and_sim(
            r#"component main() -> () {
              cells { i = std_reg(8); lt = std_lt(8); add = std_add(8); }
              wires {
                group cond { lt.left = i.out; lt.right = 8'd5; cond[done] = 1'd1; }
                group incr {
                  add.left = i.out; add.right = 8'd1;
                  i.in = add.out; i.write_en = 1'd1;
                  incr[done] = i.done;
                }
              }
              control { while lt.out with cond { incr; } }
            }"#,
        );
        sim.run(1000).unwrap();
        assert_eq!(sim.register_value(&["i"]).unwrap(), 5);
    }

    #[test]
    fn par_runs_both_groups() {
        let mut sim = lower_and_sim(
            r#"component main() -> () {
              cells { x = std_reg(8); y = std_reg(8); }
              wires {
                group a { x.in = 8'd3; x.write_en = 1'd1; a[done] = x.done; }
                group c { y.in = 8'd4; y.write_en = 1'd1; c[done] = y.done; }
              }
              control { par { a; c; } }
            }"#,
        );
        sim.run(100).unwrap();
        assert_eq!(sim.register_value(&["x"]).unwrap(), 3);
        assert_eq!(sim.register_value(&["y"]).unwrap(), 4);
    }

    #[test]
    fn if_selects_branch_on_memory_value() {
        let src = r#"component main() -> () {
              cells {
                @external m = std_mem_d1(8, 2, 1);
                gt = std_gt(8);
                r = std_reg(8);
              }
              wires {
                group cond {
                  m.addr0 = 1'd0;
                  gt.left = m.read_data; gt.right = 8'd10;
                  cond[done] = 1'd1;
                }
                group t { r.in = 8'd1; r.write_en = 1'd1; t[done] = r.done; }
                group f { r.in = 8'd2; r.write_en = 1'd1; f[done] = r.done; }
              }
              control { if gt.out with cond { t; } else { f; } }
            }"#;
        // Taken branch.
        let mut sim = lower_and_sim(src);
        sim.set_memory(&["m"], &[20, 0]).unwrap();
        sim.run(100).unwrap();
        assert_eq!(sim.register_value(&["r"]).unwrap(), 1);
        // Untaken branch.
        let mut sim = lower_and_sim(src);
        sim.set_memory(&["m"], &[5, 0]).unwrap();
        sim.run(100).unwrap();
        assert_eq!(sim.register_value(&["r"]).unwrap(), 2);
    }

    #[test]
    fn memory_accumulation_loop() {
        // sum m[0..4] into r.
        let mut sim = lower_and_sim(
            r#"component main() -> () {
              cells {
                @external m = std_mem_d1(16, 4, 2);
                i = std_reg(2); iw = std_reg(3);
                acc = std_reg(16);
                lt = std_lt(3); addi = std_add(3); adda = std_add(16);
                sl = std_slice(3, 2);
              }
              wires {
                group cond { lt.left = iw.out; lt.right = 3'd4; cond[done] = 1'd1; }
                group load_idx {
                  sl.in = iw.out;
                  i.in = sl.out; i.write_en = 1'd1;
                  load_idx[done] = i.done;
                }
                group accum {
                  m.addr0 = i.out;
                  adda.left = acc.out; adda.right = m.read_data;
                  acc.in = adda.out; acc.write_en = 1'd1;
                  accum[done] = acc.done;
                }
                group incr {
                  addi.left = iw.out; addi.right = 3'd1;
                  iw.in = addi.out; iw.write_en = 1'd1;
                  incr[done] = iw.done;
                }
              }
              control {
                while lt.out with cond { seq { load_idx; accum; incr; } }
              }
            }"#,
        );
        sim.set_memory(&["m"], &[10, 20, 30, 40]).unwrap();
        sim.run(10_000).unwrap();
        assert_eq!(sim.register_value(&["acc"]).unwrap(), 100);
    }

    #[test]
    fn multiplier_through_control() {
        let mut sim = lower_and_sim(
            r#"component main() -> () {
              cells { mul = std_mult_pipe(16); r = std_reg(16); }
              wires {
                group do_mul {
                  mul.left = 16'd6; mul.right = 16'd7;
                  mul.go = !mul.done ? 1'd1;
                  r.in = mul.out; r.write_en = mul.done ? 1'd1;
                  do_mul[done] = r.done;
                }
              }
              control { do_mul; }
            }"#,
        );
        let stats = sim.run(100).unwrap();
        assert_eq!(sim.register_value(&["r"]).unwrap(), 42);
        assert!(stats.cycles >= 5, "multiply takes at least 5 cycles");
    }

    #[test]
    fn subcomponents_execute_via_go_done() {
        let mut sim = lower_and_sim(
            r#"
            component child() -> () {
              cells { r = std_reg(8); }
              wires {
                group w { r.in = 8'd9; r.write_en = 1'd1; w[done] = r.done; }
              }
              control { w; }
            }
            component main() -> () {
              cells { c = child(); flag = std_reg(8); }
              wires {
                group invoke {
                  c.go = 1'd1;
                  invoke[done] = c.done;
                }
                group after { flag.in = 8'd1; flag.write_en = 1'd1; after[done] = flag.done; }
              }
              control { seq { invoke; after; } }
            }"#,
        );
        sim.run(100).unwrap();
        assert_eq!(sim.register_value(&["c", "r"]).unwrap(), 9);
        assert_eq!(sim.register_value(&["flag"]).unwrap(), 1);
    }

    #[test]
    fn empty_component_finishes_immediately() {
        let mut sim = lower_and_sim("component main() -> () { cells {} wires {} control {} }");
        let stats = sim.run(10).unwrap();
        assert_eq!(stats.cycles, 1);
    }

    #[test]
    fn unlowered_program_is_rejected() {
        let ctx = parse_context(
            r#"component main() -> () {
              cells { r = std_reg(8); }
              wires { group g { r.in = 8'd1; r.write_en = 1'd1; g[done] = r.done; } }
              control { g; }
            }"#,
        )
        .unwrap();
        let err = Simulator::new(&ctx, "main").unwrap_err();
        assert!(matches!(err, SimError::Elaboration(_)));
    }

    #[test]
    fn driver_conflicts_detected() {
        let ctx = parse_context(
            r#"component main() -> () {
              cells { w = std_wire(8); }
              wires {
                w.in = 8'd1;
                w.in = 8'd2;
                done = go ? 1'd1;
              }
              control {}
            }"#,
        )
        .unwrap();
        // Two unconditional drivers would be rejected by validation, but the
        // simulator's dynamic check also catches them.
        let mut sim = Simulator::new(&ctx, "main").unwrap();
        let err = sim.run(10).unwrap_err();
        assert!(matches!(err, SimError::DriverConflict { .. }), "{err:?}");
    }

    #[test]
    fn combinational_loops_rejected() {
        let ctx = parse_context(
            r#"component main() -> () {
              cells { a = std_add(8); b = std_add(8); }
              wires {
                a.left = b.out;
                b.left = a.out;
                done = go ? 1'd1;
              }
              control {}
            }"#,
        )
        .unwrap();
        let err = Simulator::new(&ctx, "main").unwrap_err();
        assert!(matches!(err, SimError::CombinationalLoop(_)));
    }

    #[test]
    fn static_pipeline_gives_same_results_fewer_cycles() {
        let src = r#"component main() -> () {
              cells { x = std_reg(32); y = std_reg(32); }
              wires {
                group one { x.in = 32'd1; x.write_en = 1'd1; one[done] = x.done; }
                group two { y.in = 32'd2; y.write_en = 1'd1; two[done] = y.done; }
              }
              control { seq { one; two; } }
            }"#;
        let mut dynamic = parse_context(src).unwrap();
        passes::lower_pipeline().run(&mut dynamic).unwrap();
        let mut dsim = Simulator::new(&dynamic, "main").unwrap();
        let dstats = dsim.run(100).unwrap();

        let mut static_ = parse_context(src).unwrap();
        passes::lower_pipeline_static().run(&mut static_).unwrap();
        let mut ssim = Simulator::new(&static_, "main").unwrap();
        let sstats = ssim.run(100).unwrap();

        assert_eq!(dsim.register_value(&["x"]).unwrap(), 1);
        assert_eq!(ssim.register_value(&["x"]).unwrap(), 1);
        assert_eq!(dsim.register_value(&["y"]).unwrap(), 2);
        assert_eq!(ssim.register_value(&["y"]).unwrap(), 2);
        assert!(
            sstats.cycles < dstats.cycles,
            "static ({}) should beat dynamic ({})",
            sstats.cycles,
            dstats.cycles
        );
    }
}
