//! The pre-flatten simulation engines, kept verbatim as oracles.
//!
//! These are the tree-walking implementations that [`crate::interp`] and
//! [`crate::rtl`] replaced when the dense flat IR ([`crate::flatten`])
//! landed: the interpreter keeps port valuations in a
//! `HashMap<PortRef, u64>` and clones `Control` subtrees as it advances;
//! the RTL engine builds its own ad-hoc `usize` arena with boxed guard
//! trees. They are retained — not exported from the crate root, and
//! hidden from the docs — so the differential suite can pin the flat
//! engines to byte-identical state reports and cycle counts, and so the
//! `sim_throughput` bench can quantify the speedup against a live
//! baseline rather than a recorded number.

pub mod interp;
pub mod rtl;
